//! Semi-automated verification, the paper's primary use case (§2): the
//! system proposes top-k query translations per claim; a user (scripted
//! here) inspects them, accepts or corrects, and the verdict follows the
//! *chosen* query. Mirrors the Figure 3 interface flow without a GUI.
//!
//! ```text
//! cargo run --release --example interactive_verify
//! ```

use aggchecker::corpus::builtin::{campaign_donations, developer_survey};
use aggchecker::relational::execute_query;
use aggchecker::{AggChecker, CheckerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for case in [campaign_donations(), developer_survey()] {
        println!("=== {} ===", case.name);
        let checker = AggChecker::new(case.db.clone(), CheckerConfig::default())?;
        let report = checker.check_text(&case.article_html)?;

        for (claim, truth) in report.claims.iter().zip(&case.ground_truth) {
            println!(
                "claim: «{}» in: {}",
                claim.claimed_value,
                claim.sentence.trim()
            );
            println!("  top suggestions:");
            for (i, rq) in claim.top_queries.iter().take(5).enumerate() {
                let marker = if rq.query.semantically_equal(&truth.query) {
                    " ← ground truth"
                } else {
                    ""
                };
                println!(
                    "   {}. p={:.3} {} = {:?}{}",
                    i + 1,
                    rq.probability,
                    rq.query.to_sql(&case.db),
                    rq.result,
                    marker
                );
            }
            // The scripted user picks the ground-truth query — from the
            // list if present (1-3 clicks), else by custom construction.
            let rank = claim
                .top_queries
                .iter()
                .position(|rq| rq.query.semantically_equal(&truth.query));
            let clicks = match rank {
                Some(0) => 1,
                Some(r) if r < 5 => 2,
                Some(_) => 3,
                None => 4,
            };
            let result = execute_query(&case.db, &truth.query)?.expect("ground truth evaluates");
            let verdict_correct =
                aggchecker::nlp::rounding::matches_claim(result, &claim.mention.number);
            println!(
                "  user action: {} ({} click{}), result {result} → claim is {}",
                match rank {
                    Some(0) => "confirm top suggestion".to_string(),
                    Some(r) => format!("pick suggestion #{}", r + 1),
                    None => "assemble custom query".to_string(),
                },
                clicks,
                if clicks == 1 { "" } else { "s" },
                if verdict_correct { "CORRECT" } else { "WRONG" }
            );
            println!();
        }
    }
    Ok(())
}
