//! Seeded chaos matrix runner for the CI robustness gate.
//!
//! Runs the same fault matrix as `tests/chaos.rs` — injected scan panics,
//! scan delays, single-flight poisoning, and wave-guard drops, across
//! worker pools of 1/2/4/8 — and emits one JSON record per cell to
//! `target/CHAOS_matrix.json` (same `"variants"` array shape as the
//! benchmark files, so `xtask chaos-gate` reuses the scanner; the
//! artifact lives under `target/` so it never clutters the repo root):
//!
//! ```text
//! cargo run --release --example chaos_matrix
//! cargo run -p xtask -- chaos-gate --file target/CHAOS_matrix.json
//! ```
//!
//! The gate fails on any unsettled ticket, any dangling in-flight cache
//! entry after drain, any outcome-bin accounting mismatch, or a respawn
//! count past the budget. A watchdog thread turns a hang into exit code 3
//! instead of a stuck CI job.

use aggchecker::core::CheckerError;
use aggchecker::relational::chaos::{self, FaultPlan};
use aggchecker::{CheckerConfig, IntakePolicy, StreamConfig, StreamingVerifier, SubmitError};
use std::time::{Duration, Instant};

const ARTICLE: &str = r#"
<h1>Indefinite suspensions</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;

const WRONG: &str = r#"
<h1>Indefinite suspensions</h1>
<p>There were seven previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;

const DOCS_PER_CELL: usize = 10;
const MAX_RESPAWNS: usize = 6;
const WATCHDOG: Duration = Duration::from_secs(60);

struct CellRecord {
    name: String,
    workers: usize,
    unsettled: u64,
    inflight_len: usize,
    bins_ok: bool,
    respawns: u64,
    stats: aggchecker::StreamStats,
    injected: u64,
}

/// Run one matrix cell and report its invariant-relevant counters.
/// Never panics on a fault outcome — judging is the gate's job.
/// `texts[i % texts.len()]` is submitted as document `i`, against `db`
/// under `cfg` — the partition cells swap in a multi-partition corpus.
fn run_cell(
    name: &str,
    plan: FaultPlan,
    workers: usize,
    policy: IntakePolicy,
    db: aggchecker::relational::Database,
    cfg: CheckerConfig,
    texts: &[&str],
) -> CellRecord {
    let guard = chaos::install(plan);
    let service = StreamingVerifier::new(
        db,
        cfg,
        StreamConfig {
            workers,
            policy,
            intake_capacity: 4,
            max_respawns: MAX_RESPAWNS,
            lane_capacity: 0,
        },
    )
    .expect("service construction is fault-free");
    let mut accepted = Vec::new();
    for i in 0..DOCS_PER_CELL {
        let text = texts[i % texts.len()];
        let outcome = if i == 4 {
            service.submit_text_with_deadline(text, Some(Instant::now() + WATCHDOG))
        } else {
            service.submit_text(text)
        };
        match outcome {
            Ok(t) => accepted.push(t),
            // `Reject` intake under a burst: dropped before acceptance,
            // deliberately not part of the outcome bins.
            Err(SubmitError::Full | SubmitError::Closed) => {}
        }
    }
    if let Some(victim) = accepted.last() {
        victim.cancel();
    }
    service.close();
    let deadline = Instant::now() + WATCHDOG;
    while !accepted.iter().all(|t| t.is_done()) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let unsettled = accepted.iter().filter(|t| !t.is_done()).count() as u64;
    let mut errors = 0usize;
    for ticket in accepted {
        if ticket.is_done() {
            if let Err(e) = ticket.wait() {
                errors += 1;
                debug_assert!(
                    matches!(e, CheckerError::Relational(_) | CheckerError::Stream(_)),
                    "unexpected error class: {e}"
                );
            }
        }
    }
    let stats = service.stats();
    // Errored tickets land in `failed` (evaluation died) or `rejected`
    // (queued when the pool died / the stream closed rejecting).
    let bins_ok = stats.submitted == stats.settled()
        && stats.failed + stats.rejected >= errors as u64
        && stats.respawns <= MAX_RESPAWNS as u64;
    let injected = guard.injected_total();
    let inflight_len = if unsettled == 0 {
        service.into_checker().cache().inflight_len()
    } else {
        // Can't drain a wedged service; report a poison value so the
        // gate fails loudly on this cell too.
        usize::MAX
    };
    CellRecord {
        name: name.to_string(),
        workers,
        unsettled,
        inflight_len,
        bins_ok,
        respawns: stats.respawns,
        stats,
        injected,
    }
}

fn main() {
    // Injected panics are expected by the hundreds — keep them out of the
    // CI log. Anything else still prints through the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !chaos::is_chaos_panic(info.payload()) {
            default_hook(info);
        }
    }));

    // A wedged cell must kill the process with a distinct exit code, not
    // hang CI: cells share one global watchdog sized for the whole matrix.
    std::thread::spawn(|| {
        std::thread::sleep(WATCHDOG * 5);
        eprintln!("chaos_matrix: watchdog fired — a cell hung");
        std::process::exit(3);
    });

    let plans: [(&str, FaultPlan); 5] = [
        (
            "panic",
            FaultPlan {
                seed: 3,
                panic_every_scan_blocks: 7,
                ..FaultPlan::default()
            },
        ),
        (
            "delay",
            FaultPlan {
                seed: 5,
                delay_every_scan_blocks: 3,
                delay_micros: 100,
                ..FaultPlan::default()
            },
        ),
        (
            "poison_flight",
            FaultPlan {
                seed: 2,
                poison_every_flights: 5,
                ..FaultPlan::default()
            },
        ),
        (
            "guard_drop",
            FaultPlan {
                seed: 1,
                poison_every_wave_guards: 4,
                ..FaultPlan::default()
            },
        ),
        (
            "combined",
            FaultPlan {
                seed: 11,
                panic_every_scan_blocks: 13,
                delay_every_scan_blocks: 5,
                delay_micros: 50,
                poison_every_flights: 9,
                poison_every_wave_guards: 7,
            },
        ),
    ];

    let mut records = Vec::new();
    for (i, (plan_name, plan)) in plans.iter().enumerate() {
        for (j, workers) in [1usize, 2, 4, 8].iter().enumerate() {
            let policy = if (i + j) % 2 == 0 {
                IntakePolicy::Block
            } else {
                IntakePolicy::Reject
            };
            let name = format!("{plan_name}_{workers}w");
            let record = run_cell(
                &name,
                *plan,
                *workers,
                policy,
                aggchecker::corpus::builtin::nfl_suspensions().db,
                CheckerConfig::default(),
                &[WRONG, ARTICLE, ARTICLE],
            );
            println!(
                "{:<18} submitted={:<3} completed={:<3} failed={:<3} rejected={:<2} \
                 cancelled={} respawns={} injected={:<3} unsettled={} inflight={}",
                record.name,
                record.stats.submitted,
                record.stats.completed,
                record.stats.failed,
                record.stats.rejected,
                record.stats.cancelled,
                record.respawns,
                record.injected,
                record.unsettled,
                record.inflight_len,
            );
            records.push(record);
        }
    }

    // Partition cells: the same panic-style plan, but over a generated
    // corpus whose fused passes span three 1-block partitions, so the
    // injected panic lands *inside a partition subtask*. The invariants
    // are the same — a dead partition fails every member of its pass,
    // wakes its waiters, and never wedges the merge barrier.
    let part_case = aggchecker::corpus::generate_multi_doc_case(
        &aggchecker::corpus::CorpusSpec {
            min_rows: 6 * 1024,
            max_rows: 6 * 1024,
            ..aggchecker::corpus::CorpusSpec::default()
        },
        7,
        3,
    );
    let part_texts: Vec<&str> = part_case.articles.iter().map(String::as_str).collect();
    for (j, workers) in [1usize, 2, 4, 8].iter().enumerate() {
        let policy = if j % 2 == 0 {
            IntakePolicy::Block
        } else {
            IntakePolicy::Reject
        };
        let name = format!("partition_panic_{workers}w");
        let record = run_cell(
            &name,
            FaultPlan {
                seed: 3,
                panic_every_scan_blocks: 23,
                ..FaultPlan::default()
            },
            *workers,
            policy,
            part_case.db.clone(),
            CheckerConfig {
                partition_blocks: 1,
                ..CheckerConfig::default()
            },
            &part_texts,
        );
        println!(
            "{:<18} submitted={:<3} completed={:<3} failed={:<3} rejected={:<2} \
             cancelled={} respawns={} injected={:<3} unsettled={} inflight={}",
            record.name,
            record.stats.submitted,
            record.stats.completed,
            record.stats.failed,
            record.stats.rejected,
            record.stats.cancelled,
            record.respawns,
            record.injected,
            record.unsettled,
            record.inflight_len,
        );
        records.push(record);
    }

    let variants: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"workers\": {}, \"submitted\": {}, \
                 \"completed\": {}, \"failed\": {}, \"rejected\": {}, \
                 \"timed_out\": {}, \"cancelled\": {}, \"partial\": {}, \
                 \"respawns\": {}, \"max_respawns\": {}, \"poison_retries\": {}, \
                 \"injected_faults\": {}, \"unsettled\": {}, \"inflight_len\": {}, \
                 \"bins_ok\": {}}}",
                r.name,
                r.workers,
                r.stats.submitted,
                r.stats.completed,
                r.stats.failed,
                r.stats.rejected,
                r.stats.timed_out,
                r.stats.cancelled,
                r.stats.partial,
                r.respawns,
                MAX_RESPAWNS,
                r.stats.poison_retries,
                r.injected,
                r.unsettled,
                r.inflight_len,
                if r.bins_ok { 1 } else { 0 },
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"docs_per_cell\": {DOCS_PER_CELL},\n  \"variants\": [\n{}\n  ]\n}}\n",
        variants.join(",\n")
    );
    // `target/` exists whenever cargo built this example, but the runner
    // may point CARGO_TARGET_DIR elsewhere — create the plain dir anyway.
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/CHAOS_matrix.json", &json).expect("write target/CHAOS_matrix.json");
    println!(
        "wrote target/CHAOS_matrix.json ({} cells) — judge with `cargo run -p xtask -- chaos-gate`",
        records.len()
    );
}
