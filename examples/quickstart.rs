//! Quickstart: load a CSV data set, check a short write-up against it, and
//! print the marked-up verification report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aggchecker::core::report::{render_ansi, render_summary};
use aggchecker::relational::csv::load_csv;
use aggchecker::relational::Database;
use aggchecker::{AggChecker, CheckerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small sales data set, as it might arrive in a CSV export.
    //    (Shared with the golden-report suite: tests/end_to_end.rs pins
    //    this exact corpus, so edits here are covered by the fixtures.)
    let csv = include_str!("data/quickstart_sales.csv");
    let table = load_csv("sales", csv)?;
    let mut db = Database::new("quickstart");
    db.add_table(table);

    // 2. A summary a colleague drafted. Two claims are right, one is not:
    //    the west region has three sales, not four.
    let article = include_str!("data/quickstart_article.html");

    // 3. Check the text against the data.
    let checker = AggChecker::new(db, CheckerConfig::default())?;
    let report = checker.check_text(article)?;

    // 4. Show the spell-checker-style markup and a one-line-per-claim
    //    summary.
    let doc = aggchecker::nlp::structure::parse_document(article);
    println!("{}", render_ansi(&doc, &report));
    println!("{}", render_summary(&report));

    println!(
        "claims: {}, flagged: {}, candidates evaluated: {}",
        report.claims.len(),
        report.flagged().count(),
        report.stats.candidates_evaluated
    );
    Ok(())
}
