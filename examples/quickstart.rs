//! Quickstart: load a CSV data set, check a short write-up against it, and
//! print the marked-up verification report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aggchecker::core::report::{render_ansi, render_summary};
use aggchecker::relational::csv::load_csv;
use aggchecker::relational::Database;
use aggchecker::{AggChecker, CheckerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small sales data set, as it might arrive in a CSV export.
    let csv = "\
region,product,amount
west,widget,120
west,gadget,80
west,widget,95
east,widget,40
east,gadget,310
south,gadget,55
south,widget,60
south,gadget,90
";
    let table = load_csv("sales", csv)?;
    let mut db = Database::new("quickstart");
    db.add_table(table);

    // 2. A summary a colleague drafted. Two claims are right, one is not:
    //    the west region has three sales, not four.
    let article = "\
<title>Quarterly sales notes</title>
<h1>Regional picture</h1>
<p>Our database covers 8 sales this quarter. There were four sales in the
west region. The largest single amount was 310.</p>
";

    // 3. Check the text against the data.
    let checker = AggChecker::new(db, CheckerConfig::default())?;
    let report = checker.check_text(article)?;

    // 4. Show the spell-checker-style markup and a one-line-per-claim
    //    summary.
    let doc = aggchecker::nlp::structure::parse_document(article);
    println!("{}", render_ansi(&doc, &report));
    println!("{}", render_summary(&report));

    println!(
        "claims: {}, flagged: {}, candidates evaluated: {}",
        report.claims.len(),
        report.flagged().count(),
        report.stats.candidates_evaluated
    );
    Ok(())
}
