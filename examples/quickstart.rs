//! Quickstart: load a CSV data set, check a short write-up against it, and
//! print the marked-up verification report — then the same check through
//! the streaming service, with backpressure handled instead of unwrapped.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aggchecker::core::report::{render_ansi, render_summary};
use aggchecker::relational::csv::load_csv;
use aggchecker::relational::Database;
use aggchecker::{
    AggChecker, CheckerConfig, IntakePolicy, StreamConfig, StreamingVerifier, SubmitError, Ticket,
};
use std::time::{Duration, Instant};

/// Submit under a `Reject` intake the way a deployment should: on
/// [`SubmitError::Full`], back off briefly and retry until a deadline
/// runs out, rather than unwrapping (which turns transient backpressure
/// into a crash) or blocking forever (which hides it).
fn submit_with_retry(
    service: &StreamingVerifier,
    text: &str,
    deadline: Instant,
) -> Result<Ticket, SubmitError> {
    loop {
        match service.submit_text_with_deadline(text, Some(deadline)) {
            // Full means every intake slot is taken *right now*; the pool
            // drains continuously, so a short sleep is usually enough.
            Err(SubmitError::Full) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            other => return other,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small sales data set, as it might arrive in a CSV export.
    //    (Shared with the golden-report suite: tests/end_to_end.rs pins
    //    this exact corpus, so edits here are covered by the fixtures.)
    let csv = include_str!("data/quickstart_sales.csv");
    let table = load_csv("sales", csv)?;
    let mut db = Database::new("quickstart");
    db.add_table(table);

    // 2. A summary a colleague drafted. Two claims are right, one is not:
    //    the west region has three sales, not four.
    let article = include_str!("data/quickstart_article.html");

    // 3. Check the text against the data.
    let checker = AggChecker::new(db.clone(), CheckerConfig::default())?;
    let report = checker.check_text(article)?;

    // 4. Show the spell-checker-style markup and a one-line-per-claim
    //    summary.
    let doc = aggchecker::nlp::structure::parse_document(article);
    println!("{}", render_ansi(&doc, &report));
    println!("{}", render_summary(&report));

    println!(
        "claims: {}, flagged: {}, candidates evaluated: {}",
        report.claims.len(),
        report.flagged().count(),
        report.stats.candidates_evaluated
    );

    // 5. The same check through the streaming service. A tiny intake with
    //    a `Reject` policy makes backpressure visible: a burst of
    //    submissions can see `SubmitError::Full`, which the deadline-
    //    bounded retry above absorbs instead of crashing. The per-document
    //    deadline also caps how long any one ticket can take — if it
    //    expires, the ticket settles as a *partial* report (unevaluated
    //    claims marked `Unverified`) rather than hanging.
    let stream_cfg = StreamConfig {
        intake_capacity: 2,
        policy: IntakePolicy::Reject,
        workers: 2,
        ..StreamConfig::default()
    };
    println!(
        "\nstreaming the same check through a capacity-{} {:?} intake:",
        stream_cfg.intake_capacity, stream_cfg.policy
    );
    let service = StreamingVerifier::new(db, CheckerConfig::default(), stream_cfg.clone())?;
    let deadline = Instant::now() + Duration::from_secs(30);
    let tickets: Vec<Ticket> = (0..6)
        .map(|_| submit_with_retry(&service, article, deadline))
        .collect::<Result<_, _>>()?;
    for ticket in tickets {
        let streamed = ticket.wait()?;
        assert_eq!(
            streamed.content_fingerprint(),
            report.content_fingerprint(),
            "streamed verification must agree with the direct check"
        );
        assert!(!streamed.status.is_partial(), "30s is plenty for one page");
    }
    let stats = service.stats();
    println!(
        "streamed: {} submitted, {} completed, {} timed out ({}-worker pool, intake capacity {})",
        stats.submitted,
        stats.completed,
        stats.timed_out,
        service.workers(),
        stream_cfg.intake_capacity
    );
    Ok(())
}
