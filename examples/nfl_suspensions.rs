//! The paper's running example end to end (Figure 2 / Example 1): the
//! FiveThirtyEight NFL-suspensions passage, including the erroneous claim
//! confirmed by the article's author in Table 9.
//!
//! ```text
//! cargo run --release --example nfl_suspensions
//! ```

use aggchecker::core::report::render_ansi;
use aggchecker::corpus::builtin::nfl_suspensions;
use aggchecker::nlp::structure::parse_document;
use aggchecker::{AggChecker, CheckerConfig, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = nfl_suspensions();
    println!("data set: {} rows", case.db.total_rows());

    let checker = AggChecker::new(case.db.clone(), CheckerConfig::default())?;
    let report = checker.check_text(&case.article_html)?;

    let doc = parse_document(&case.article_html);
    println!("{}", render_ansi(&doc, &report));

    // Compare against the hand-made ground truth shipped with the case.
    println!("claim-by-claim against ground truth:");
    for (claim, truth) in report.claims.iter().zip(&case.ground_truth) {
        let ml = claim.ml_query().expect("candidates found");
        let agrees = ml.query.semantically_equal(&truth.query);
        println!(
            "  claimed {:>4}: verdict {:?} (truth: {}), top query {} ground truth",
            claim.claimed_value,
            claim.verdict,
            if truth.is_correct { "correct" } else { "WRONG" },
            if agrees { "matches" } else { "differs from" },
        );
    }

    // The paper's headline finding: "three were for repeated substance
    // abuse" is wrong — the data says four.
    let three = report
        .claims
        .iter()
        .find(|c| c.claimed_value == 3.0)
        .expect("the 'three' claim");
    assert_eq!(three.verdict, Verdict::Erroneous);
    println!("\nthe 'three' claim is flagged, as in Table 9 of the paper.");
    Ok(())
}
