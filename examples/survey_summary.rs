//! A developer-survey article in the style of the Stack Overflow test
//! cases: generate a synthetic survey data set plus a write-up with a
//! controlled error rate, verify it, and compare against ground truth.
//!
//! ```text
//! cargo run --release --example survey_summary
//! ```

use aggchecker::core::report::render_summary;
use aggchecker::corpus::stats::align_claims;
use aggchecker::corpus::{generate_test_case, CorpusSpec};
use aggchecker::{AggChecker, CheckerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Article index 1 of the default corpus is a survey-domain case.
    let spec = CorpusSpec {
        sloppy_article_rate: 1.0, // force some erroneous claims
        ..CorpusSpec::default()
    };
    let case = generate_test_case(&spec, 1);
    assert_eq!(case.domain_key, "survey");

    println!("=== generated article ===\n{}", case.article_html);
    println!(
        "data set: {} respondents; ground truth: {} claims, {} erroneous\n",
        case.db.total_rows(),
        case.ground_truth.len(),
        case.erroneous_count()
    );

    let checker = AggChecker::new(case.db.clone(), CheckerConfig::default())?;
    let report = checker.check_text(&case.article_html)?;
    println!("=== verification ===\n{}", render_summary(&report));

    // Score the run against ground truth.
    let detected: Vec<f64> = report.claims.iter().map(|c| c.claimed_value).collect();
    let aligned = align_claims(&detected, &case.ground_truth);
    let mut flagged_right = 0;
    let mut flagged_wrong = 0;
    for (truth, slot) in case.ground_truth.iter().zip(aligned) {
        if let Some(idx) = slot {
            let flagged = report.claims[idx].verdict == aggchecker::Verdict::Erroneous;
            if flagged && !truth.is_correct {
                flagged_right += 1;
            }
            if flagged && truth.is_correct {
                flagged_wrong += 1;
            }
        }
    }
    println!(
        "erroneous claims caught: {flagged_right}/{}; correct claims falsely flagged: {flagged_wrong}",
        case.erroneous_count()
    );
    Ok(())
}
