//! Property-based tests over the core invariants:
//!
//! * the cube operator agrees with naive query execution on arbitrary
//!   data and predicate combinations (the merging correctness invariant
//!   everything in §6 rests on);
//! * rounding-aware matching is reflexive and respects its own rounding;
//! * CSV parsing round-trips values;
//! * the tokenizer produces byte-accurate, non-overlapping spans;
//! * number rendering/parsing round-trips through the corpus generator's
//!   conventions.

use aggchecker::nlp::rounding::{matches_value, round_significant};
use aggchecker::nlp::tokenize::tokenize;
use aggchecker::relational::csv::{load_csv, parse_csv};
use aggchecker::relational::{
    execute_query, AggColumn, AggFunction, CubeQuery, Database, DimSel, Predicate,
    SimpleAggregateQuery, Table, Value,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Cube ≡ naive execution
// ---------------------------------------------------------------------------

/// A random two-categorical + one-numeric table.
fn arb_table() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<Option<i64>>)> {
    let rows = 1..60usize;
    rows.prop_flat_map(|n| {
        (
            prop::collection::vec(0u8..4, n),
            prop::collection::vec(0u8..3, n),
            prop::collection::vec(prop::option::of(-100i64..100), n),
        )
    })
}

fn build_db(cats: &[u8], regions: &[u8], nums: &[Option<i64>]) -> Database {
    use aggchecker::relational::{ColumnMeta, DataType, TableSchema};
    let cat_names = ["alpha", "beta", "gamma", "delta"];
    let region_names = ["north", "south", "east"];
    // Explicit schema: an all-NULL numeric column must stay numeric, which
    // value-based type inference cannot know.
    let mut table = Table::new(TableSchema::new(
        "t",
        vec![
            ColumnMeta::new("cat", DataType::Str),
            ColumnMeta::new("region", DataType::Str),
            ColumnMeta::new("num", DataType::Int),
        ],
    ));
    for i in 0..cats.len() {
        table
            .push_row(&[
                Value::Str(cat_names[cats[i] as usize].into()),
                Value::Str(region_names[regions[i] as usize].into()),
                nums[i].map(Value::Int).unwrap_or(Value::Null),
            ])
            .unwrap();
    }
    let mut db = Database::new("prop");
    db.add_table(table);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cube_agrees_with_naive_execution(
        (cats, regions, nums) in arb_table(),
        cat_lit in 0u8..4,
        region_lit in 0u8..3,
    ) {
        let db = build_db(&cats, &regions, &nums);
        let cat = db.resolve("t", "cat").unwrap();
        let region = db.resolve("t", "region").unwrap();
        let num = db.resolve("t", "num").unwrap();
        let cat_names = ["alpha", "beta", "gamma", "delta"];
        let region_names = ["north", "south", "east"];

        let cube = CubeQuery {
            dims: vec![cat, region],
            relevant: vec![
                vec![Value::from(cat_names[cat_lit as usize])],
                vec![Value::from(region_names[region_lit as usize])],
            ],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Sum, AggColumn::Column(num)),
                (AggFunction::Min, AggColumn::Column(num)),
                (AggFunction::Max, AggColumn::Column(num)),
                (AggFunction::Avg, AggColumn::Column(num)),
                (AggFunction::CountDistinct, AggColumn::Column(num)),
            ],
        };
        let result = cube.execute(&db).unwrap();

        // Check every dimension subset against the naive executor.
        for (ci, c_sel) in [None, Some(cat_lit)].into_iter().enumerate() {
            let _ = ci;
            for r_sel in [None, Some(region_lit)] {
                let mut preds = Vec::new();
                let mut assignment = Vec::new();
                match c_sel {
                    Some(l) => {
                        preds.push(Predicate::new(cat, cat_names[l as usize]));
                        assignment.push(DimSel::Literal(0));
                    }
                    None => assignment.push(DimSel::Any),
                }
                match r_sel {
                    Some(l) => {
                        preds.push(Predicate::new(region, region_names[l as usize]));
                        assignment.push(DimSel::Literal(0));
                    }
                    None => assignment.push(DimSel::Any),
                }
                for (idx, (f, col)) in cube.aggregates.iter().enumerate() {
                    let q = SimpleAggregateQuery::new(*f, *col, preds.clone());
                    let naive = execute_query(&db, &q).unwrap();
                    let merged = if matches!(f, AggFunction::Count | AggFunction::CountDistinct) {
                        Some(result.get_count(&assignment, idx))
                    } else {
                        result.get(&assignment, idx)
                    };
                    prop_assert_eq!(merged, naive, "{} at {:?}", q.to_sql(&db), assignment);
                }
            }
        }
    }

    #[test]
    fn ratio_aggregates_agree_between_paths(
        (cats, regions, nums) in arb_table(),
        cat_lit in 0u8..4,
    ) {
        let db = build_db(&cats, &regions, &nums);
        let cat = db.resolve("t", "cat").unwrap();
        let cat_names = ["alpha", "beta", "gamma", "delta"];
        let q = SimpleAggregateQuery::new(
            AggFunction::Percentage,
            AggColumn::Star,
            vec![Predicate::new(cat, cat_names[cat_lit as usize])],
        );
        let naive = execute_query(&db, &q).unwrap();
        // Derive via counts, like the evaluator does.
        let count_q = SimpleAggregateQuery::count_star(vec![Predicate::new(
            cat,
            cat_names[cat_lit as usize],
        )]);
        let total_q = SimpleAggregateQuery::count_star(vec![]);
        let num = execute_query(&db, &count_q).unwrap().unwrap();
        let den = execute_query(&db, &total_q).unwrap().unwrap();
        let derived = aggchecker::relational::ratio_from_counts(num, den);
        prop_assert_eq!(naive, derived);
    }

    // -----------------------------------------------------------------------
    // Rounding
    // -----------------------------------------------------------------------

    #[test]
    fn rounding_match_is_reflexive(v in -1e9f64..1e9, digits in 1u32..8) {
        // A value always matches itself, whatever precision is claimed.
        prop_assert!(matches_value(v, v, digits, 2));
    }

    #[test]
    fn rounded_values_match_their_source(v in 0.001f64..1e9, digits in 1u32..6) {
        let rounded = round_significant(v, digits);
        prop_assert!(
            matches_value(v, rounded, digits, 12),
            "{v} should match its own {digits}-digit rounding {rounded}"
        );
    }

    #[test]
    fn round_significant_is_idempotent(v in -1e9f64..1e9, digits in 1u32..8) {
        // Idempotent up to floating-point noise: rounding to *decimal*
        // significant digits cannot always be exact in binary floats (e.g.
        // 9.79e8 → 1e9 may land on 999999999.9999999). The value matcher
        // compares with a relative epsilon for exactly this reason.
        let once = round_significant(v, digits);
        let twice = round_significant(once, digits);
        let scale = once.abs().max(twice.abs()).max(1e-12);
        prop_assert!(
            ((once - twice) / scale).abs() < 1e-9,
            "{once} vs {twice}"
        );
        // And the matcher itself treats them as equal.
        prop_assert!(matches_value(once, twice, digits, 6) || once == 0.0);
    }

    // -----------------------------------------------------------------------
    // CSV
    // -----------------------------------------------------------------------

    #[test]
    fn csv_quoted_fields_round_trip(
        cells in prop::collection::vec("[ -~]{0,12}", 1..6)
    ) {
        // Quote every field; embedded quotes are doubled.
        let line: Vec<String> = cells
            .iter()
            .map(|c| format!("\"{}\"", c.replace('"', "\"\"")))
            .collect();
        let text = format!("{}\n", line.join(","));
        let rows = parse_csv(&text).unwrap();
        prop_assert_eq!(rows.len(), 1);
        prop_assert_eq!(&rows[0], &cells);
    }

    #[test]
    fn csv_integer_columns_round_trip(values in prop::collection::vec(-1000i64..1000, 1..30)) {
        let mut text = String::from("x\n");
        for v in &values {
            text.push_str(&format!("{v}\n"));
        }
        let table = load_csv("t", &text).unwrap();
        prop_assert_eq!(table.row_count(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(table.get(i, 0), Value::Int(*v));
        }
    }

    // -----------------------------------------------------------------------
    // Tokenizer
    // -----------------------------------------------------------------------

    #[test]
    fn tokenizer_spans_are_exact_and_ordered(text in "[ -~]{0,80}") {
        let tokens = tokenize(&text);
        let mut last_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= last_end, "overlapping spans");
            prop_assert!(t.end > t.start);
            prop_assert_eq!(&text[t.start..t.end], t.text.as_str());
            last_end = t.end;
        }
    }

    #[test]
    fn tokenizer_never_panics_on_unicode(text in "\\PC{0,60}") {
        let _ = tokenize(&text);
    }

    // -----------------------------------------------------------------------
    // Number words
    // -----------------------------------------------------------------------

    #[test]
    fn spelled_small_numbers_parse_back(n in 0u32..13) {
        const WORDS: [&str; 13] = [
            "zero", "one", "two", "three", "four", "five", "six", "seven",
            "eight", "nine", "ten", "eleven", "twelve",
        ];
        let text = format!("there were {} cases", WORDS[n as usize]);
        let mentions =
            aggchecker::nlp::numbers::parse_number_mentions(&tokenize(&text));
        prop_assert_eq!(mentions.len(), 1);
        prop_assert_eq!(mentions[0].value, n as f64);
    }

    #[test]
    fn digit_numbers_parse_back(n in 0i64..10_000_000) {
        let text = format!("a total of {n} units");
        let mentions =
            aggchecker::nlp::numbers::parse_number_mentions(&tokenize(&text));
        prop_assert_eq!(mentions.len(), 1);
        prop_assert_eq!(mentions[0].value, n as f64);
    }
}

// ---------------------------------------------------------------------------
// Batched ≡ sequential verification
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The cube-task scheduler (merged, cached, claims × cubes parallel)
    /// verifies randomized corpora identically to the serial
    /// `evaluate_naive` path (`EvalStrategy::Naive`: one query execution
    /// per candidate, no merging, no caching, no scheduler).
    #[test]
    fn scheduler_reports_match_serial_naive_evaluation(
        seed in 1u64..10_000,
        index in 0usize..6,
        threads in 1usize..5,
    ) {
        use aggchecker::core::EvalStrategy;
        use aggchecker::corpus::{generate_test_case, CorpusSpec};
        use aggchecker::{AggChecker, CheckerConfig};

        let spec = CorpusSpec::small(1, seed);
        let tc = generate_test_case(&spec, index);
        let run = |strategy: EvalStrategy, threads: usize| {
            let cfg = CheckerConfig {
                strategy,
                threads,
                // A small hit budget keeps the naive arm affordable.
                lucene_hits: 6,
                ..CheckerConfig::default()
            };
            let checker = AggChecker::new(tc.db.clone(), cfg).unwrap();
            checker.check_text(&tc.article_html).unwrap()
        };
        let naive = run(EvalStrategy::Naive, 1);
        let scheduled = run(EvalStrategy::MergedCached, threads);
        prop_assert_eq!(naive.claims.len(), scheduled.claims.len());
        for (n, s) in naive.claims.iter().zip(&scheduled.claims) {
            prop_assert_eq!(
                n.verdict, s.verdict,
                "seed={} index={} threads={} claim {}",
                seed, index, threads, n.claimed_value
            );
            prop_assert!(
                (n.correctness_probability - s.correctness_probability).abs() < 1e-6,
                "probabilities diverged: {} vs {}",
                n.correctness_probability,
                s.correctness_probability
            );
            prop_assert_eq!(n.top_queries.len(), s.top_queries.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fused multi-cube scans are purely physical: over randomized
    /// multi-document corpora, batched fused verification at **1/2/4/8
    /// workers** produces reports bit-identical to the unfused PR 3
    /// execution shape (`fuse_scans: false`, one row pass per cube task)
    /// — and the fused pipeline's verdicts agree with the serial
    /// `evaluate_naive` oracle.
    #[test]
    fn fused_reports_match_unfused_path_and_naive_oracle(
        seed in 1u64..10_000,
        index in 0usize..4,
    ) {
        use aggchecker::core::EvalStrategy;
        use aggchecker::corpus::{generate_multi_doc_case, CorpusSpec};
        use aggchecker::{AggChecker, BatchVerifier, CheckerConfig};

        let spec = CorpusSpec::small(1, seed);
        let case = generate_multi_doc_case(&spec, index, 3);
        let texts: Vec<&str> = case.articles.iter().map(String::as_str).collect();

        // The unfused PR 3 path: solo checkers with fusion disabled.
        let unfused: Vec<_> = texts
            .iter()
            .map(|t| {
                let cfg = CheckerConfig {
                    fuse_scans: false,
                    ..CheckerConfig::default()
                };
                let checker = AggChecker::new(case.db.clone(), cfg).unwrap();
                checker.check_text(t).unwrap()
            })
            .collect();

        for workers in [1usize, 2, 4, 8] {
            let cfg = CheckerConfig {
                threads: workers,
                ..CheckerConfig::default()
            };
            let batch = BatchVerifier::new(case.db.clone(), cfg).unwrap();
            let reports = batch.verify_texts(&texts).unwrap();
            for (i, (fused, expected)) in reports.iter().zip(&unfused).enumerate() {
                prop_assert_eq!(
                    fused.content_fingerprint(),
                    expected.content_fingerprint(),
                    "workers={} doc={} seed={} index={}",
                    workers, i, seed, index
                );
            }
        }

        // Naive oracle on the first document (small hit budget keeps the
        // per-candidate executions affordable): verdicts must agree with
        // the fused merged-cached pipeline under the same budget.
        let run_first = |strategy: EvalStrategy| {
            let cfg = CheckerConfig {
                strategy,
                lucene_hits: 6,
                ..CheckerConfig::default()
            };
            let checker = AggChecker::new(case.db.clone(), cfg).unwrap();
            checker.check_text(texts[0]).unwrap()
        };
        let naive = run_first(EvalStrategy::Naive);
        let fused = run_first(EvalStrategy::MergedCached);
        prop_assert_eq!(naive.claims.len(), fused.claims.len());
        for (n, f) in naive.claims.iter().zip(&fused.claims) {
            prop_assert_eq!(
                n.verdict, f.verdict,
                "seed={} index={} claim {}",
                seed, index, n.claimed_value
            );
            prop_assert!(
                (n.correctness_probability - f.correctness_probability).abs() < 1e-6
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Streaming ≡ batch ≡ solo: a randomized corpus submitted to a
    /// [`StreamingVerifier`] in a randomized **arrival order** with a
    /// randomized worker count (1/2/4/8) produces reports bit-identical
    /// to `BatchVerifier` (input order, same worker count) and to fresh
    /// solo checkers — and its verdicts agree with the serial
    /// `evaluate_naive` oracle. Dynamic admission must change scheduling
    /// only, never content.
    #[test]
    fn streaming_reports_match_batch_and_solo(
        seed in 1u64..10_000,
        index in 0usize..6,
        n_docs in 2usize..5,
        workers_pick in 0usize..4,
        order_seed in 0u64..10_000,
    ) {
        use aggchecker::core::EvalStrategy;
        use aggchecker::corpus::{generate_multi_doc_case, CorpusSpec};
        use aggchecker::{
            AggChecker, BatchVerifier, CheckerConfig, StreamConfig, StreamingVerifier,
        };

        let workers = [1usize, 2, 4, 8][workers_pick];
        let spec = CorpusSpec::small(1, seed);
        let case = generate_multi_doc_case(&spec, index, n_docs);
        let texts: Vec<&str> = case.articles.iter().map(String::as_str).collect();
        let cfg = CheckerConfig {
            threads: workers,
            ..CheckerConfig::default()
        };

        // Randomized arrival order: a deterministic shuffle driven by
        // `order_seed` (Fisher–Yates with a splitmix-style step).
        let mut order: Vec<usize> = (0..texts.len()).collect();
        let mut state = order_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }

        // Solo oracle: a fresh checker per document.
        let solo: Vec<String> = texts
            .iter()
            .map(|t| {
                let checker = AggChecker::new(case.db.clone(), cfg.clone()).unwrap();
                checker.check_text(t).unwrap().content_fingerprint()
            })
            .collect();

        // Batch arm, input order.
        let batch = BatchVerifier::new(case.db.clone(), cfg.clone()).unwrap();
        let batch_fps: Vec<String> = batch
            .verify_texts(&texts)
            .unwrap()
            .iter()
            .map(|r| r.content_fingerprint())
            .collect();

        // Streaming arm, shuffled arrival order.
        let service = StreamingVerifier::new(
            case.db.clone(),
            cfg.clone(),
            StreamConfig {
                workers,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<(usize, aggchecker::Ticket)> = order
            .iter()
            .map(|&i| (i, service.submit_text(texts[i]).unwrap()))
            .collect();
        let mut stream_fps: Vec<Option<String>> = vec![None; texts.len()];
        for (i, ticket) in tickets {
            stream_fps[i] = Some(ticket.wait().unwrap().content_fingerprint());
        }

        for (i, fp) in stream_fps.iter().enumerate() {
            let fp = fp.as_ref().unwrap();
            prop_assert_eq!(
                fp, &solo[i],
                "stream≡solo: workers={} order={:?} doc={} seed={} index={}",
                workers, order, i, seed, index
            );
            prop_assert_eq!(
                fp, &batch_fps[i],
                "stream≡batch: workers={} order={:?} doc={} seed={} index={}",
                workers, order, i, seed, index
            );
        }

        // Naive oracle on the first document (small hit budget keeps the
        // per-candidate executions affordable): verdicts and probabilities
        // must agree with the streamed pipeline under the same budget.
        let naive_cfg = CheckerConfig {
            strategy: EvalStrategy::Naive,
            lucene_hits: 6,
            ..CheckerConfig::default()
        };
        let naive = AggChecker::new(case.db.clone(), naive_cfg.clone()).unwrap()
            .check_text(texts[0])
            .unwrap();
        let budget_cfg = CheckerConfig {
            lucene_hits: 6,
            ..cfg.clone()
        };
        let budget_service = StreamingVerifier::new(
            case.db.clone(),
            budget_cfg,
            StreamConfig { workers, ..StreamConfig::default() },
        )
        .unwrap();
        let streamed = budget_service.submit_text(texts[0]).unwrap().wait().unwrap();
        prop_assert_eq!(naive.claims.len(), streamed.claims.len());
        for (n, s) in naive.claims.iter().zip(&streamed.claims) {
            prop_assert_eq!(
                n.verdict, s.verdict,
                "stream≡naive: seed={} index={} claim {}",
                seed, index, n.claimed_value
            );
            prop_assert!(
                (n.correctness_probability - s.correctness_probability).abs() < 1e-6
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Compressed-block execution is purely physical: verifying a
    /// randomized multi-document corpus against a **sealed** database
    /// (columns carry dictionary-code block encodings, the cube scans
    /// decode/skip blocks via zone maps) produces reports bit-identical
    /// to the same corpus verified against an **unsealed** clone (plain
    /// row-at-a-time scans) — at 1, 2, 4, and 8 workers.
    #[test]
    fn encoded_reports_match_plain_scan_reports(
        seed in 1u64..10_000,
        index in 0usize..4,
        n_docs in 2usize..4,
    ) {
        use aggchecker::corpus::{generate_multi_doc_case, CorpusSpec};
        use aggchecker::{BatchVerifier, CheckerConfig};

        let spec = CorpusSpec::small(1, seed);
        let case = generate_multi_doc_case(&spec, index, n_docs);
        let texts: Vec<&str> = case.articles.iter().map(String::as_str).collect();

        // `generate_multi_doc_case` builds the database through
        // `Database::add_table`, which seals every table; stripping the
        // encodings from a clone forces the plain scan path everywhere.
        let mut plain_db = case.db.clone();
        plain_db.unseal_tables();

        for workers in [1usize, 2, 4, 8] {
            let cfg = CheckerConfig {
                threads: workers,
                ..CheckerConfig::default()
            };
            let encoded = BatchVerifier::new(case.db.clone(), cfg.clone())
                .unwrap()
                .verify_texts(&texts)
                .unwrap();
            let plain = BatchVerifier::new(plain_db.clone(), cfg)
                .unwrap()
                .verify_texts(&texts)
                .unwrap();
            for (i, (e, p)) in encoded.iter().zip(&plain).enumerate() {
                prop_assert_eq!(
                    e.content_fingerprint(),
                    p.content_fingerprint(),
                    "encoded≡plain: workers={} doc={} seed={} index={}",
                    workers, i, seed, index
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// `BatchVerifier` over a randomized multi-document case (random
    /// database, random articles, random worker count) produces reports
    /// byte-identical to sequential single-document verification with a
    /// fresh checker per document.
    #[test]
    fn batched_verification_matches_sequential(
        seed in 1u64..10_000,
        index in 0usize..6,
        n_docs in 2usize..5,
        threads in 1usize..5,
    ) {
        use aggchecker::corpus::{generate_multi_doc_case, CorpusSpec};
        use aggchecker::{AggChecker, BatchVerifier, CheckerConfig};

        let spec = CorpusSpec::small(1, seed);
        let case = generate_multi_doc_case(&spec, index, n_docs);
        let cfg = CheckerConfig {
            threads,
            ..CheckerConfig::default()
        };
        let texts: Vec<&str> = case.articles.iter().map(String::as_str).collect();
        let batch = BatchVerifier::new(case.db.clone(), cfg.clone()).unwrap();
        let reports = batch.verify_texts(&texts).unwrap();
        prop_assert_eq!(reports.len(), n_docs);
        for (text, report) in texts.iter().zip(&reports) {
            let solo = AggChecker::new(case.db.clone(), cfg.clone()).unwrap();
            let expected = solo.check_text(text).unwrap();
            prop_assert_eq!(
                report.content_fingerprint(),
                expected.content_fingerprint(),
                "threads={} seed={} index={}",
                threads, seed, index
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Partition-parallel determinism contract
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Partitioned fused scans honor the determinism contract end to end:
    /// over randomized corpora large enough that fused passes fan out
    /// (5-6 partitions at span 1, 2 at span 4, a single one at span 64),
    /// every combination of worker count {1, 2, 4, 8} × partition span
    /// {1, 4, 64} — with partition subtasks completing in whatever order
    /// the stealing workers reach them, and documents arriving in a
    /// shuffled order — produces reports bit-identical to a 1-thread
    /// default-span solo run. Verdicts agree with the serial
    /// `evaluate_naive` oracle. (Exact across *spans* because the
    /// generator's numeric columns are integer-valued, so partition sums
    /// are exact and merge associatively.)
    #[test]
    fn partitioned_reports_are_worker_and_span_independent(
        seed in 1u64..10_000,
        rows in 8_300usize..12_000,
        order_seed in 0u64..10_000,
    ) {
        use aggchecker::core::EvalStrategy;
        use aggchecker::corpus::{generate_multi_doc_case, CorpusSpec};
        use aggchecker::{AggChecker, BatchVerifier, CheckerConfig};

        let spec = CorpusSpec {
            min_rows: rows,
            max_rows: rows,
            ..CorpusSpec::small(1, seed)
        };
        let case = generate_multi_doc_case(&spec, 0, 2);
        let texts: Vec<&str> = case.articles.iter().map(String::as_str).collect();

        // Reference: 1 thread, the default span.
        let reference: Vec<String> = texts
            .iter()
            .map(|t| {
                let checker =
                    AggChecker::new(case.db.clone(), CheckerConfig::default()).unwrap();
                checker.check_text(t).unwrap().content_fingerprint()
            })
            .collect();

        // Shuffled document arrival order (deterministic xorshift).
        let mut order: Vec<usize> = (0..texts.len()).collect();
        let mut state = order_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let shuffled: Vec<&str> = order.iter().map(|&i| texts[i]).collect();

        let mut fanned_out = 0u64;
        for workers in [1usize, 2, 4, 8] {
            for span in [1usize, 4, 64] {
                let cfg = CheckerConfig {
                    threads: workers,
                    partition_blocks: span,
                    ..CheckerConfig::default()
                };
                let batch = BatchVerifier::new(case.db.clone(), cfg).unwrap();
                let reports = batch.verify_texts(&shuffled).unwrap();
                for (pos, &doc) in order.iter().enumerate() {
                    prop_assert_eq!(
                        reports[pos].content_fingerprint(),
                        reference[doc].clone(),
                        "workers={} span={} doc={} seed={} rows={}",
                        workers, span, doc, seed, rows
                    );
                    if span == 1 {
                        fanned_out += reports[pos].stats.partitions_scanned;
                    }
                }
            }
        }
        prop_assert!(
            fanned_out > 0,
            "span-1 runs over {} rows must actually partition",
            rows
        );

        // Naive oracle on the first document under a small hit budget.
        let run_first = |strategy: EvalStrategy| {
            let cfg = CheckerConfig {
                strategy,
                lucene_hits: 6,
                ..CheckerConfig::default()
            };
            let checker = AggChecker::new(case.db.clone(), cfg).unwrap();
            checker.check_text(texts[0]).unwrap()
        };
        let naive = run_first(EvalStrategy::Naive);
        let partitioned = run_first(EvalStrategy::MergedCached);
        prop_assert_eq!(naive.claims.len(), partitioned.claims.len());
        for (n, p) in naive.claims.iter().zip(&partitioned.claims) {
            prop_assert_eq!(
                n.verdict, p.verdict,
                "seed={} claim {}",
                seed, n.claimed_value
            );
            prop_assert!(
                (n.correctness_probability - p.correctness_probability).abs() < 1e-6
            );
        }
    }
}
