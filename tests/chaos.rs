//! Chaos/robustness integration suite: seeded fault injection against the
//! streaming verification service.
//!
//! The invariants under test (the tentpole robustness contract):
//!
//! * **No ticket ever hangs.** Whatever combination of injected scan
//!   panics, scan delays, flight poisoning, guard drops, intake policy,
//!   and mid-stream `close()` is active, every accepted submission's
//!   ticket settles inside the watchdog window.
//! * **Every accepted document lands in exactly one outcome bin**:
//!   `submitted == completed + failed + rejected + timed_out + cancelled`.
//! * **Drains are clean**: after `into_checker()` the shared cache has no
//!   dangling in-flight entry (`inflight_len() == 0`).
//! * **The supervisor honors its budget**: `respawns <= max_respawns`.
//! * **The zero-fault control arm changes nothing**: with a chaos plan
//!   installed but every knob at 0, reports are bit-identical to the
//!   golden fingerprints pinned in `tests/golden/`.
//!
//! Test names contain `single_flight` so the CI release job's filter runs
//! them under optimization, where interleavings are the nastiest.

use aggchecker::core::CheckerError;
use aggchecker::relational::chaos::{self, FaultPlan};
use aggchecker::{
    CheckerConfig, IntakePolicy, ReportStatus, StreamConfig, StreamingVerifier, SubmitError,
    Ticket, VerificationReport,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Figure 2's database (the same fixture the stream unit tests use).
fn nfl_db() -> aggchecker::relational::Database {
    aggchecker::corpus::builtin::nfl_suspensions().db
}

const ARTICLE: &str = r#"
<h1>Indefinite suspensions</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;

const WRONG: &str = r#"
<h1>Indefinite suspensions</h1>
<p>There were seven previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;

/// Block until every ticket settles or the watchdog window closes —
/// a stuck ticket fails the suite with a named deadline instead of
/// hanging CI forever.
fn settle_all(
    tickets: Vec<Ticket>,
    watchdog: Duration,
) -> Vec<Result<VerificationReport, CheckerError>> {
    let deadline = Instant::now() + watchdog;
    while !tickets.iter().all(|t| t.is_done()) {
        assert!(
            Instant::now() < deadline,
            "watchdog: a ticket was still unsettled after {watchdog:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    tickets.into_iter().map(|t| t.wait()).collect()
}

const WATCHDOG: Duration = Duration::from_secs(60);

/// One fault-matrix cell: run a service under `plan`, submit a workload,
/// close mid-stream, and check every robustness invariant.
fn run_cell(name: &str, plan: FaultPlan, workers: usize, policy: IntakePolicy) {
    let guard = chaos::install(plan);
    let service = StreamingVerifier::new(
        nfl_db(),
        CheckerConfig::default(),
        StreamConfig {
            workers,
            policy,
            // Small enough that `Reject` actually rejects under a burst.
            intake_capacity: 4,
            max_respawns: 6,
            lane_capacity: 0,
        },
    )
    .unwrap();
    let mut accepted = Vec::new();
    let mut policy_fulls = 0u64;
    for i in 0..10usize {
        let text = if i % 3 == 0 { WRONG } else { ARTICLE };
        // One doc carries a generous deadline, one is cancelled below —
        // the deadline/cancel paths must compose with every fault.
        let outcome = if i == 4 {
            service.submit_text_with_deadline(text, Some(Instant::now() + WATCHDOG))
        } else {
            service.submit_text(text)
        };
        match outcome {
            Ok(t) => accepted.push(t),
            Err(SubmitError::Full) => {
                assert_eq!(
                    policy,
                    IntakePolicy::Reject,
                    "{name}: Block never returns Full"
                );
                policy_fulls += 1;
            }
            Err(SubmitError::Closed) => panic!("{name}: nothing closed the stream yet"),
        }
    }
    if let Some(victim) = accepted.pop() {
        victim.cancel();
        accepted.push(victim);
    }
    // Mid-stream close: everything accepted must still settle.
    service.close();
    assert!(matches!(
        service.submit_text(ARTICLE),
        Err(SubmitError::Closed)
    ));
    let results = settle_all(accepted, WATCHDOG);
    for result in &results {
        match result {
            Ok(report) => {
                // Partial reports only come from the deadline/cancel
                // paths, never from an injected fault.
                if report.status == ReportStatus::TimedOut {
                    panic!("{name}: a {WATCHDOG:?} deadline cannot expire here");
                }
            }
            Err(CheckerError::Relational(_) | CheckerError::Stream(_)) => {
                // A worker died past the respawn budget, or a poisoned
                // single-flight exhausted its retries: failing cleanly is
                // the contract. Hanging or panicking the client is not.
            }
            Err(e) => panic!("{name}: unexpected error class: {e}"),
        }
    }
    let stats = service.stats();
    assert_eq!(
        stats.submitted,
        stats.settled(),
        "{name}: every accepted document lands in exactly one bin"
    );
    assert_eq!(stats.submitted, results.len() as u64, "{name}");
    assert!(
        stats.respawns <= 6,
        "{name}: respawn budget accounting broke: {} > 6",
        stats.respawns
    );
    if policy_fulls > 0 {
        assert_eq!(policy, IntakePolicy::Reject);
    }
    if plan.is_zero() {
        assert_eq!(stats.respawns, 0, "{name}: zero plan must not kill workers");
        assert_eq!(stats.poison_retries, 0, "{name}");
    }
    let injected = guard.injected_total();
    let checker = service.into_checker();
    assert_eq!(
        checker.cache().inflight_len(),
        0,
        "{name}: drained shutdown left a dangling in-flight entry \
         ({injected} faults injected)"
    );
    drop(guard);
}

/// The seeded fault matrix: {panic, delay, flight-poison, guard-drop,
/// everything-at-once} × {Block, Reject} × {1, 2, 4, 8} workers, each
/// cell with a mid-stream close, a deadline-carrying document, and a
/// cancelled document. ~60ms/doc in release; the watchdog turns any hang
/// into a named failure.
#[test]
fn chaos_fault_matrix_single_flight_settles_every_ticket() {
    let plans = [
        (
            "panic",
            FaultPlan {
                seed: 3,
                panic_every_scan_blocks: 7,
                ..FaultPlan::default()
            },
        ),
        (
            "delay",
            FaultPlan {
                seed: 5,
                delay_every_scan_blocks: 3,
                delay_micros: 100,
                ..FaultPlan::default()
            },
        ),
        (
            "poison-flight",
            FaultPlan {
                seed: 2,
                poison_every_flights: 5,
                ..FaultPlan::default()
            },
        ),
        (
            "guard-drop",
            FaultPlan {
                seed: 1,
                poison_every_wave_guards: 4,
                ..FaultPlan::default()
            },
        ),
        (
            "combined",
            FaultPlan {
                seed: 11,
                panic_every_scan_blocks: 13,
                delay_every_scan_blocks: 5,
                delay_micros: 50,
                poison_every_flights: 9,
                poison_every_wave_guards: 7,
            },
        ),
    ];
    for (i, (name, plan)) in plans.iter().enumerate() {
        for (j, workers) in [1usize, 2, 4, 8].iter().enumerate() {
            // Alternate the intake policy across cells instead of fully
            // crossing it: both policies meet every plan and every width.
            let policy = if (i + j) % 2 == 0 {
                IntakePolicy::Block
            } else {
                IntakePolicy::Reject
            };
            let cell = format!("{name}/w{workers}/{policy:?}");
            run_cell(&cell, *plan, *workers, policy);
        }
    }
}

/// Aggressive worker killing: scan panics frequent enough to spend the
/// whole respawn budget. The pool may die entirely — in which case the
/// supervisor must settle whatever is still queued — but nothing hangs
/// and the accounting reconciles.
#[test]
fn chaos_worker_deaths_single_flight_respects_respawn_budget() {
    let guard = chaos::install(FaultPlan {
        seed: 0,
        panic_every_scan_blocks: 2,
        ..FaultPlan::default()
    });
    let service = StreamingVerifier::new(
        nfl_db(),
        CheckerConfig::default(),
        StreamConfig {
            workers: 2,
            max_respawns: 3,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    let tickets: Vec<Ticket> = (0..8)
        .map(|_| service.submit_text(ARTICLE).unwrap())
        .collect();
    service.close();
    let results = settle_all(tickets, WATCHDOG);
    assert!(
        guard.injected_panics() > 0,
        "the plan must actually kill workers for this test to mean anything"
    );
    let stats = service.stats();
    assert_eq!(stats.submitted, stats.settled());
    assert!(stats.respawns <= 3, "budget overrun: {}", stats.respawns);
    assert!(
        stats.failed > 0 || stats.rejected > 0,
        "killing every other scan block must fail at least one document"
    );
    for result in results {
        match result {
            Ok(report) => assert_eq!(report.status, ReportStatus::Complete),
            Err(CheckerError::Relational(_) | CheckerError::Stream(_)) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }
    let checker = service.into_checker();
    assert_eq!(checker.cache().inflight_len(), 0);
    drop(guard);
}

/// Scan panics landing *inside partition subtasks*: a corpus big enough
/// that every fused pass fans out into three 1-block partitions, so an
/// injected worker death kills one partition of a pass mid-scan. The
/// first-failure protocol must fail the whole pass (every member, their
/// flight waiters woken) rather than leave the merge barrier waiting on a
/// deposit that will never arrive — end to end, nothing hangs and the
/// accounting reconciles.
#[test]
fn chaos_partition_panic_single_flight_settles_every_ticket() {
    let case = aggchecker::corpus::generate_multi_doc_case(
        &aggchecker::corpus::CorpusSpec {
            min_rows: 6 * 1024,
            max_rows: 6 * 1024,
            ..aggchecker::corpus::CorpusSpec::default()
        },
        7,
        3,
    );
    let guard = chaos::install(FaultPlan {
        seed: 3,
        panic_every_scan_blocks: 23,
        ..FaultPlan::default()
    });
    let service = StreamingVerifier::new(
        case.db.clone(),
        CheckerConfig {
            partition_blocks: 1,
            ..CheckerConfig::default()
        },
        StreamConfig {
            workers: 4,
            max_respawns: 6,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    let tickets: Vec<Ticket> = case
        .articles
        .iter()
        .cycle()
        .take(8)
        .map(|t| service.submit_text(t).unwrap())
        .collect();
    service.close();
    let results = settle_all(tickets, WATCHDOG);
    assert!(
        guard.injected_panics() > 0,
        "the plan must actually kill a partition subtask"
    );
    let stats = service.stats();
    assert_eq!(stats.submitted, stats.settled(), "one bin per document");
    assert!(stats.respawns <= 6, "budget overrun: {}", stats.respawns);
    assert!(
        stats.failed > 0 || stats.rejected > 0,
        "a partition death must fail at least one document"
    );
    for result in results {
        match result {
            Ok(report) => assert_eq!(report.status, ReportStatus::Complete),
            Err(CheckerError::Relational(_) | CheckerError::Stream(_)) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }
    let checker = service.into_checker();
    assert_eq!(
        checker.cache().inflight_len(),
        0,
        "a dead partition pass left a dangling in-flight entry"
    );
    drop(guard);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The zero-fault control arm: a `FaultPlan` with every knob at 0 —
    /// whatever its seed — and no deadlines must leave every golden
    /// corpus fingerprint bit-identical to the pinned fixtures, solo and
    /// streamed at the sampled worker count alike. Enabling the chaos
    /// layer is observationally free until a fault actually fires.
    #[test]
    fn chaos_zero_fault_single_flight_is_bit_identical(
        seed in 0u64..10_000,
        workers in 1usize..9,
    ) {
        let _guard = chaos::install(FaultPlan::zero(seed));
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("golden");
        for name in [
            "nfl_suspensions",
            "campaign_donations",
            "developer_survey",
        ] {
            let expected = std::fs::read_to_string(dir.join(format!("{name}.fingerprint")))
                .expect("golden fixture exists (see tests/end_to_end.rs)");
            let tc = match name {
                "nfl_suspensions" => aggchecker::corpus::builtin::nfl_suspensions(),
                "campaign_donations" => aggchecker::corpus::builtin::campaign_donations(),
                _ => aggchecker::corpus::builtin::developer_survey(),
            };
            let checker =
                aggchecker::AggChecker::new(tc.db.clone(), CheckerConfig::default()).unwrap();
            let solo = checker.check_text(&tc.article_html).unwrap();
            prop_assert_eq!(solo.status, ReportStatus::Complete);
            prop_assert_eq!(
                solo.content_fingerprint(),
                expected.clone(),
                "{}: solo run drifted under a zero-fault plan",
                name
            );
            prop_assert_eq!(solo.stats.poison_retries, 0);
            let service = StreamingVerifier::new(
                tc.db.clone(),
                CheckerConfig::default(),
                StreamConfig {
                    workers,
                    ..StreamConfig::default()
                },
            )
            .unwrap();
            let report = service
                .submit_text(&tc.article_html)
                .unwrap()
                .wait()
                .unwrap();
            prop_assert_eq!(
                report.content_fingerprint(),
                expected,
                "{}: streamed run drifted under a zero-fault plan",
                name
            );
            let checker = service.into_checker();
            prop_assert_eq!(checker.cache().inflight_len(), 0);
        }
    }
}
