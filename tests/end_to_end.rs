//! Cross-crate integration tests: corpus generation → verification →
//! metrics, plus the paper's hand-built cases end to end.

use agg_bench::runner::run_corpus;
use aggchecker::corpus::builtin::{all_builtin, campaign_donations, developer_survey};
use aggchecker::corpus::stats::align_claims;
use aggchecker::corpus::{generate_corpus, CorpusSpec};
use aggchecker::relational::execute_query;
use aggchecker::{AggChecker, CheckerConfig, Verdict};

#[test]
fn builtin_table9_cases_are_flagged() {
    // The paper's Table 9: each of these articles contains a claim its
    // author later confirmed to be wrong. The checker must flag all three.
    for tc in all_builtin() {
        let checker = AggChecker::new(tc.db.clone(), CheckerConfig::default()).unwrap();
        let report = checker.check_text(&tc.article_html).unwrap();
        let detected: Vec<f64> = report.claims.iter().map(|c| c.claimed_value).collect();
        let aligned = align_claims(&detected, &tc.ground_truth);
        for (g, slot) in tc.ground_truth.iter().zip(aligned) {
            let claim = &report.claims[slot.expect("claim detected")];
            if !g.is_correct {
                assert_eq!(
                    claim.verdict,
                    Verdict::Erroneous,
                    "{}: wrong claim {} must be flagged",
                    tc.name,
                    g.claimed_value
                );
            } else {
                assert_eq!(
                    claim.verdict,
                    Verdict::Correct,
                    "{}: correct claim {} must not be flagged",
                    tc.name,
                    g.claimed_value
                );
            }
        }
    }
}

#[test]
fn donations_ground_truth_ranks_first() {
    // The CountDistinct(recipient) query should be the checker's own top
    // suggestion for the donations claim.
    let tc = campaign_donations();
    let checker = AggChecker::new(tc.db.clone(), CheckerConfig::default()).unwrap();
    let report = checker.check_text(&tc.article_html).unwrap();
    let top = report.claims[0].ml_query().unwrap();
    assert!(
        top.query.semantically_equal(&tc.ground_truth[0].query),
        "top query was {}",
        top.query.to_sql(&tc.db)
    );
    assert_eq!(top.result, Some(63.0));
}

#[test]
fn survey_percentage_query_is_found_in_top_k() {
    let tc = developer_survey();
    let checker = AggChecker::new(tc.db.clone(), CheckerConfig::default()).unwrap();
    let report = checker.check_text(&tc.article_html).unwrap();
    let rank = report.claims[0]
        .top_queries
        .iter()
        .position(|rq| rq.query.semantically_equal(&tc.ground_truth[0].query));
    assert!(
        rank.is_some(),
        "Percentage(self-taught) must be a candidate"
    );
}

#[test]
fn reports_are_deterministic() {
    let tc = aggchecker::corpus::generate_test_case(&CorpusSpec::small(1, 99), 0);
    let run = |threads: usize| {
        let cfg = CheckerConfig {
            threads,
            ..CheckerConfig::default()
        };
        let checker = AggChecker::new(tc.db.clone(), cfg).unwrap();
        let report = checker.check_text(&tc.article_html).unwrap();
        report
            .claims
            .iter()
            .map(|c| {
                (
                    c.claimed_value.to_bits(),
                    c.verdict == Verdict::Erroneous,
                    c.ml_query().map(|q| q.query.to_sql(&tc.db)),
                )
            })
            .collect::<Vec<_>>()
    };
    let a = run(1);
    let b = run(1);
    let c = run(4);
    assert_eq!(a, b, "same-config reruns must agree");
    assert_eq!(a, c, "thread count must not change results");
}

#[test]
fn corpus_run_beats_baseline_shapes() {
    // A small corpus run must reproduce the paper's qualitative shape:
    // good top-10 coverage, decent recall, correct claims covered better
    // than incorrect ones.
    let corpus = generate_corpus(&CorpusSpec::small(12, 2024));
    let run = run_corpus(&corpus, &CheckerConfig::default());
    let cov = run.coverage();
    assert!(cov.at(10) > 0.5, "top-10 coverage {:.3}", cov.at(10));
    let (correct, incorrect) = run.coverage_split();
    if incorrect.total() >= 5 {
        // Small-sample slack: the paper's Figure 10 gap is large, but a
        // dozen articles only contain a handful of erroneous claims.
        assert!(
            correct.at(10) + 0.2 >= incorrect.at(10),
            "correct-claim coverage must dominate (Fig. 10 shape): {:.3} vs {:.3}",
            correct.at(10),
            incorrect.at(10)
        );
    }
}

#[test]
fn ground_truth_queries_always_evaluate() {
    let corpus = generate_corpus(&CorpusSpec::small(4, 7));
    for tc in &corpus {
        for g in &tc.ground_truth {
            let v = execute_query(&tc.db, &g.query)
                .expect("valid query")
                .expect("non-null result");
            assert!((v - g.true_value).abs() < 1e-9);
        }
    }
}

#[test]
fn checker_survives_adversarial_documents() {
    let tc = aggchecker::corpus::builtin::nfl_suspensions();
    let checker = AggChecker::new(tc.db.clone(), CheckerConfig::default()).unwrap();
    for text in [
        "",
        "no claims at all",
        "<p></p><h1></h1>",
        "<p>999999999999 and 0 and -5 and 3.14159</p>",
        "<h1>1</h1><h2>2</h2><h3>3</h3>",
        "<p>Sentence with 1,234,567 large and 0.00001 small numbers.</p>",
        "&amp;&lt;&gt; <p>busted &quot;entities&quot; with 3 claims</p>",
    ] {
        let report = checker.check_text(text).expect("no panic");
        // Every detected claim must carry a coherent verdict.
        for claim in &report.claims {
            if claim.verdict != Verdict::Unverifiable {
                assert!(!claim.top_queries.is_empty());
            }
            assert!((0.0..=1.0).contains(&claim.correctness_probability));
        }
    }
}

#[test]
fn join_cases_verify_across_tables() {
    // A two-table star schema: claims with predicates on the dimension
    // attribute force join-path discovery through the whole pipeline.
    let tc = aggchecker::corpus::generate_join_case(&CorpusSpec::small(1, 31), 0);
    assert_eq!(tc.db.table_count(), 2);
    let run = run_corpus(std::slice::from_ref(&tc), &CheckerConfig::default());
    assert!(!run.outcomes.is_empty());
    assert!(run.outcomes.iter().all(|o| o.detected));
    // The cross-table claims must be *resolvable*: their ground-truth query
    // appears among the top candidates for at least half of them.
    let cross: Vec<_> = tc
        .ground_truth
        .iter()
        .zip(&run.outcomes)
        .filter(|(g, _)| g.query.tables_referenced().len() > 1)
        .collect();
    assert!(!cross.is_empty());
    let found = cross.iter().filter(|(_, o)| o.truth_rank.is_some()).count();
    assert!(
        found * 2 >= cross.len(),
        "join queries must be reachable: {found}/{}",
        cross.len()
    );
}

// ---------------------------------------------------------------------------
// Golden reports
// ---------------------------------------------------------------------------

/// The four corpora the `examples/` programs run — Figure 2's NFL
/// passage, the two Table 9 cases (campaign donations, developer survey),
/// and the quickstart sales CSV. Each pairs a deterministic database with
/// a fixed article, so its full report fingerprint can be pinned.
fn golden_cases() -> Vec<(&'static str, aggchecker::relational::Database, String)> {
    use aggchecker::relational::csv::load_csv;
    use aggchecker::relational::Database;

    let nfl = aggchecker::corpus::builtin::nfl_suspensions();
    let donations = campaign_donations();
    let survey = developer_survey();

    // The quickstart example's data set and write-up — the same files
    // `examples/quickstart.rs` includes, so the fixture can never drift
    // from what the example actually runs.
    let csv = include_str!("../examples/data/quickstart_sales.csv");
    let article = include_str!("../examples/data/quickstart_article.html");
    let table = load_csv("sales", csv).unwrap();
    let mut sales_db = Database::new("quickstart");
    sales_db.add_table(table);

    vec![
        ("nfl_suspensions", nfl.db, nfl.article_html),
        ("campaign_donations", donations.db, donations.article_html),
        ("developer_survey", survey.db, survey.article_html),
        ("quickstart_sales", sales_db, article.to_string()),
    ]
}

/// Golden-report snapshots: the `content_fingerprint()` of each example
/// corpus is pinned in `tests/golden/`, so any change that shifts a
/// verdict, a ranking, a probability, or a query description fails loudly
/// with a named corpus instead of silently drifting. Regenerate
/// intentionally with `UPDATE_GOLDEN=1 cargo test golden_reports`.
#[test]
fn golden_reports_match_fixtures() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    for (name, db, article) in golden_cases() {
        let checker = AggChecker::new(db, CheckerConfig::default()).unwrap();
        let report = checker.check_text(&article).unwrap();
        assert!(
            !report.claims.is_empty(),
            "{name}: a golden corpus must contain claims"
        );
        let fingerprint = report.content_fingerprint();
        let path = dir.join(format!("{name}.fingerprint"));
        if update {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &fingerprint).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden fixture {} ({e}); \
                 run UPDATE_GOLDEN=1 cargo test golden_reports to create it",
                path.display()
            )
        });
        assert_eq!(
            fingerprint, expected,
            "{name}: report content drifted from tests/golden/{name}.fingerprint — \
             if the change is intentional, regenerate with \
             UPDATE_GOLDEN=1 cargo test golden_reports"
        );
    }
}

/// The golden corpora stream bit-identically too: the fixtures pin not
/// just solo runs but the whole service surface.
#[test]
fn golden_reports_hold_under_streaming() {
    use aggchecker::{StreamConfig, StreamingVerifier};
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    for (name, db, article) in golden_cases() {
        let path = dir.join(format!("{name}.fingerprint"));
        let Ok(expected) = std::fs::read_to_string(&path) else {
            // `golden_reports_match_fixtures` owns the missing-fixture error.
            continue;
        };
        let service = StreamingVerifier::new(
            db,
            CheckerConfig::default(),
            StreamConfig {
                workers: 4,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<_> = (0..3)
            .map(|_| service.submit_text(&article).unwrap())
            .collect();
        for ticket in tickets {
            assert_eq!(
                ticket.wait().unwrap().content_fingerprint(),
                expected,
                "{name}: streamed report drifted from the golden fixture"
            );
        }
    }
}

#[test]
fn experiments_registry_smoke() {
    use agg_bench::experiments::{run_experiment, ExpContext, Scale};
    let ctx = ExpContext::new(Scale::Quick, 5);
    // The cheap, corpus-analysis experiments must run and mention their
    // paper artifact.
    for (name, needle) in [
        ("fig8", "query candidates"),
        ("fig9a", "Distribution of claims"),
        ("fig9b", "top-N"),
        ("fig9c", "predicates"),
    ] {
        let out = run_experiment(name, &ctx).expect("known experiment");
        assert!(out.contains(needle), "{name}: {out}");
    }
}
