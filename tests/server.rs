//! Loopback end-to-end tests for the networked verification server:
//! the binary protocol streams frame-exact reports (fingerprint-equal
//! to solo runs at any worker count), sessions are served fairly from
//! per-client lanes, and every failure path — malformed frames,
//! mid-stream disconnects — settles cleanly with nothing leaked.

use aggchecker::core::{ClaimProgress, ProgressObserver, SubmitOptions};
use aggchecker::corpus::{generate_multi_doc_case, CorpusSpec};
use aggchecker::relational::{Database, Table};
use aggchecker::server::client::{BinaryClient, ClientError};
use aggchecker::server::protocol::{self, errcode, FrameReader, Opcode, ReadOutcome};
use aggchecker::server::{json, ServerConfig, VerifyServer};
use aggchecker::{
    AggChecker, CheckerConfig, IntakePolicy, StreamConfig, StreamingVerifier, Ticket,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Fast-polling server config so tests never wait on the 30 s idle
/// default.
fn test_config() -> ServerConfig {
    ServerConfig {
        idle_timeout: Duration::from_secs(10),
        poll_interval: Duration::from_millis(5),
    }
}

/// An observer that parks the (sole) worker inside the first evaluation
/// wave until released — the deterministic way to hold a service busy
/// while a test stages queue states.
#[derive(Default)]
struct Gate {
    entered: Mutex<bool>,
    entered_cv: Condvar,
    released: Mutex<bool>,
    released_cv: Condvar,
}

impl Gate {
    fn wait_entered(&self) {
        let mut entered = self.entered.lock().unwrap();
        while !*entered {
            entered = self.entered_cv.wait(entered).unwrap();
        }
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.released_cv.notify_all();
    }
}

impl ProgressObserver for Gate {
    fn wave_complete(&self, _wave: usize, _last: bool, _claims: &[ClaimProgress]) {
        {
            let mut entered = self.entered.lock().unwrap();
            *entered = true;
            self.entered_cv.notify_all();
        }
        let mut released = self.released.lock().unwrap();
        while !*released {
            released = self.released_cv.wait(released).unwrap();
        }
    }
}

/// Tiny single-table database plus a one-claim article, for tests where
/// verification content is irrelevant.
fn small_db() -> (Database, String) {
    let table = Table::from_columns(
        "sales",
        vec![("region", vec!["west".into(), "west".into(), "east".into()])],
    )
    .unwrap();
    let mut db = Database::new("demo");
    db.add_table(table);
    let article = "<p>There were two sales in the west region.</p>".to_string();
    (db, article)
}

/// Submit a gate document in-process (lane 0) on the server's service,
/// pinning its single worker; returns the ticket to await after
/// `gate.release()`.
fn pin_worker(service: &StreamingVerifier, article: &str, gate: &Arc<Gate>) -> Ticket {
    let ticket = service
        .submit_text_with(
            article,
            SubmitOptions {
                deadline: None,
                lane: 0,
                observer: Some(Arc::clone(gate) as Arc<dyn ProgressObserver>),
            },
        )
        .expect("gate submission accepted");
    gate.wait_entered();
    ticket
}

/// A complete report streamed over the wire reassembles bit-identically
/// to a solo in-process run — at every worker count — and each document
/// pushed at least one incremental progress frame before completing.
#[test]
fn wire_reports_match_solo_fingerprints_at_any_worker_count() {
    let case = generate_multi_doc_case(&CorpusSpec::default(), 1, 3);
    let cfg = CheckerConfig::default();
    let checker = AggChecker::new(case.db.clone(), cfg.clone()).unwrap();
    let expected: Vec<String> = case
        .articles
        .iter()
        .map(|article| checker.check_text(article).unwrap().content_fingerprint())
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let service = StreamingVerifier::new(
            case.db.clone(),
            cfg.clone(),
            StreamConfig {
                workers,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let server = VerifyServer::start(
            "127.0.0.1:0",
            vec![("case".to_string(), service)],
            test_config(),
        )
        .unwrap();
        let mut client = BinaryClient::connect(server.local_addr(), "case").unwrap();
        let docs: Vec<u64> = case
            .articles
            .iter()
            .map(|article| client.submit(article, None).unwrap())
            .collect();
        for (doc, expected) in docs.iter().zip(&expected) {
            let report = client.await_report(*doc).unwrap();
            assert_eq!(
                &report.content_fingerprint(),
                expected,
                "{workers} workers: wire-reassembled report drifted from solo"
            );
            assert!(
                client.progress_waves(*doc) >= 1,
                "{workers} workers: no incremental progress frame arrived"
            );
        }
        let wire_stats = client.stats().unwrap();
        assert_eq!(wire_stats.stream.completed, case.articles.len() as u64);
        client.goodbye().unwrap();
        let service = server.namespace("case").unwrap();
        server.shutdown();
        assert_eq!(service.in_flight(), 0, "{workers} workers: in-flight leak");
        assert_eq!(service.queue_depth(), 0, "{workers} workers: queue leak");
    }
}

/// One HTTP exchange on a fresh connection (`Connection: close`), raw
/// over TCP — the tests deliberately avoid the crate's own client types
/// for the HTTP side so the bytes on the wire are the contract.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, json::Json) {
    let mut sock = TcpStream::connect(addr).unwrap();
    write!(
        sock,
        "{method} {path} HTTP/1.1\r\nHost: verifyd\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    sock.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let json_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    (
        status,
        json::parse(json_body).expect("response body is JSON"),
    )
}

/// The HTTP JSON API: submit → poll → report; cancel settles a queued
/// document as `cancelled`; stats expose both server counters and
/// per-namespace stream counters; errors use the documented statuses.
#[test]
fn http_api_submit_poll_cancel_stats() {
    let (db, article) = small_db();
    let service = StreamingVerifier::new(
        db.clone(),
        CheckerConfig::default(),
        StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    let server = VerifyServer::start(
        "127.0.0.1:0",
        vec![("demo".to_string(), service)],
        test_config(),
    )
    .unwrap();
    let addr = server.local_addr();
    let expected = AggChecker::new(db, CheckerConfig::default())
        .unwrap()
        .check_text(&article)
        .unwrap()
        .content_fingerprint();

    // Pin the single worker so the next submission stays queued.
    let gate = Arc::new(Gate::default());
    let service = server.namespace("demo").unwrap();
    let gate_ticket = pin_worker(&service, &article, &gate);

    // Submit B (queued behind the gate), then cancel it: determinism by
    // construction — B cannot start while the gate holds the worker.
    let (status, accepted) = http(
        addr,
        "POST",
        "/v1/documents",
        &format!("{{\"text\":\"{}\"}}", json::escape(&article)),
    );
    assert_eq!(status, 202);
    let doc_b = accepted.get("id").and_then(json::Json::as_u64).unwrap();
    assert_eq!(
        accepted.get("status").and_then(json::Json::as_str),
        Some("pending")
    );
    let (status, polled) = http(addr, "GET", &format!("/v1/documents/{doc_b}"), "");
    assert_eq!(status, 200);
    assert_eq!(
        polled.get("status").and_then(json::Json::as_str),
        Some("pending")
    );
    let (status, cancelled) = http(addr, "POST", &format!("/v1/documents/{doc_b}/cancel"), "");
    assert_eq!(status, 200);
    assert_eq!(cancelled.get("cancelled"), Some(&json::Json::Bool(true)));
    let (_, polled) = http(addr, "GET", &format!("/v1/documents/{doc_b}"), "");
    assert_eq!(
        polled.get("status").and_then(json::Json::as_str),
        Some("cancelled"),
        "a queued document cancels deterministically"
    );

    gate.release();
    gate_ticket.wait().unwrap();

    // Happy path: submit, poll to completion, fingerprint matches solo.
    let (status, accepted) = http(
        addr,
        "POST",
        "/v1/documents",
        &format!(
            "{{\"text\":\"{}\",\"namespace\":\"demo\"}}",
            json::escape(&article)
        ),
    );
    assert_eq!(status, 202);
    let doc_c = accepted.get("id").and_then(json::Json::as_u64).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let report = loop {
        let (_, polled) = http(addr, "GET", &format!("/v1/documents/{doc_c}"), "");
        match polled.get("status").and_then(json::Json::as_str) {
            Some("pending") => {
                assert!(Instant::now() < deadline, "document never completed");
                std::thread::sleep(Duration::from_millis(10));
            }
            Some("complete") => break polled,
            other => panic!("unexpected status {other:?}"),
        }
    };
    assert_eq!(
        report.get("fingerprint").and_then(json::Json::as_str),
        Some(expected.as_str()),
        "HTTP-reported fingerprint drifted from solo"
    );
    match report.get("claims") {
        Some(json::Json::Arr(claims)) => assert!(!claims.is_empty()),
        other => panic!("expected claims array, got {other:?}"),
    }

    // Error contract: bad JSON, missing text, unknown namespace/document.
    let (status, _) = http(addr, "POST", "/v1/documents", "{not json");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "POST", "/v1/documents", "{\"deadline_ms\":5}");
    assert_eq!(status, 400);
    let (status, _) = http(
        addr,
        "POST",
        "/v1/documents",
        "{\"text\":\"x\",\"namespace\":\"nope\"}",
    );
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/v1/documents/999999", "");
    assert_eq!(status, 404);

    // Stats: server counters plus this namespace's stream counters.
    let (status, stats) = http(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert!(
        stats
            .get("connections")
            .and_then(json::Json::as_u64)
            .unwrap()
            >= 1
    );
    let demo = stats.get("namespaces").and_then(|n| n.get("demo")).unwrap();
    assert_eq!(demo.get("cancelled").and_then(json::Json::as_u64), Some(1));
    assert!(demo.get("completed").and_then(json::Json::as_u64).unwrap() >= 2);

    server.shutdown();
    assert_eq!(service.in_flight(), 0);
}

/// Two binary sessions compete for one worker: each session's
/// submissions ride its own intake lane, a flooding client is capped at
/// its lane capacity (excess rejected `FULL`), and the modest client is
/// admitted regardless — bounded skew by construction.
#[test]
fn competing_sessions_get_fair_lanes_and_bounded_skew() {
    let (db, article) = small_db();
    let service = StreamingVerifier::new(
        db,
        CheckerConfig::default(),
        StreamConfig {
            workers: 1,
            lane_capacity: 2,
            policy: IntakePolicy::Reject,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    let server = VerifyServer::start(
        "127.0.0.1:0",
        vec![("demo".to_string(), service)],
        test_config(),
    )
    .unwrap();
    let service = server.namespace("demo").unwrap();
    let gate = Arc::new(Gate::default());
    let gate_ticket = pin_worker(&service, &article, &gate);

    let mut client_a = BinaryClient::connect(server.local_addr(), "demo").unwrap();
    let mut client_b = BinaryClient::connect(server.local_addr(), "demo").unwrap();

    // A floods 4 submissions against a lane capacity of 2: exactly the
    // first two are admitted, the rest shed with FULL.
    let mut admitted = Vec::new();
    let mut shed = 0;
    for _ in 0..4 {
        match client_a.submit(&article, None) {
            Ok(doc) => admitted.push(doc),
            Err(ClientError::Rejected { code, .. }) => {
                assert_eq!(code, errcode::FULL);
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(admitted.len(), 2, "lane capacity admits exactly 2");
    assert_eq!(shed, 2, "the flood beyond the lane is shed");

    // B's single submission is admitted despite A's flood: B has its
    // own lane.
    let doc_b = client_b
        .submit(&article, None)
        .expect("the modest client is never starved by the flood");

    // The service sees one queued lane per session, depths 2 and 1.
    let mut lanes = service.lane_depths();
    lanes.sort();
    assert_eq!(
        lanes,
        vec![(client_a.session(), 2usize), (client_b.session(), 1usize)],
        "per-session lanes with the staged depths"
    );

    gate.release();
    gate_ticket.wait().unwrap();
    for doc in admitted {
        let report = client_a.await_report(doc).unwrap();
        assert!(!report.claims.is_empty());
    }
    let report = client_b.await_report(doc_b).unwrap();
    assert!(!report.claims.is_empty());

    let stats = client_a.stats().unwrap();
    // Policy sheds never enqueue, so the service-side `rejected` counter
    // (tickets settled unrun) stays 0: the shed count is wire-visible
    // through the Rejected frames asserted above.
    assert_eq!(stats.stream.rejected, 0);
    assert_eq!(stats.stream.completed, 4); // gate + 2×A + B

    client_a.goodbye().unwrap();
    client_b.goodbye().unwrap();
    server.shutdown();
    assert_eq!(service.in_flight(), 0);
    assert_eq!(service.queue_depth(), 0);
}

/// A malformed frame (here: length 0) draws one `Error` frame with
/// `BAD_FRAME`, a counted malformed-frame, and a closed connection.
#[test]
fn malformed_frames_error_and_close() {
    let (db, _) = small_db();
    let service =
        StreamingVerifier::new(db, CheckerConfig::default(), StreamConfig::default()).unwrap();
    let server = VerifyServer::start(
        "127.0.0.1:0",
        vec![("demo".to_string(), service)],
        test_config(),
    )
    .unwrap();

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    protocol::write_frame(&mut sock, Opcode::Hello, &protocol::hello("demo")).unwrap();
    let mut reader = FrameReader::new();
    let hello_ok = loop {
        if let ReadOutcome::Frame(f) = reader.read_from(&mut sock).unwrap() {
            break f;
        }
    };
    assert_eq!(hello_ok.opcode, Opcode::HelloOk as u8);

    // A zero-length frame is never legal.
    sock.write_all(&[0, 0, 0, 0]).unwrap();
    let error = loop {
        if let ReadOutcome::Frame(f) = reader.read_from(&mut sock).unwrap() {
            break f;
        }
    };
    assert_eq!(error.opcode, Opcode::Error as u8);
    let (code, _message) = protocol::parse_error(&error.payload).unwrap();
    assert_eq!(code, errcode::BAD_FRAME);
    // ... and the connection is closed behind it.
    assert!(matches!(
        reader.read_from(&mut sock).unwrap(),
        ReadOutcome::Eof
    ));

    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().open_connections > 0 {
        assert!(Instant::now() < deadline, "connection thread never exited");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.stats().malformed_frames, 1);
    server.shutdown();
}

/// Dropping a connection mid-stream cancels that session's outstanding
/// documents: the tickets settle (nothing blocks forever) and the
/// service drains to zero.
#[test]
fn mid_stream_disconnect_settles_outstanding_documents() {
    let (db, article) = small_db();
    let service = StreamingVerifier::new(
        db,
        CheckerConfig::default(),
        StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    let server = VerifyServer::start(
        "127.0.0.1:0",
        vec![("demo".to_string(), service)],
        test_config(),
    )
    .unwrap();
    let service = server.namespace("demo").unwrap();
    let gate = Arc::new(Gate::default());
    let gate_ticket = pin_worker(&service, &article, &gate);

    // Accepted but queued behind the gate — outstanding at disconnect.
    let mut client = BinaryClient::connect(server.local_addr(), "demo").unwrap();
    client.submit(&article, None).unwrap();
    drop(client); // vanish without Goodbye

    // The server observes EOF and cancels the queued document.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().cancelled < 1 {
        assert!(
            Instant::now() < deadline,
            "disconnected session's document never settled"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    gate.release();
    gate_ticket.wait().unwrap();
    server.shutdown();
    // The ticket settles before the worker releases its in-flight slot,
    // so poll to quiescence: a leak is a *permanently* nonzero gauge.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.in_flight() != 0 {
        assert!(Instant::now() < deadline, "in-flight leak after disconnect");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(service.queue_depth(), 0, "queue leak after disconnect");
    let stats = service.stats();
    assert_eq!(stats.submitted, stats.settled(), "every ticket settled");
}
