//! The end-to-end verification pipeline (Figure 1 of the paper).

use crate::candidates::CandidateSet;
use crate::config::{CheckerConfig, EvalStrategy};
use crate::evaluate::{
    document_literal_union, evaluate_naive, EvalStats, Evaluator, ResultsMatrix, TaskBundling,
};
use crate::fragments::{CatalogConfig, FragmentCatalog};
use crate::keywords::claim_keywords;
use crate::matching::{match_claim_with_form, ClaimScores};
use crate::model::{m_step, score_claim, ClaimDistribution, Theta};
use crate::scope::pick_scope;
use agg_nlp::claims::{detect_claims, ClaimMention};
use agg_nlp::structure::{parse_document, Document};
use agg_nlp::synonyms::SynonymDict;
use agg_relational::{
    CostModel, CubeScheduler, Database, EvalCache, GridArena, SimpleAggregateQuery,
    DEFAULT_CACHE_SHARDS,
};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors from the verification pipeline.
#[derive(Debug)]
pub enum CheckerError {
    Config(String),
    Relational(agg_relational::RelationalError),
    /// A streaming submission was abandoned before verification: the
    /// service shut down (or its worker died) with the document still
    /// queued. See [`crate::stream::StreamingVerifier`].
    Stream(String),
}

impl fmt::Display for CheckerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckerError::Config(msg) => write!(f, "configuration error: {msg}"),
            CheckerError::Relational(e) => write!(f, "relational error: {e}"),
            CheckerError::Stream(msg) => write!(f, "streaming error: {msg}"),
        }
    }
}

impl std::error::Error for CheckerError {}

impl From<agg_relational::RelationalError> for CheckerError {
    fn from(e: agg_relational::RelationalError) -> Self {
        CheckerError::Relational(e)
    }
}

/// Verdict for one claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The most likely query's result rounds to the claimed value.
    Correct,
    /// It does not — the claim is marked up as probably wrong.
    Erroneous,
    /// No candidate query could be formed.
    Unverifiable,
    /// Verification never ran for this claim: its document hit a deadline
    /// or was cancelled before the claim's candidate queries were
    /// evaluated. Only appears in partial reports (see [`ReportStatus`]);
    /// a fault-free run without a deadline never produces it.
    Unverified,
}

/// How a document's verification run ended. Anything other than
/// [`ReportStatus::Complete`] marks the report as *partial*: claims whose
/// verdicts settled before the abort keep them, the rest come back
/// [`Verdict::Unverified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportStatus {
    /// Every claim ran to completion — the only status solo and batch
    /// verification ever produce.
    #[default]
    Complete,
    /// The document's deadline expired before the run finished.
    TimedOut,
    /// The submission was cancelled before the run finished.
    Cancelled,
}

impl ReportStatus {
    /// True for every status other than [`ReportStatus::Complete`].
    pub fn is_partial(&self) -> bool {
        *self != ReportStatus::Complete
    }
}

/// One entry of a claim's top-k list.
#[derive(Debug, Clone)]
pub struct RankedQuery {
    pub query: SimpleAggregateQuery,
    /// Normalized probability under the claim's distribution.
    pub probability: f64,
    /// Evaluated result (SQL NULL → `None`).
    pub result: Option<f64>,
    /// Does the result round to the claimed value?
    pub matches: bool,
    /// Natural-language description (hover text, Figure 3(b)).
    pub description: String,
}

/// The verification outcome for one claim.
#[derive(Debug, Clone)]
pub struct CheckedClaim {
    pub mention: ClaimMention,
    /// The claim sentence's text.
    pub sentence: String,
    pub claimed_value: f64,
    /// Top-k most likely query translations, descending.
    pub top_queries: Vec<RankedQuery>,
    /// Probability mass on candidates matching the claimed value.
    pub correctness_probability: f64,
    pub verdict: Verdict,
}

impl CheckedClaim {
    /// The most likely query, if any.
    pub fn ml_query(&self) -> Option<&RankedQuery> {
        self.top_queries.first()
    }
}

/// Run statistics (Table 6 instrumentation and general diagnostics).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub claims: usize,
    pub em_iterations: usize,
    pub candidates_evaluated: u64,
    pub cubes_executed: u64,
    pub cubes_cached: u64,
    pub rows_scanned: u64,
    /// Cube tasks this document submitted to the scheduler and saw run.
    pub tasks_executed: u64,
    /// Cube requests resolved without a new execution (merged across
    /// claims at planning time, or absorbed by single-flight).
    pub tasks_deduped: u64,
    /// Requests that blocked on another worker's in-flight cube.
    pub singleflight_waits: u64,
    /// Fused row passes executed (same-scope cube tasks of one wave share
    /// a single table scan; see `agg_relational::schedule::ScanGroup`).
    pub scan_passes: u64,
    /// Times a wait on another worker's in-flight cube found the flight
    /// poisoned (its computing worker panicked) and re-probed the cache.
    /// Always 0 in fault-free runs.
    pub poison_retries: u64,
    /// Compressed storage blocks decoded by this run's scans (per member
    /// grid; 0 when every scan ran on plain columns).
    pub blocks_scanned: u64,
    /// Blocks bulk-applied from zone-map metadata without decoding.
    pub blocks_skipped: u64,
    /// Encoded payload bytes read by the decoded blocks.
    pub bytes_scanned: u64,
    /// Fixed scan partitions executed by this run's passes (charged once
    /// per pass, like `rows_scanned`; single-partition passes charge 0).
    /// Worker-count independent — the `partition-gate` pins it.
    pub partitions_scanned: u64,
    /// Partition-grid merges performed (per member task). Worker-count
    /// independent.
    pub partition_merges: u64,
    /// Max distinct workers observed on any one partitioned pass. A
    /// gauge: the only stat here that may legitimately vary run to run,
    /// which is why it stays out of
    /// [`VerificationReport::content_fingerprint`].
    pub partition_parallelism: u32,
    /// Cached cube grids brought forward by **patch passes**: after table
    /// appends, a stale-stamped grid is patched by scanning only the
    /// appended row range instead of being recomputed from scratch.
    pub grids_patched: u64,
    /// Rows scanned by patch passes only — a subset of `rows_scanned`,
    /// and the whole incremental cost of re-verifying after an append.
    pub delta_rows_scanned: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Wall-clock time inside query evaluation only.
    pub query_time: Duration,
    /// log₁₀ of the candidate query space (Figure 8).
    pub candidate_space_log10: f64,
}

/// The result of verifying one document.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    pub claims: Vec<CheckedClaim>,
    pub stats: RunStats,
    /// Whether the run completed or settled early (deadline or
    /// cancellation). Deliberately excluded from
    /// [`content_fingerprint`](VerificationReport::content_fingerprint):
    /// the fingerprint compares *evaluated* content, and a partial
    /// report's unevaluated claims already surface as
    /// [`Verdict::Unverified`] inside `claims`.
    pub status: ReportStatus,
}

impl VerificationReport {
    /// A deterministic fingerprint of the report's observable content:
    /// claims (verdicts, probabilities, top-k queries) plus the
    /// scheduling-independent stats, with wall-clock timing excluded.
    /// The batch tests and `bench_pipeline` compare sequential and
    /// batched runs through this one projection (see [`BatchVerifier`]
    /// for the floating-point caveat that scopes the comparison).
    pub fn content_fingerprint(&self) -> String {
        format!(
            "{:?}|claims={}|em={}|cand={}",
            self.claims,
            self.stats.claims,
            self.stats.em_iterations,
            self.stats.candidates_evaluated
        )
    }

    /// Claims flagged as erroneous.
    pub fn flagged(&self) -> impl Iterator<Item = &CheckedClaim> {
        self.claims
            .iter()
            .filter(|c| c.verdict == Verdict::Erroneous)
    }

    /// Apply a user correction (the semi-automated mode of Figure 3): the
    /// user declares `query` to be the claim's true translation — picked
    /// from the top-k list or assembled from fragments. The query is
    /// executed, the claim's verdict recomputed from its result, and the
    /// chosen query pinned at the top of the claim's list with
    /// probability 1.
    pub fn apply_correction(
        &mut self,
        claim_idx: usize,
        query: SimpleAggregateQuery,
        db: &Database,
    ) -> Result<Verdict, CheckerError> {
        let claim = self
            .claims
            .get_mut(claim_idx)
            .ok_or_else(|| CheckerError::Config(format!("no claim #{claim_idx}")))?;
        let result = agg_relational::execute_query(db, &query)?;
        let matches =
            result.is_some_and(|r| crate::rounding::matches_claim(r, &claim.mention.number));
        let verdict = if matches {
            Verdict::Correct
        } else {
            Verdict::Erroneous
        };
        let description = query.describe(db);
        claim
            .top_queries
            .retain(|rq| !rq.query.semantically_equal(&query));
        claim.top_queries.insert(
            0,
            RankedQuery {
                query,
                probability: 1.0,
                result,
                matches,
                description,
            },
        );
        claim.correctness_probability = if matches { 1.0 } else { 0.0 };
        claim.verdict = verdict;
        Ok(verdict)
    }
}

/// Cooperative per-document abort control, shared between a streaming
/// [`Ticket`](crate::stream::Ticket) and the worker driving its document.
/// The pipeline polls it at wave boundaries (between EM iterations),
/// never mid-scan: aborting yields a clean *partial* report — settled
/// verdicts kept, the rest [`Verdict::Unverified`] — not a torn one.
#[derive(Debug)]
pub(crate) struct DocControl {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl DocControl {
    pub(crate) fn new(deadline: Option<Instant>) -> DocControl {
        DocControl {
            cancelled: AtomicBool::new(false),
            deadline,
        }
    }

    /// Flag the document for abort at its next wave boundary.
    pub(crate) fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Why the document should stop now, if it should. An explicit
    /// cancellation wins over an expired deadline when both hold.
    pub(crate) fn should_abort(&self) -> Option<ReportStatus> {
        if self.cancelled.load(Ordering::Acquire) {
            return Some(ReportStatus::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(ReportStatus::TimedOut),
            _ => None,
        }
    }
}

/// One claim's state at an evaluation-wave boundary, pushed to a
/// [`ProgressObserver`]. A cheap projection of what the final
/// [`CheckedClaim`] will carry: the verdict and correctness probability
/// of the wave that just completed, without materializing top-k query
/// descriptions. `claim` is the stable document-order id
/// ([`ClaimMention::id`](agg_nlp::claims::ClaimMention)), so subscribers
/// can correlate progress updates with the settled report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimProgress {
    /// Stable claim id (document order); equals the index into
    /// [`VerificationReport::claims`].
    pub claim: usize,
    /// The value the text claims.
    pub claimed_value: f64,
    /// Verdict as of this wave. Later waves may revise it: the EM loop
    /// re-ranks candidate queries as document priors sharpen.
    pub verdict: Verdict,
    /// Probability mass on candidates matching the claimed value, as of
    /// this wave.
    pub correctness_probability: f64,
}

/// Subscription to per-wave verdict progress, threaded through the
/// streaming service into the pipeline's EM loop (the mechanism behind
/// the binary protocol's incremental verdict frames — see
/// `crates/server`). Called on the worker thread driving the document, at
/// every wave boundary, with every claim's current state.
///
/// `last` is true for the wave whose verdicts are final *if the run
/// completes*; a deadline or cancellation striking at a later wave
/// boundary can still end the run with an earlier wave's state, so only
/// the settled [`VerificationReport`] is authoritative. Implementations
/// must be cheap and must not block: the EM loop waits for the callback
/// to return before starting the next wave.
pub trait ProgressObserver: Send + Sync {
    /// One completed evaluation wave: `wave` is the 1-based EM iteration,
    /// `claims` holds every claim's state after it.
    fn wave_complete(&self, wave: usize, last: bool, claims: &[ClaimProgress]);
}

/// How one document's evaluation work is executed — the plumbing that
/// lets solo, batched, and streaming verification share
/// `check_document_with` while drawing parallelism from different places.
pub(crate) struct ExecContext<'e> {
    /// Dense-grid buffer pool persisted across this caller's documents.
    pub(crate) arena: Option<&'e GridArena>,
    /// Shared cube-task scheduler (batch and streaming modes). `None` =
    /// each evaluation wave spawns its own scoped pool of `threads`
    /// workers.
    pub(crate) scheduler: Option<&'e CubeScheduler>,
    /// Worker threads for claim scoring and (without a shared scheduler)
    /// per-wave cube execution. Batch workers pass 1: the shared pool
    /// already provides the parallelism, so per-document thread fan-out
    /// would only oversubscribe the machine.
    pub(crate) threads: usize,
    /// How missing aggregates bundle into cube tasks. Solo verification
    /// uses `Wave` (fewest tasks); batched verification uses `Canonical`
    /// at every worker count so its executed-task set — and therefore the
    /// fused pass structure and `rows_scanned` — is identical from 1
    /// worker to N (the CI dedup gate). Bundling never changes results.
    pub(crate) bundling: TaskBundling,
    /// Fuse same-scope cube tasks of one wave into shared scan passes
    /// ([`CheckerConfig::fuse_scans`]). Purely physical — reports are
    /// bit-identical either way.
    pub(crate) fuse: bool,
    /// Storage blocks per fixed scan partition
    /// ([`CheckerConfig::partition_blocks`]; 0 disables partitioning).
    /// Every context over one checker passes the same value, so solo,
    /// batched, and streaming runs share one partition/merge tree.
    pub(crate) partition_blocks: usize,
    /// Per-document abort control (streaming deadlines and cancellation).
    /// `None` for solo and batch runs, which always run to completion.
    pub(crate) ctrl: Option<&'e DocControl>,
    /// Per-wave verdict subscription (streaming incremental delivery).
    /// `None` everywhere else; observation never changes evaluation.
    pub(crate) observer: Option<&'e dyn ProgressObserver>,
}

/// The AggChecker: verify text summaries of a relational data set.
pub struct AggChecker {
    db: Arc<Database>,
    catalog: FragmentCatalog,
    config: CheckerConfig,
    synonyms: SynonymDict,
    cache: EvalCache,
    cost: CostModel,
}

impl AggChecker {
    /// Create a checker over a database with the given configuration.
    pub fn new(db: Database, config: CheckerConfig) -> Result<AggChecker, CheckerError> {
        config.validate().map_err(CheckerError::Config)?;
        db.validate()?;
        let catalog = FragmentCatalog::build(&db, &CatalogConfig::default());
        let cost = CostModel::new(&db);
        let shards = if config.cache_shards == 0 {
            DEFAULT_CACHE_SHARDS
        } else {
            config.cache_shards
        };
        Ok(AggChecker {
            db: Arc::new(db),
            catalog,
            config,
            synonyms: SynonymDict::embedded(),
            cache: EvalCache::with_shards(shards),
            cost,
        })
    }

    /// Replace the synonym dictionary (e.g. domain extensions or
    /// [`SynonymDict::empty`] for ablations).
    pub fn with_synonyms(mut self, synonyms: SynonymDict) -> AggChecker {
        self.synonyms = synonyms;
        self
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Append rows to `table` and refresh the derived metadata (fragment
    /// catalog, cost model) over the grown corpus. The database version is
    /// unchanged — appends move only the row-visibility watermark — so
    /// resident cache entries stay reachable: on the next verification
    /// their stale-stamped grids are *patched* forward over just the
    /// appended rows (see `agg_relational::cube::ScanCheckpoint`) instead
    /// of being recomputed. Returns the number of rows appended.
    pub fn append_rows(
        &mut self,
        table: &str,
        rows: &[Vec<agg_relational::Value>],
    ) -> Result<usize, CheckerError> {
        let db = Arc::make_mut(&mut self.db);
        let appended = db.append_rows(table, rows)?;
        self.catalog = FragmentCatalog::build(db, &CatalogConfig::default());
        self.cost = CostModel::new(db);
        Ok(appended)
    }

    /// Non-destructive [`AggChecker::append_rows`]: build a successor
    /// checker over the grown database, sharing this one's cache (an
    /// [`EvalCache`] clone shares storage). The streaming service swaps
    /// its checker through this path so documents pinning the current
    /// generation keep their snapshot.
    pub(crate) fn with_appended(
        &self,
        table: &str,
        rows: &[Vec<agg_relational::Value>],
    ) -> Result<(AggChecker, usize), CheckerError> {
        let mut db = (*self.db).clone();
        let appended = db.append_rows(table, rows)?;
        Ok((self.rebuilt_over(Arc::new(db)), appended))
    }

    /// A twin of this checker over the same database snapshot and shared
    /// cache, with freshly derived metadata.
    pub(crate) fn fork(&self) -> AggChecker {
        self.rebuilt_over(self.db.clone())
    }

    fn rebuilt_over(&self, db: Arc<Database>) -> AggChecker {
        AggChecker {
            catalog: FragmentCatalog::build(&db, &CatalogConfig::default()),
            cost: CostModel::new(&db),
            config: self.config.clone(),
            synonyms: self.synonyms.clone(),
            cache: self.cache.clone(),
            db,
        }
    }

    pub fn catalog(&self) -> &FragmentCatalog {
        &self.catalog
    }

    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Shared evaluation cache (persists across documents over the same
    /// database).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Parse and verify a text document (HTML subset or plain text).
    pub fn check_text(&self, text: &str) -> Result<VerificationReport, CheckerError> {
        let doc = parse_document(text);
        self.check_document(&doc)
    }

    /// Verify a parsed document.
    pub fn check_document(&self, doc: &Document) -> Result<VerificationReport, CheckerError> {
        self.check_document_with(
            doc,
            &ExecContext {
                arena: None,
                scheduler: None,
                threads: self.config.threads,
                bundling: TaskBundling::Wave,
                fuse: self.config.fuse_scans,
                partition_blocks: self.config.partition_blocks,
                ctrl: None,
                observer: None,
            },
        )
    }

    /// Verify a parsed document under an explicit execution context (see
    /// [`ExecContext`]). Always runs under `self.config` — batch,
    /// streaming, and solo runs must share every knob, or their reports
    /// could diverge.
    pub(crate) fn check_document_with(
        &self,
        doc: &Document,
        ctx: &ExecContext<'_>,
    ) -> Result<VerificationReport, CheckerError> {
        let started = Instant::now();
        let cfg = &self.config;
        let claims = detect_claims(doc, &cfg.claim_detector);
        let n = claims.len();

        // Keyword contexts and relevance scores are EM-invariant.
        let scores: Vec<ClaimScores> = claims
            .iter()
            .map(|claim| {
                let kws =
                    claim_keywords(doc, claim, &self.synonyms, &cfg.context, cfg.synonym_weight);
                match_claim_with_form(
                    &self.catalog,
                    &kws,
                    cfg.lucene_hits,
                    claim.number.is_percentage,
                )
            })
            .collect();

        let mut theta = Theta::uniform(
            self.catalog.functions.len(),
            self.catalog.agg_columns.len(),
            self.catalog.predicate_columns.len(),
        );
        let mut em_iterations = 0usize;
        let mut eval_stats = EvalStats::default();
        let mut query_time = Duration::ZERO;
        let mut status = ReportStatus::Complete;
        let mut final_state: Vec<(CandidateSet, ResultsMatrix, ClaimDistribution)> = Vec::new();

        let max_iters = if cfg.model.use_priors {
            cfg.max_em_iterations
        } else {
            1
        };

        for _ in 0..max_iters {
            // Wave boundary: the only place a deadline or cancellation
            // takes effect. `final_state` always holds the last *completed*
            // wave, so aborting here settles a consistent partial report.
            if let Some(s) = ctx.ctrl.and_then(|c| c.should_abort()) {
                status = s;
                break;
            }
            em_iterations += 1;
            let theta_opt = cfg.model.use_priors.then_some(&theta);

            // Scope + candidate enumeration per claim.
            let candidate_sets: Vec<CandidateSet> = scores
                .iter()
                .map(|s| {
                    let scope = pick_scope(
                        &self.catalog,
                        s,
                        theta_opt,
                        &self.cost,
                        self.db.total_rows(),
                        &cfg.scope,
                    );
                    CandidateSet::enumerate(
                        &self.catalog,
                        &scope,
                        cfg.max_predicates,
                        cfg.max_combos_per_claim,
                    )
                })
                .collect();

            // Document-wide literal sets for cache-friendly cubes (§6.3).
            let doc_literals = document_literal_union(
                self.catalog.predicate_columns.len(),
                candidate_sets
                    .iter()
                    .flat_map(|set| set.combos.iter())
                    .flat_map(|combo| combo.iter().map(|(c, l)| (*c as usize, *l as usize))),
            );

            // Evaluation phase.
            let eval_started = Instant::now();
            let results: Vec<ResultsMatrix> = match cfg.strategy {
                EvalStrategy::Naive => {
                    let mut out = Vec::with_capacity(n);
                    for set in &candidate_sets {
                        out.push(evaluate_naive(
                            &self.db,
                            &self.catalog,
                            set,
                            &mut eval_stats,
                        )?);
                    }
                    out
                }
                EvalStrategy::Merged | EvalStrategy::MergedCached => {
                    let cache =
                        (cfg.strategy == EvalStrategy::MergedCached).then(|| self.cache.clone());
                    let mut evaluator = Evaluator::new(&self.db, &self.catalog, cache);
                    evaluator.set_threads(ctx.threads);
                    evaluator.set_bundling(ctx.bundling);
                    evaluator.set_fusion(ctx.fuse);
                    evaluator.set_partition_blocks(ctx.partition_blocks);
                    if let Some(arena) = ctx.arena {
                        evaluator.set_arena(arena);
                    }
                    if let Some(scheduler) = ctx.scheduler {
                        evaluator.set_scheduler(scheduler);
                    }
                    evaluator.set_document_literals(doc_literals);
                    // One wave: every cube of every claim is planned,
                    // deduplicated, and scheduled together.
                    let out = evaluator.evaluate_all(&candidate_sets)?;
                    eval_stats.merge(&evaluator.stats);
                    out
                }
            };
            query_time += eval_started.elapsed();

            // E-step: claim distributions (parallel when configured).
            let distributions = self.score_all(
                &claims,
                &scores,
                &candidate_sets,
                &results,
                theta_opt,
                ctx.threads,
            );

            // M-step.
            let converged = if cfg.model.use_priors {
                let ml: Vec<(Option<crate::candidates::Candidate>, &CandidateSet)> = distributions
                    .iter()
                    .zip(&candidate_sets)
                    .map(|(d, set)| (d.ml(), set))
                    .collect();
                let new_theta = m_step(&self.catalog, &ml, cfg.prior_smoothing);
                let change = theta.max_change(&new_theta);
                theta = new_theta;
                change < cfg.em_epsilon
            } else {
                true
            };

            // Keep this wave's state: it becomes the report if this is the
            // last iteration *or* a later wave boundary aborts the run.
            final_state = candidate_sets
                .into_iter()
                .zip(results)
                .zip(distributions)
                .map(|((set, res), dist)| (set, res, dist))
                .collect();
            let last = converged || em_iterations == max_iters;
            if let Some(observer) = ctx.observer {
                let progress: Vec<ClaimProgress> = claims
                    .iter()
                    .zip(&final_state)
                    .map(|(claim, (_, results, dist))| {
                        // Same most-likely-candidate rule the final report
                        // applies in `build_checked_claim`, minus the top-k
                        // materialization.
                        let verdict = match dist.top.first() {
                            None => Verdict::Unverifiable,
                            Some((cand, _)) => {
                                let matched = results
                                    .get(cand.combo as usize, cand.pair as usize)
                                    .is_some_and(|r| {
                                        crate::rounding::matches_claim(r, &claim.number)
                                    });
                                if matched {
                                    Verdict::Correct
                                } else {
                                    Verdict::Erroneous
                                }
                            }
                        };
                        ClaimProgress {
                            claim: claim.id,
                            claimed_value: claim.number.value,
                            verdict,
                            correctness_probability: dist.correctness,
                        }
                    })
                    .collect();
                observer.wave_complete(em_iterations, last, &progress);
            }
            if last {
                break;
            }
        }

        // Build the report from the last completed wave. A run aborted
        // before its first wave completed has no evaluated state at all:
        // every claim settles as `Unverified`.
        let checked: Vec<CheckedClaim> = if final_state.len() == n {
            claims
                .iter()
                .zip(&final_state)
                .map(|(claim, (set, results, dist))| {
                    self.build_checked_claim(doc, claim, set, results, dist)
                })
                .collect()
        } else {
            debug_assert!(final_state.is_empty(), "waves evaluate every claim");
            claims
                .iter()
                .map(|claim| self.unverified_claim(doc, claim))
                .collect()
        };

        let stats = RunStats {
            claims: n,
            em_iterations,
            candidates_evaluated: eval_stats.candidates_evaluated,
            cubes_executed: eval_stats.cubes_executed,
            cubes_cached: eval_stats.cubes_cached,
            rows_scanned: eval_stats.rows_scanned,
            tasks_executed: eval_stats.tasks_executed,
            tasks_deduped: eval_stats.tasks_deduped,
            singleflight_waits: eval_stats.singleflight_waits,
            scan_passes: eval_stats.scan_passes,
            poison_retries: eval_stats.poison_retries,
            blocks_scanned: eval_stats.blocks_scanned,
            blocks_skipped: eval_stats.blocks_skipped,
            bytes_scanned: eval_stats.bytes_scanned,
            partitions_scanned: eval_stats.partitions_scanned,
            partition_merges: eval_stats.partition_merges,
            partition_parallelism: eval_stats.partition_parallelism,
            grids_patched: eval_stats.grids_patched,
            delta_rows_scanned: eval_stats.delta_rows_scanned,
            elapsed: started.elapsed(),
            query_time,
            candidate_space_log10: self.catalog.candidate_space_log10(),
        };
        Ok(VerificationReport {
            claims: checked,
            stats,
            status,
        })
    }

    /// The placeholder for a claim whose document aborted before the claim
    /// was evaluated: no ranked queries, zero probability, `Unverified`.
    fn unverified_claim(&self, doc: &Document, claim: &ClaimMention) -> CheckedClaim {
        let sentence = doc
            .section(&claim.section)
            .and_then(|s| s.paragraphs.get(claim.paragraph))
            .and_then(|p| p.sentences.get(claim.sentence))
            .map(|s| s.text.clone())
            .unwrap_or_default();
        CheckedClaim {
            mention: claim.clone(),
            sentence,
            claimed_value: claim.number.value,
            top_queries: Vec::new(),
            correctness_probability: 0.0,
            verdict: Verdict::Unverified,
        }
    }

    /// The partial report of a document that never reached a worker: claims
    /// are detected (so the caller still sees *what* went unchecked) but
    /// nothing is evaluated — every claim comes back [`Verdict::Unverified`].
    /// Used by streaming cancellation/expiry of still-queued documents.
    pub(crate) fn unverified_report(
        &self,
        doc: &Document,
        status: ReportStatus,
    ) -> VerificationReport {
        let started = Instant::now();
        let claims = detect_claims(doc, &self.config.claim_detector);
        let checked: Vec<CheckedClaim> = claims
            .iter()
            .map(|claim| self.unverified_claim(doc, claim))
            .collect();
        let stats = RunStats {
            claims: checked.len(),
            elapsed: started.elapsed(),
            candidate_space_log10: self.catalog.candidate_space_log10(),
            ..RunStats::default()
        };
        VerificationReport {
            claims: checked,
            stats,
            status,
        }
    }

    /// Score all claims, chunked over `threads` workers. Chunking never
    /// changes per-claim results — each distribution is computed
    /// independently — so batch workers score with `threads = 1` (the
    /// pool already provides document-level parallelism) and still match
    /// solo runs exactly.
    fn score_all(
        &self,
        claims: &[ClaimMention],
        scores: &[ClaimScores],
        candidate_sets: &[CandidateSet],
        results: &[ResultsMatrix],
        theta: Option<&Theta>,
        threads: usize,
    ) -> Vec<ClaimDistribution> {
        let cfg = &self.config;
        let work = |i: usize| {
            score_claim(
                &self.catalog,
                &scores[i],
                &candidate_sets[i],
                &results[i],
                theta,
                &claims[i].number,
                cfg,
            )
        };
        if threads <= 1 || claims.len() < 2 {
            return (0..claims.len()).map(work).collect();
        }
        let n_threads = threads.min(claims.len());
        let mut out: Vec<Option<ClaimDistribution>> = vec![None; claims.len()];
        std::thread::scope(|s| {
            for (t, chunk) in out.chunks_mut(claims.len().div_ceil(n_threads)).enumerate() {
                let work = &work;
                let base = t * claims.len().div_ceil(n_threads);
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(work(base + j));
                    }
                });
            }
        });
        out.into_iter().map(|d| d.expect("scored")).collect()
    }

    fn build_checked_claim(
        &self,
        doc: &Document,
        claim: &ClaimMention,
        set: &CandidateSet,
        results: &ResultsMatrix,
        dist: &ClaimDistribution,
    ) -> CheckedClaim {
        let sentence = doc
            .section(&claim.section)
            .and_then(|s| s.paragraphs.get(claim.paragraph))
            .and_then(|p| p.sentences.get(claim.sentence))
            .map(|s| s.text.clone())
            .unwrap_or_default();
        let top_queries: Vec<RankedQuery> = dist
            .top
            .iter()
            .map(|(cand, prob)| {
                let query = set.to_query(&self.catalog, *cand);
                let result = results.get(cand.combo as usize, cand.pair as usize);
                let matches =
                    result.is_some_and(|r| crate::rounding::matches_claim(r, &claim.number));
                let description = query.describe(&self.db);
                RankedQuery {
                    query,
                    probability: *prob,
                    result,
                    matches,
                    description,
                }
            })
            .collect();
        let verdict = match top_queries.first() {
            None => Verdict::Unverifiable,
            Some(ml) if ml.matches => Verdict::Correct,
            Some(_) => Verdict::Erroneous,
        };
        CheckedClaim {
            mention: claim.clone(),
            sentence,
            claimed_value: claim.number.value,
            top_queries,
            correctness_probability: dist.correctness,
            verdict,
        }
    }
}

/// Batched multi-document verification: many parsed documents checked
/// against **one** shared [`Database`], fragment catalog, and sharded
/// [`EvalCache`] (the Scrutinizer deployment shape — an organization's
/// document stream over one fact base).
///
/// All work drains through **one** scoped-thread pool of
/// [`CheckerConfig::threads`] workers sharing a single [`CubeScheduler`]:
/// a worker pulls the next unclaimed document from a shared queue and
/// drives it, submitting every cube of every claim as tasks to the shared
/// scheduler; while its own tasks are pending it helps execute *other*
/// documents' tasks, and once the document queue is empty it keeps
/// draining cube tasks until the batch closes. Each worker keeps one
/// [`GridArena`] for every cube it executes (dense grids are reused
/// instead of reallocated), and all workers fill the same sharded cache —
/// with **single-flight**, so N workers missing the same cube key execute
/// it exactly once: total `rows_scanned` at any worker count equals the
/// 1-worker run (the CI dedup gate asserts this).
///
/// Reports match per-document [`AggChecker::check_document`] runs:
/// batching changes scheduling and reuse, never verdicts or query
/// rankings. Cube tasks always scan sequentially, so f64 accumulation
/// order is identical across worker counts. One caveat inherent to cache
/// reuse (warm solo caches share it): a floating-point Sum/Avg served
/// from a wider cached slice can differ from a cold evaluation in the
/// last ulp, because rollup merge order follows the slice's literal
/// partition. Count-like aggregates and integer-exact data — the paper's
/// workload — are bit-identical.
pub struct BatchVerifier {
    checker: AggChecker,
}

impl BatchVerifier {
    /// Create a batch verifier over a database.
    pub fn new(db: Database, config: CheckerConfig) -> Result<BatchVerifier, CheckerError> {
        Ok(BatchVerifier {
            checker: AggChecker::new(db, config)?,
        })
    }

    /// Wrap an existing checker (shares its warmed cache).
    pub fn from_checker(checker: AggChecker) -> BatchVerifier {
        BatchVerifier { checker }
    }

    /// The underlying checker (database, catalog, cache accessors).
    pub fn checker(&self) -> &AggChecker {
        &self.checker
    }

    /// Recover the checker, keeping the warmed cache.
    pub fn into_checker(self) -> AggChecker {
        self.checker
    }

    /// Parse and verify a batch of text documents.
    pub fn verify_texts<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
    ) -> Result<Vec<VerificationReport>, CheckerError> {
        let docs: Vec<Document> = texts.iter().map(|t| parse_document(t.as_ref())).collect();
        self.verify_documents(&docs)
    }

    /// Verify a batch of parsed documents. Reports come back in input
    /// order. On failure the batch stops early — documents not yet started
    /// are skipped — and the lowest-input-index error observed is returned.
    pub fn verify_documents(
        &self,
        docs: &[Document],
    ) -> Result<Vec<VerificationReport>, CheckerError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        // One pool: `threads` workers in total, sharing one cube-task
        // scheduler. This replaces the old threads-per-document × workers
        // split — a document's cubes run wherever a worker is idle, so
        // small machines are never oversubscribed and big ones keep every
        // worker busy even when one document dominates the tail.
        let workers = self.checker.config.threads.max(1).min(docs.len());

        if workers <= 1 {
            let arena = GridArena::new();
            let ctx = ExecContext {
                arena: Some(&arena),
                scheduler: None,
                threads: self.checker.config.threads,
                bundling: TaskBundling::Canonical,
                fuse: self.checker.config.fuse_scans,
                partition_blocks: self.checker.config.partition_blocks,
                ctrl: None,
                observer: None,
            };
            return docs
                .iter()
                .map(|doc| self.checker.check_document_with(doc, &ctx))
                .collect();
        }

        let scheduler = CubeScheduler::new();
        let next = AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        // Workers still driving a document (and therefore still able to
        // submit cube tasks); the last one out closes the scheduler.
        let drivers = AtomicUsize::new(workers);
        let mut results: Vec<Option<VerificationReport>> = Vec::new();
        results.resize_with(docs.len(), || None);
        let collected: Vec<Vec<(usize, Result<VerificationReport, CheckerError>)>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let (next, failed, drivers) = (&next, &failed, &drivers);
                        let (checker, scheduler) = (&self.checker, &scheduler);
                        s.spawn(move || {
                            // One arena per worker, shared by every cube
                            // task this worker executes.
                            let arena = GridArena::new();
                            let ctx = ExecContext {
                                arena: Some(&arena),
                                scheduler: Some(scheduler),
                                threads: 1,
                                bundling: TaskBundling::Canonical,
                                fuse: checker.config.fuse_scans,
                                partition_blocks: checker.config.partition_blocks,
                                ctrl: None,
                                observer: None,
                            };
                            let mut out = Vec::new();
                            while !failed.load(Ordering::Relaxed) {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= docs.len() {
                                    break;
                                }
                                let result = checker.check_document_with(&docs[i], &ctx);
                                if result.is_err() {
                                    failed.store(true, Ordering::Relaxed);
                                }
                                out.push((i, result));
                            }
                            // No more documents for this worker: close the
                            // scheduler if it is the last driver, then keep
                            // helping with other documents' cube tasks
                            // until the batch is done.
                            if drivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                                scheduler.close();
                            }
                            scheduler.run_worker(Some(&arena));
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch verification worker"))
                    .collect()
            });
        let mut first_error: Option<(usize, CheckerError)> = None;
        for (i, result) in collected.into_iter().flatten() {
            match result {
                Ok(report) => results[i] = Some(report),
                Err(e) => {
                    if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_error = Some((i, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_error {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every document verified or the batch aborted"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_relational::{Table, Value};

    /// Figure 2's database.
    fn nfl_db() -> Database {
        let mut t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                        "2".into(),
                        "6".into(),
                    ],
                ),
                (
                    // Five distinct values, so CountDistinct(category) = 5
                    // cannot collide with the "four lifetime bans" claim.
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "substance abuse".into(),
                        "personal conduct".into(),
                        "deflategate".into(),
                        "bounty program".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                        Value::Int(2013),
                        Value::Int(2012),
                    ],
                ),
            ],
        )
        .unwrap();
        t.schema.columns[0].description =
            Some("games suspended; indef means an indefinite lifetime ban".into());
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    const ARTICLE: &str = r#"
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Indefinite suspensions</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;

    #[test]
    fn paper_running_example_verifies_correct_claims() {
        let checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        let report = checker.check_text(ARTICLE).unwrap();
        assert_eq!(report.claims.len(), 3, "claims four/three/one");
        for claim in &report.claims {
            assert_eq!(
                claim.verdict,
                Verdict::Correct,
                "claim {} flagged: ML {:?}",
                claim.claimed_value,
                claim.ml_query().map(|q| q.query.to_sql(checker.db()))
            );
        }
        assert!(report.stats.candidates_evaluated > 0);
    }

    #[test]
    fn erroneous_claim_is_flagged() {
        let checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        // The data has FOUR lifetime bans; the text claims seven. (A claim
        // of "five" would coincidentally match CountDistinct(games) = 5 and
        // be judged plausible — exactly the spurious-match behaviour behind
        // the paper's ~36% precision. Seven matches no candidate.)
        let article = r#"
<h1>Indefinite suspensions</h1>
<p>There were seven previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;
        let report = checker.check_text(article).unwrap();
        let seven = report
            .claims
            .iter()
            .find(|c| c.claimed_value == 7.0)
            .unwrap();
        assert_eq!(seven.verdict, Verdict::Erroneous);
        assert!(seven.correctness_probability < 0.5);
        // The correct claims stay green.
        let one = report
            .claims
            .iter()
            .find(|c| c.claimed_value == 1.0)
            .unwrap();
        assert_eq!(one.verdict, Verdict::Correct);
    }

    /// The stale-cache regression this series fixes: a warmed checker
    /// whose table then grows must not keep serving verdicts computed
    /// over the old rows. Before cached grids carried watermark stamps,
    /// the second check below hit the resident count grid (four lifetime
    /// bans) and kept the claim green even though the data now holds five.
    #[test]
    fn append_rows_refreshes_warmed_verdicts() {
        let fifth_ban = || {
            vec![
                Value::from("indef"),
                Value::from("gambling"),
                Value::Int(2015),
            ]
        };
        let mut checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        let before = checker.check_text(ARTICLE).unwrap();
        let four = before
            .claims
            .iter()
            .find(|c| c.claimed_value == 4.0)
            .unwrap();
        assert_eq!(four.verdict, Verdict::Correct);
        assert!(checker.cache().stats().entries() > 0, "cache is warm");

        assert_eq!(
            checker
                .append_rows("nflsuspensions", &[fifth_ban()])
                .unwrap(),
            1
        );

        let after = checker.check_text(ARTICLE).unwrap();
        let four = after
            .claims
            .iter()
            .find(|c| c.claimed_value == 4.0)
            .unwrap();
        assert_ne!(
            four.verdict,
            Verdict::Correct,
            "five bans now — a stale cached grid was served"
        );
        // The warm re-check is bit-identical to a cold checker built over
        // the same grown database: patched grids are not approximately
        // fresh, they are the grids a full rescan produces.
        let mut db = nfl_db();
        db.append_rows("nflsuspensions", &[fifth_ban()]).unwrap();
        let cold = AggChecker::new(db, CheckerConfig::default()).unwrap();
        assert_eq!(
            after.content_fingerprint(),
            cold.check_text(ARTICLE).unwrap().content_fingerprint()
        );
    }

    #[test]
    fn ml_query_matches_ground_truth_for_easy_claim() {
        let checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        let report = checker.check_text(ARTICLE).unwrap();
        let four = report
            .claims
            .iter()
            .find(|c| c.claimed_value == 4.0)
            .unwrap();
        let ml = four.ml_query().unwrap();
        let sql = ml.query.to_sql(checker.db());
        assert!(
            sql.contains("games = 'indef'"),
            "expected restriction on games: {sql}"
        );
        assert_eq!(ml.result, Some(4.0));
    }

    #[test]
    fn strategies_agree_on_verdicts() {
        let db = nfl_db();
        let mut verdicts = Vec::new();
        for strategy in [
            EvalStrategy::Naive,
            EvalStrategy::Merged,
            EvalStrategy::MergedCached,
        ] {
            let cfg = CheckerConfig {
                strategy,
                // Keep the naive run affordable.
                lucene_hits: 8,
                ..CheckerConfig::default()
            };
            let checker = AggChecker::new(db.clone(), cfg).unwrap();
            let report = checker.check_text(ARTICLE).unwrap();
            verdicts.push(report.claims.iter().map(|c| c.verdict).collect::<Vec<_>>());
        }
        assert_eq!(verdicts[0], verdicts[1]);
        assert_eq!(verdicts[1], verdicts[2]);
    }

    #[test]
    fn parallel_scoring_matches_sequential() {
        let db = nfl_db();
        let run = |threads: usize| {
            let cfg = CheckerConfig {
                threads,
                ..CheckerConfig::default()
            };
            let checker = AggChecker::new(db.clone(), cfg).unwrap();
            let report = checker.check_text(ARTICLE).unwrap();
            report
                .claims
                .iter()
                .map(|c| (c.verdict, c.correctness_probability))
                .collect::<Vec<_>>()
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.len(), par.len());
        for ((v1, p1), (v2, p2)) in seq.iter().zip(&par) {
            assert_eq!(v1, v2);
            assert!((p1 - p2).abs() < 1e-12);
        }
    }

    #[test]
    fn cache_persists_across_documents() {
        let checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        checker.check_text(ARTICLE).unwrap();
        let hits_before = checker.cache().stats().hits();
        checker.check_text(ARTICLE).unwrap();
        assert!(
            checker.cache().stats().hits() > hits_before,
            "second document reuses cached cubes"
        );
    }

    #[test]
    fn document_without_claims_is_empty_report() {
        let checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        let report = checker
            .check_text("<p>No numbers here at all.</p>")
            .unwrap();
        assert!(report.claims.is_empty());
        assert_eq!(report.stats.claims, 0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = CheckerConfig {
            p_true: 2.0,
            ..CheckerConfig::default()
        };
        assert!(matches!(
            AggChecker::new(nfl_db(), cfg),
            Err(CheckerError::Config(_))
        ));
    }

    #[test]
    fn user_corrections_override_verdicts() {
        use agg_relational::Predicate;
        let db = nfl_db();
        let checker = AggChecker::new(db, CheckerConfig::default()).unwrap();
        let mut report = checker.check_text(ARTICLE).unwrap();
        let idx = report
            .claims
            .iter()
            .position(|c| c.claimed_value == 4.0)
            .unwrap();
        // The user pins the true query: Count(*) WHERE games = 'indef' → 4.
        let games = checker.db().resolve("nflsuspensions", "games").unwrap();
        let q = SimpleAggregateQuery::count_star(vec![Predicate::new(games, "indef")]);
        let verdict = report
            .apply_correction(idx, q.clone(), checker.db())
            .unwrap();
        assert_eq!(verdict, Verdict::Correct);
        assert!(report.claims[idx].top_queries[0]
            .query
            .semantically_equal(&q));
        assert_eq!(report.claims[idx].correctness_probability, 1.0);

        // A wrong correction flips the verdict to erroneous.
        let category = checker.db().resolve("nflsuspensions", "category").unwrap();
        let wrong = SimpleAggregateQuery::count_star(vec![Predicate::new(category, "gambling")]);
        let verdict = report.apply_correction(idx, wrong, checker.db()).unwrap();
        assert_eq!(verdict, Verdict::Erroneous);

        // Out-of-range index is a clean error.
        assert!(report.apply_correction(99, q, checker.db()).is_err());
    }

    #[test]
    fn batch_reports_match_sequential_per_document_runs() {
        let db = nfl_db();
        let wrong = r#"
<h1>Indefinite suspensions</h1>
<p>There were seven previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;
        let texts = [ARTICLE, wrong, ARTICLE, wrong, ARTICLE];
        for threads in [1usize, 4] {
            let cfg = CheckerConfig {
                threads,
                ..CheckerConfig::default()
            };
            let batch = BatchVerifier::new(db.clone(), cfg.clone()).unwrap();
            let reports = batch.verify_texts(&texts).unwrap();
            assert_eq!(reports.len(), texts.len());
            for (text, report) in texts.iter().zip(&reports) {
                let solo = AggChecker::new(db.clone(), cfg.clone()).unwrap();
                let expected = solo.check_text(text).unwrap();
                assert_eq!(
                    report.content_fingerprint(),
                    expected.content_fingerprint(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn batch_shares_cache_across_documents() {
        let batch = BatchVerifier::new(nfl_db(), CheckerConfig::default()).unwrap();
        let texts = [ARTICLE; 4];
        batch.verify_texts(&texts).unwrap();
        let stats = batch.checker().cache().stats();
        assert!(
            stats.hits() > 0,
            "later documents must reuse cubes cached by earlier ones"
        );
        // The same claims re-verified can only add hits, never new entries.
        let entries_before = stats.entries();
        batch.verify_texts(&texts).unwrap();
        assert_eq!(batch.checker().cache().stats().entries(), entries_before);
    }

    /// The dedup invariant behind the CI gate, at unit-test scale: the
    /// batched pipeline runs *exactly* as many fused scan passes — and
    /// therefore scans exactly as many rows — at any worker count as at
    /// one worker (single-flight + canonical cube scope + the atomic
    /// whole-wave probe make pass formation order-independent), with
    /// bit-identical reports.
    #[test]
    fn single_flight_keeps_batch_rows_scanned_exact() {
        let db = nfl_db();
        let wrong = r#"
<h1>Indefinite suspensions</h1>
<p>There were seven previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;
        let texts = [
            ARTICLE, wrong, ARTICLE, wrong, ARTICLE, ARTICLE, wrong, ARTICLE,
        ];
        let run = |workers: usize| {
            let cfg = CheckerConfig {
                threads: workers,
                ..CheckerConfig::default()
            };
            let batch = BatchVerifier::new(db.clone(), cfg).unwrap();
            let reports = batch.verify_texts(&texts).unwrap();
            let rows: u64 = reports.iter().map(|r| r.stats.rows_scanned).sum();
            let passes: u64 = reports.iter().map(|r| r.stats.scan_passes).sum();
            let tasks: u64 = reports.iter().map(|r| r.stats.tasks_executed).sum();
            let deduped: u64 = reports.iter().map(|r| r.stats.tasks_deduped).sum();
            let fps: Vec<String> = reports.iter().map(|r| r.content_fingerprint()).collect();
            (rows, passes, tasks, deduped, fps)
        };
        let (rows_1w, passes_1w, tasks_1w, deduped_1w, fps_1w) = run(1);
        assert!(rows_1w > 0);
        // Fusion packs many tasks into few passes even at one worker.
        assert!(passes_1w < tasks_1w, "fusion must reduce row passes");
        // Claims of one document share cube groups, so dedup is visible
        // even sequentially.
        assert!(deduped_1w > 0);
        for workers in [2usize, 4, 8] {
            let (rows, passes, tasks, deduped, fps) = run(workers);
            assert_eq!(
                rows, rows_1w,
                "workers={workers}: duplicated or lost cube execution"
            );
            assert_eq!(
                passes, passes_1w,
                "workers={workers}: pass formation depended on scheduling"
            );
            assert_eq!(tasks, tasks_1w, "workers={workers}");
            assert!(deduped >= deduped_1w, "workers={workers}");
            assert_eq!(
                fps, fps_1w,
                "workers={workers}: reports must be bit-identical"
            );
        }
    }

    /// Fusion is purely physical: with `fuse_scans` off the pipeline
    /// reproduces the unfused execution shape (one pass per task, more
    /// scanned rows) and still produces bit-identical reports.
    #[test]
    fn fusion_changes_row_passes_but_not_reports() {
        let db = nfl_db();
        let run = |fuse: bool| {
            let cfg = CheckerConfig {
                fuse_scans: fuse,
                ..CheckerConfig::default()
            };
            let checker = AggChecker::new(db.clone(), cfg).unwrap();
            checker.check_text(ARTICLE).unwrap()
        };
        let fused = run(true);
        let unfused = run(false);
        assert_eq!(
            fused.content_fingerprint(),
            unfused.content_fingerprint(),
            "fusion must not change any report content"
        );
        assert_eq!(fused.stats.tasks_executed, unfused.stats.tasks_executed);
        assert_eq!(
            unfused.stats.scan_passes, unfused.stats.tasks_executed,
            "unfused = one pass per task"
        );
        assert!(
            fused.stats.scan_passes < unfused.stats.scan_passes,
            "fusion must share passes: {} vs {}",
            fused.stats.scan_passes,
            unfused.stats.scan_passes
        );
        assert!(fused.stats.rows_scanned < unfused.stats.rows_scanned);
    }

    #[test]
    fn empty_batch_is_empty_report_list() {
        let batch = BatchVerifier::new(nfl_db(), CheckerConfig::default()).unwrap();
        let none: [&str; 0] = [];
        assert!(batch.verify_texts(&none).unwrap().is_empty());
    }

    #[test]
    fn report_exposes_flagged_claims() {
        let checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        let article = "<h1>Indefinite suspensions</h1><p>There were nine previous lifetime bans in my database.</p>";
        let report = checker.check_text(article).unwrap();
        assert_eq!(report.flagged().count(), 1);
    }

    /// `flagged()` direct coverage: the empty-report edge case (no claims
    /// at all — the `hit_rate`-style 0-of-0 shape) and a mixed report
    /// where it must select exactly the erroneous claims, in order.
    #[test]
    fn flagged_is_empty_on_empty_report_and_selects_only_erroneous() {
        let checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        let empty = checker.check_text("<p>no numbers here</p>").unwrap();
        assert!(empty.claims.is_empty());
        assert_eq!(empty.flagged().count(), 0, "0 of 0, not a panic");

        let mixed = r#"
<h1>Indefinite suspensions</h1>
<p>There were seven previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;
        let report = checker.check_text(mixed).unwrap();
        let flagged: Vec<f64> = report.flagged().map(|c| c.claimed_value).collect();
        assert_eq!(flagged, vec![7.0], "exactly the wrong claim, none else");
        // `flagged` borrows; the report is still fully usable afterwards.
        assert_eq!(report.claims.len(), 3);
    }

    /// `apply_correction` direct coverage: the empty-report edge case, the
    /// no-candidate (`Unverifiable`) claim, and the guarantee that a
    /// correction pins exactly one copy of the chosen query at rank 0.
    #[test]
    fn apply_correction_edge_cases() {
        use agg_relational::Predicate;
        let db = nfl_db();
        let checker = AggChecker::new(db, CheckerConfig::default()).unwrap();
        let games = checker.db().resolve("nflsuspensions", "games").unwrap();
        let q = SimpleAggregateQuery::count_star(vec![Predicate::new(games, "indef")]);

        // Empty report: every index is out of range, cleanly.
        let mut empty = checker.check_text("<p>wordless</p>").unwrap();
        assert!(matches!(
            empty.apply_correction(0, q.clone(), checker.db()),
            Err(CheckerError::Config(_))
        ));

        // A correction on a real claim pins the query at rank 0 with
        // probability 1 and removes semantic duplicates of it.
        let mut report = checker.check_text(ARTICLE).unwrap();
        let idx = report
            .claims
            .iter()
            .position(|c| c.claimed_value == 4.0)
            .unwrap();
        let had = report.claims[idx].top_queries.len();
        assert!(had > 1, "precondition: a real top-k list");
        let verdict = report
            .apply_correction(idx, q.clone(), checker.db())
            .unwrap();
        assert_eq!(verdict, Verdict::Correct);
        let claim = &report.claims[idx];
        assert_eq!(claim.top_queries[0].probability, 1.0);
        assert_eq!(claim.top_queries[0].result, Some(4.0));
        assert!(claim.top_queries[0].matches);
        let copies = claim
            .top_queries
            .iter()
            .filter(|rq| rq.query.semantically_equal(&q))
            .count();
        assert_eq!(copies, 1, "the pinned query appears exactly once");

        // Re-applying the same correction is idempotent on list length.
        let len_before = report.claims[idx].top_queries.len();
        report
            .apply_correction(idx, q.clone(), checker.db())
            .unwrap();
        assert_eq!(report.claims[idx].top_queries.len(), len_before);

        // A correction evaluating to SQL NULL never matches: the claim is
        // flagged with probability 0.
        let category = checker.db().resolve("nflsuspensions", "category").unwrap();
        let null_q = SimpleAggregateQuery::new(
            agg_relational::AggFunction::Sum,
            agg_relational::AggColumn::Column(
                checker.db().resolve("nflsuspensions", "year").unwrap(),
            ),
            vec![Predicate::new(category, "no such category")],
        );
        let verdict = report
            .apply_correction(idx, null_q.clone(), checker.db())
            .unwrap();
        assert_eq!(verdict, Verdict::Erroneous);
        let claim = &report.claims[idx];
        assert_eq!(claim.correctness_probability, 0.0);
        assert_eq!(claim.top_queries[0].result, None);
        assert_eq!(claim.verdict, Verdict::Erroneous);
        assert_eq!(
            report.flagged().count(),
            1,
            "the corrected claim is now flagged"
        );
    }
}
