//! Configuration of the checker.
//!
//! Every knob the paper's evaluation varies is explicit here, so the
//! experiment harness can reproduce each ablation row of Table 5, Table 10,
//! and Figures 11–13 by toggling one field.

use agg_nlp::claims::ClaimDetectorConfig;
use serde::{Deserialize, Serialize};

/// Which keyword sources feed a claim's context (Figure 11 ablation).
/// The claim sentence itself is always used.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ContextConfig {
    /// Keywords of the sentence preceding the claim sentence (weight 0.4·m).
    pub use_previous_sentence: bool,
    /// Keywords of the first sentence of the claim's paragraph (0.4·m).
    pub use_paragraph_start: bool,
    /// Expand keywords with synonyms (WordNet substitute).
    pub use_synonyms: bool,
    /// Keywords of all enclosing headlines, walking up the section tree
    /// (0.7·m).
    pub use_headlines: bool,
}

impl Default for ContextConfig {
    fn default() -> Self {
        Self {
            use_previous_sentence: true,
            use_paragraph_start: true,
            use_synonyms: true,
            use_headlines: true,
        }
    }
}

impl ContextConfig {
    /// The "claim sentence only" ablation (first row of Figure 11).
    pub fn sentence_only() -> Self {
        Self {
            use_previous_sentence: false,
            use_paragraph_start: false,
            use_synonyms: false,
            use_headlines: false,
        }
    }
}

/// Which random variables the probabilistic model uses (Table 10 ablation).
/// Relevance scores `S_c` are always on — without them there is no signal.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Integrate query evaluation results `E_c` (the `p_T` factor).
    pub use_evaluation: bool,
    /// Learn document priors Θ via expectation maximization.
    pub use_priors: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            use_evaluation: true,
            use_priors: true,
        }
    }
}

/// Evaluation-scope limits for `PickScope` (§6.1, Figure 13).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScopeConfig {
    /// Abstract work units allowed per claim (cost model input).
    pub budget_per_claim: f64,
    /// Hard cap on aggregation columns admitted per claim.
    pub max_agg_columns: usize,
    /// Hard cap on predicate columns admitted per claim.
    pub max_predicate_columns: usize,
    /// Hard cap on literals admitted per predicate column.
    pub max_literals_per_column: usize,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        Self {
            budget_per_claim: 2e6,
            max_agg_columns: 6,
            max_predicate_columns: 8,
            max_literals_per_column: 10,
        }
    }
}

/// Full checker configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckerConfig {
    /// Number of fragment hits retrieved per claim and fragment category
    /// ("# Hits" in Table 5 / Figure 13; the paper's default is 20).
    pub lucene_hits: usize,
    /// Assumed a-priori probability of a claim being correct
    /// (`p_T`; the paper empirically chose 0.999, Figure 12).
    pub p_true: f64,
    /// Maximum number of equality predicates per candidate query
    /// (`m` in §6.3; the paper uses 3).
    pub max_predicates: usize,
    /// Maximum number of EM iterations (Algorithm 3).
    pub max_em_iterations: usize,
    /// EM converges when no component of Θ moves more than this.
    pub em_epsilon: f64,
    /// Additive smoothing for the M-step (keeps priors non-zero).
    pub prior_smoothing: f64,
    /// Relevance score assigned to leaving a predicate column
    /// unrestricted, as a fraction of the claim's best predicate score.
    pub unrestricted_factor: f64,
    /// Multiply the prior of a candidate by `(1 - p_r)` for every column it
    /// leaves unrestricted. The paper's Eq. (5) omits this factor; it is
    /// kept as an ablation (DESIGN.md §4).
    pub penalize_unrestricted: bool,
    /// Keyword-context sources.
    pub context: ContextConfig,
    /// Probabilistic-model ablations.
    pub model: ModelConfig,
    /// Evaluation-scope limits.
    pub scope: ScopeConfig,
    /// Claim detection heuristics.
    pub claim_detector: ClaimDetectorConfig,
    /// Weight multiplier for synonym-expanded keywords.
    pub synonym_weight: f64,
    /// Worker-thread budget (1 = fully sequential): the size of the **one**
    /// pool all parallel work drains through. Single-document checks spend
    /// it on claim scoring and on concurrent cube tasks (claims × cubes);
    /// batched verification (`BatchVerifier`) runs one shared scoped pool
    /// of this many workers that pulls documents *and* cube tasks from the
    /// same scheduler — there is no threads-per-document × workers
    /// multiplication, so small machines are never oversubscribed. Scan
    /// passes over large relations additionally split into fixed
    /// partitions the pool's workers steal (see
    /// [`CheckerConfig::partition_blocks`]); the fixed partition shape and
    /// ascending merge order keep reports bit-identical across thread
    /// counts.
    pub threads: usize,
    /// Lock stripes of the shared [`agg_relational::EvalCache`]. More
    /// shards means less contention when many batch workers score claims
    /// against one cache; rounded up to a power of two. 0 = the library
    /// default ([`agg_relational::DEFAULT_CACHE_SHARDS`]).
    pub cache_shards: usize,
    /// Hard cap on predicate combinations enumerated per claim.
    pub max_combos_per_claim: usize,
    /// Query evaluation strategy (Table 6 of the paper).
    pub strategy: EvalStrategy,
    /// Fuse same-scope cube tasks of one evaluation wave into shared scan
    /// passes (one row pass feeds many cube grids). Purely physical —
    /// reports are bit-identical with fusion on or off — so this knob
    /// exists for A/B measurement against the unfused execution shape.
    pub fuse_scans: bool,
    /// Storage blocks per fixed scan partition (the partition-parallel
    /// determinism contract's one tuning input; 64 blocks ≈ 128k rows).
    /// Partition boundaries are a pure function of row count and this
    /// span — never of worker count — and partition grids always merge in
    /// ascending partition order, so **every** run with the same span
    /// produces bit-identical reports at any worker count. Changing the
    /// span regroups f64 accumulation and may legitimately move reports
    /// by ulps on non-integer data (which is why golden fingerprints were
    /// regenerated once when this contract landed). 0 disables
    /// partitioning (one monolithic scan per pass, the pre-partition
    /// shape).
    pub partition_blocks: usize,
}

/// What [`StreamingVerifier::submit`](crate::stream::StreamingVerifier::submit)
/// does when the bounded intake queue is full — the streaming service's
/// backpressure knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IntakePolicy {
    /// Block the submitting thread until a slot frees up (or the stream
    /// closes). Lossless: every accepted document is eventually verified.
    #[default]
    Block,
    /// Fail fast with [`crate::stream::SubmitError::Full`] so the caller
    /// can shed load or retry later. The service never blocks producers.
    Reject,
}

/// Intake knobs of the streaming verification service
/// ([`crate::stream::StreamingVerifier`]). Kept separate from
/// [`CheckerConfig`] because they shape *admission*, never verification:
/// two services with different intake configs over the same
/// `CheckerConfig` produce bit-identical reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Maximum documents queued (submitted but not yet picked up by a
    /// worker). Documents being verified do not count against this.
    pub intake_capacity: usize,
    /// What `submit` does when the intake queue is full.
    pub policy: IntakePolicy,
    /// Long-lived worker threads draining the intake. 0 = use
    /// [`CheckerConfig::threads`].
    pub workers: usize,
    /// How many panicked workers the service's supervisor replaces over
    /// its lifetime before letting the pool shrink. Once the budget is
    /// spent and the last worker dies, queued documents settle with
    /// [`crate::pipeline::CheckerError::Stream`] instead of hanging.
    pub max_respawns: usize,
    /// Per-lane cap on queued documents (multi-client fairness). The
    /// intake holds one round-robin lane per client
    /// ([`SubmitOptions::lane`](crate::stream::SubmitOptions)); with a cap,
    /// one flooding client saturates only its own lane — its submissions
    /// block or reject while other lanes still have room — instead of the
    /// whole queue. 0 disables the per-lane cap (a lane may then use every
    /// slot of `intake_capacity`). Single-lane callers (the plain `submit`
    /// family) are unaffected unless the cap is tighter than
    /// `intake_capacity`.
    pub lane_capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            intake_capacity: 64,
            policy: IntakePolicy::Block,
            workers: 0,
            max_respawns: 2,
            lane_capacity: 0,
        }
    }
}

impl StreamConfig {
    /// Sanity-check configuration values.
    pub fn validate(&self) -> Result<(), String> {
        if self.intake_capacity == 0 {
            return Err("intake_capacity must be positive".into());
        }
        Ok(())
    }
}

/// The three evaluation strategies of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalStrategy {
    /// One query execution per candidate — no merging, no caching.
    Naive,
    /// Cube-merged execution, recomputed every time.
    Merged,
    /// Cube-merged execution with the shared result cache (the full system).
    MergedCached,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        Self {
            lucene_hits: 20,
            p_true: 0.999,
            max_predicates: 3,
            max_em_iterations: 8,
            em_epsilon: 1e-3,
            prior_smoothing: 0.15,
            unrestricted_factor: 0.5,
            penalize_unrestricted: false,
            context: ContextConfig::default(),
            model: ModelConfig::default(),
            scope: ScopeConfig::default(),
            claim_detector: ClaimDetectorConfig::default(),
            synonym_weight: 0.7,
            threads: 1,
            cache_shards: 0,
            max_combos_per_claim: 20_000,
            strategy: EvalStrategy::MergedCached,
            fuse_scans: true,
            partition_blocks: agg_relational::DEFAULT_PARTITION_BLOCKS,
        }
    }
}

impl CheckerConfig {
    /// Sanity-check configuration values.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.5..1.0).contains(&self.p_true) {
            return Err(format!("p_true must be in [0.5, 1.0), got {}", self.p_true));
        }
        if self.lucene_hits == 0 {
            return Err("lucene_hits must be positive".into());
        }
        if self.max_predicates == 0 || self.max_predicates > 8 {
            return Err("max_predicates must be in 1..=8".into());
        }
        if self.max_em_iterations == 0 {
            return Err("max_em_iterations must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.prior_smoothing) {
            return Err("prior_smoothing must be in [0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = CheckerConfig::default();
        assert_eq!(c.lucene_hits, 20);
        assert_eq!(c.p_true, 0.999);
        assert_eq!(c.max_predicates, 3);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = CheckerConfig {
            p_true: 1.5,
            ..CheckerConfig::default()
        };
        assert!(c.validate().is_err());
        c = CheckerConfig {
            lucene_hits: 0,
            ..CheckerConfig::default()
        };
        assert!(c.validate().is_err());
        c = CheckerConfig {
            max_predicates: 9,
            ..CheckerConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn stream_config_defaults_and_validation() {
        let s = StreamConfig::default();
        assert_eq!(s.intake_capacity, 64);
        assert_eq!(s.policy, IntakePolicy::Block);
        assert_eq!(s.workers, 0, "0 defers to CheckerConfig::threads");
        assert_eq!(s.max_respawns, 2);
        assert_eq!(s.lane_capacity, 0, "0 = no per-lane cap");
        s.validate().unwrap();
        let bad = StreamConfig {
            intake_capacity: 0,
            ..StreamConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn ablation_presets() {
        let ctx = ContextConfig::sentence_only();
        assert!(!ctx.use_headlines && !ctx.use_synonyms);
        let m = ModelConfig {
            use_evaluation: false,
            use_priors: false,
        };
        assert!(!m.use_evaluation);
    }
}
