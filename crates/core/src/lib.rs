//! # agg-core
//!
//! The AggChecker itself: *Verifying Text Summaries of Relational Data Sets*
//! (Jo, Trummer, Yu, Liu, Wang, Yu, Mehta — SIGMOD 2019).
//!
//! Given a relational database and a text document summarizing it, the
//! checker maps every numerical claim in the text to a probability
//! distribution over *simple aggregate queries*, evaluates large numbers of
//! candidate queries efficiently, and marks up claims whose most likely
//! query does not evaluate (after rounding) to the claimed value — a spell
//! checker for numbers.
//!
//! The pipeline (Figure 1 of the paper):
//!
//! 1. **Fragment generation** ([`fragments`]) — aggregation functions,
//!    aggregation columns, and equality predicates derived from the data,
//!    each associated with keywords (§4.2).
//! 2. **Claim detection and keyword context** ([`keywords`]) — Algorithm 2:
//!    claim-sentence keywords weighted by tree distance, plus the preceding
//!    sentence, paragraph start, synonyms, and enclosing headlines (§4.3).
//! 3. **Keyword matching** ([`matching`]) — Algorithm 1: relevance scores
//!    for (claim, fragment) pairs via the IR engine (§4.1).
//! 4. **Scope selection** ([`scope`]) — `PickScope`: which fragments enter
//!    candidate enumeration, under a cost-model budget (§6.1).
//! 5. **Candidate enumeration** ([`candidates`]) — all fragment
//!    combinations within the query model (§4.4).
//! 6. **Probabilistic reasoning** ([`model`]) — document priors Θ, keyword
//!    likelihoods, evaluation likelihoods with parameter `p_T`, iterated
//!    via expectation maximization (Algorithm 3, §5).
//! 7. **Massive-scale evaluation** ([`evaluate`]) — cube-merged, cached
//!    query evaluation (Algorithm 4, §6).
//! 8. **Verification** ([`pipeline`], [`report`]) — per-claim top-k
//!    queries, correctness probabilities, and document markup.

pub mod candidates;
pub mod config;
pub mod evaluate;
pub mod fragments;
pub mod keywords;
pub mod matching;
pub mod model;
pub mod pipeline;
pub mod report;
pub mod rounding;
pub mod scope;
pub mod stream;
pub mod textutil;

pub use candidates::{Candidate, CandidateSet};
pub use config::{
    CheckerConfig, ContextConfig, EvalStrategy, IntakePolicy, ModelConfig, ScopeConfig,
    StreamConfig,
};
pub use evaluate::{EvalStats, Evaluator, ResultsMatrix, TaskBundling};
pub use fragments::{CatalogConfig, FragmentCatalog};
pub use keywords::{claim_keywords, WeightedKeyword};
pub use matching::{match_claim, ClaimScores};
pub use model::Theta;
pub use pipeline::{
    AggChecker, BatchVerifier, CheckedClaim, CheckerError, ClaimProgress, ProgressObserver,
    RankedQuery, ReportStatus, RunStats, Verdict, VerificationReport,
};
pub use rounding::matches_claim;
pub use scope::Scope;
pub use stream::{StreamStats, StreamingVerifier, SubmitError, SubmitOptions, Ticket};
