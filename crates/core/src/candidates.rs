//! Candidate query enumeration (§4.4).
//!
//! Candidates are formed by *"combining all returned query fragments in all
//! possible ways (within the boundaries of the query model)"*: one
//! aggregation function, one aggregation column, and a conjunction of at
//! most `m` equality predicates over distinct columns.
//!
//! A candidate is factored into a **predicate combination** (shared across
//! aggregate choices) and an **aggregate pair** (function × column) — the
//! probabilistic model and the evaluator both exploit this factorization,
//! so the cross product is never materialized.

use crate::fragments::FragmentCatalog;
use crate::scope::Scope;
use agg_relational::{AggColumn, AggFunction, Predicate, SimpleAggregateQuery};

/// One predicate combination: `(catalog predicate column, literal)` pairs
/// over distinct columns, ordered by descending relevance (the first pair
/// is the condition of a conditional-probability candidate).
pub type PredCombo = Vec<(u16, u16)>;

/// A compact reference to one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Index into [`CandidateSet::combos`].
    pub combo: u32,
    /// Index into [`CandidateSet::agg_pairs`].
    pub pair: u32,
}

/// All candidates of one claim, factored form.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Predicate combinations, including the empty combination at index 0.
    pub combos: Vec<PredCombo>,
    /// Valid `(function, aggregation column)` pairs, as catalog positions.
    pub agg_pairs: Vec<(u16, u16)>,
}

impl CandidateSet {
    /// Enumerate candidates within a scope.
    ///
    /// * `max_predicates` — the paper's `m` (3).
    /// * `max_combos` — hard cap; enumeration order prefers combinations of
    ///   high-relevance pairs, so truncation drops the least likely ones.
    pub fn enumerate(
        catalog: &FragmentCatalog,
        scope: &Scope,
        max_predicates: usize,
        max_combos: usize,
    ) -> CandidateSet {
        // Predicate combinations: DFS over scope pairs (already sorted by
        // descending marginal probability), keeping columns distinct.
        let pairs: Vec<(u16, u16)> = scope
            .predicate_pairs
            .iter()
            .map(|(c, l)| (*c as u16, *l as u16))
            .collect();
        let mut combos: Vec<PredCombo> = vec![Vec::new()];
        let mut current: PredCombo = Vec::new();
        fn dfs(
            pairs: &[(u16, u16)],
            start: usize,
            current: &mut PredCombo,
            combos: &mut Vec<PredCombo>,
            max_len: usize,
            max_combos: usize,
        ) {
            if current.len() >= max_len {
                return;
            }
            for i in start..pairs.len() {
                if combos.len() >= max_combos {
                    return;
                }
                let (c, _) = pairs[i];
                if current.iter().any(|(pc, _)| *pc == c) {
                    continue;
                }
                current.push(pairs[i]);
                combos.push(current.clone());
                dfs(pairs, i + 1, current, combos, max_len, max_combos);
                current.pop();
            }
        }
        dfs(
            &pairs,
            0,
            &mut current,
            &mut combos,
            max_predicates,
            max_combos,
        );

        // Aggregate pairs: every function × every scoped aggregation column
        // that satisfies the function's typing rule (§4.2: `*` is "the
        // argument for count aggregates"):
        //
        // * `Count`, `Percentage`, `ConditionalProbability` — `*` only.
        //   A `Count(col)` candidate per column would evaluate identically
        //   on NULL-free columns and only split probability mass.
        // * `CountDistinct` — any concrete column (Table 9 of the paper
        //   counts distinct values of a *string* column).
        // * `Sum`/`Avg`/`Min`/`Max` — numeric columns.
        let mut agg_pairs = Vec::new();
        for (fi, f) in catalog.functions.iter().enumerate() {
            for &ai in &scope.agg_columns {
                let col = catalog.agg_columns[ai];
                let ok = match f {
                    AggFunction::Count
                    | AggFunction::Percentage
                    | AggFunction::ConditionalProbability => col == AggColumn::Star,
                    AggFunction::CountDistinct => col != AggColumn::Star,
                    _ => catalog.agg_col_numeric[ai],
                };
                if ok {
                    agg_pairs.push((fi as u16, ai as u16));
                }
            }
        }

        CandidateSet { combos, agg_pairs }
    }

    /// Total candidate count (the evaluated-candidates figure of §6).
    pub fn len(&self) -> usize {
        self.combos.len() * self.agg_pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is a candidate structurally valid? (Conditional probability needs at
    /// least one predicate.)
    pub fn is_valid(&self, catalog: &FragmentCatalog, cand: Candidate) -> bool {
        let (fi, _) = self.agg_pairs[cand.pair as usize];
        if catalog.functions[fi as usize] == AggFunction::ConditionalProbability {
            return !self.combos[cand.combo as usize].is_empty();
        }
        true
    }

    /// Materialize a candidate as an executable query.
    pub fn to_query(&self, catalog: &FragmentCatalog, cand: Candidate) -> SimpleAggregateQuery {
        let (fi, ai) = self.agg_pairs[cand.pair as usize];
        let combo = &self.combos[cand.combo as usize];
        let predicates = combo
            .iter()
            .map(|(c, l)| {
                Predicate::new(
                    catalog.predicate_columns[*c as usize],
                    catalog.literals[*c as usize][*l as usize].clone(),
                )
            })
            .collect();
        SimpleAggregateQuery::new(
            catalog.functions[fi as usize],
            catalog.agg_columns[ai as usize],
            predicates,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::CatalogConfig;
    use agg_relational::{Database, Table, Value};

    fn setup() -> (Database, FragmentCatalog) {
        let t = Table::from_columns(
            "t",
            vec![
                ("a", vec!["a1".into(), "a2".into()]),
                ("b", vec!["b1".into(), "b2".into()]),
                ("c", vec!["c1".into(), "c2".into()]),
                ("n", vec![Value::Int(1), Value::Int(2)]),
            ],
        )
        .unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        (db, cat)
    }

    fn scope_with(cat: &FragmentCatalog, pairs: Vec<(usize, usize)>) -> Scope {
        Scope {
            agg_columns: (0..cat.agg_columns.len()).collect(),
            predicate_pairs: pairs,
        }
    }

    #[test]
    fn empty_combo_is_always_present() {
        let (_, cat) = setup();
        let scope = scope_with(&cat, vec![]);
        let set = CandidateSet::enumerate(&cat, &scope, 3, 1000);
        assert_eq!(set.combos.len(), 1);
        assert!(set.combos[0].is_empty());
    }

    #[test]
    fn combos_respect_distinct_columns_and_max_len() {
        let (_, cat) = setup();
        // Two literals of column 0, one of column 1.
        let scope = scope_with(&cat, vec![(0, 0), (0, 1), (1, 0)]);
        let set = CandidateSet::enumerate(&cat, &scope, 2, 1000);
        // {}, {00}, {01}, {10}, {00,10}, {01,10} = 6.
        assert_eq!(set.combos.len(), 6);
        for combo in &set.combos {
            assert!(combo.len() <= 2);
            let mut cols: Vec<u16> = combo.iter().map(|(c, _)| *c).collect();
            cols.dedup();
            assert_eq!(cols.len(), combo.len(), "duplicate column in {combo:?}");
        }
    }

    #[test]
    fn three_way_combos() {
        let (_, cat) = setup();
        let scope = scope_with(&cat, vec![(0, 0), (1, 0), (2, 0)]);
        let set = CandidateSet::enumerate(&cat, &scope, 3, 1000);
        // {} + 3 singles + 3 pairs + 1 triple = 8.
        assert_eq!(set.combos.len(), 8);
    }

    #[test]
    fn cap_truncates_enumeration() {
        let (_, cat) = setup();
        let scope = scope_with(&cat, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
        let set = CandidateSet::enumerate(&cat, &scope, 3, 10);
        assert!(set.combos.len() <= 10);
        assert!(set.combos[0].is_empty(), "empty combo survives truncation");
    }

    #[test]
    fn agg_pairs_respect_typing() {
        let (_, cat) = setup();
        let scope = scope_with(&cat, vec![]);
        let set = CandidateSet::enumerate(&cat, &scope, 3, 1000);
        for &(fi, ai) in &set.agg_pairs {
            let f = cat.functions[fi as usize];
            let col = cat.agg_columns[ai as usize];
            if f.requires_numeric_column() {
                assert_ne!(col, AggColumn::Star, "{f} over *");
            }
            if matches!(
                f,
                AggFunction::Count | AggFunction::Percentage | AggFunction::ConditionalProbability
            ) {
                assert_eq!(col, AggColumn::Star, "{f} must use *");
            }
        }
        // Star + 4 columns (a, b, c, n); n is the only numeric one.
        // Count/Percentage/CondProb: `*` each (3); CountDistinct: 4
        // concrete columns; Sum/Avg/Min/Max/Median: 1 numeric column each.
        assert_eq!(set.agg_pairs.len(), 3 + 4 + 5);
    }

    #[test]
    fn cond_prob_requires_predicates() {
        let (_, cat) = setup();
        let scope = scope_with(&cat, vec![(0, 0)]);
        let set = CandidateSet::enumerate(&cat, &scope, 3, 1000);
        let cp_pair = set
            .agg_pairs
            .iter()
            .position(|(fi, _)| cat.functions[*fi as usize] == AggFunction::ConditionalProbability)
            .unwrap() as u32;
        let empty = Candidate {
            combo: 0,
            pair: cp_pair,
        };
        let restricted = Candidate {
            combo: 1,
            pair: cp_pair,
        };
        assert!(!set.is_valid(&cat, empty));
        assert!(set.is_valid(&cat, restricted));
    }

    #[test]
    fn to_query_round_trips() {
        let (db, cat) = setup();
        let scope = scope_with(&cat, vec![(0, 0), (1, 1)]);
        let set = CandidateSet::enumerate(&cat, &scope, 3, 1000);
        let combo_idx = set
            .combos
            .iter()
            .position(|c| c.len() == 2)
            .expect("two-predicate combo") as u32;
        let cand = Candidate {
            combo: combo_idx,
            pair: 0,
        };
        let q = set.to_query(&cat, cand);
        assert_eq!(q.predicates.len(), 2);
        q.validate(&db).unwrap();
        let sql = q.to_sql(&db);
        assert!(sql.contains("WHERE"), "{sql}");
    }

    #[test]
    fn candidate_count_is_product() {
        let (_, cat) = setup();
        let scope = scope_with(&cat, vec![(0, 0), (1, 0)]);
        let set = CandidateSet::enumerate(&cat, &scope, 3, 1000);
        assert_eq!(set.len(), set.combos.len() * set.agg_pairs.len());
        assert!(!set.is_empty());
    }
}
