//! Streaming verification service: **dynamic admission** on top of the
//! batch substrate.
//!
//! [`BatchVerifier`](crate::pipeline::BatchVerifier) verifies a
//! pre-materialized document list; the deployments the paper frames
//! (FactChecker's interactive service, Scrutinizer's organization-wide
//! claim streams) instead see documents *arrive* — at any time, from many
//! clients, at rates that can exceed the machine. [`StreamingVerifier`] is
//! that front-end: a long-lived service over one shared
//! [`AggChecker`] (database, fragment catalog, sharded single-flight
//! cache) where clients [`submit`](StreamingVerifier::submit) documents and
//! receive a [`Ticket`] per document, while a persistent pool of worker
//! threads drains a bounded intake queue.
//!
//! # Execution model
//!
//! Workers serve **two queues through one blocking point**. A worker that
//! pops a document from the intake drives it exactly like a batch worker:
//! every evaluation wave probes the shared cache atomically
//! (`EvalCache::flight_batch_many`), fuses its same-scope cube tasks into
//! shared scan passes (`ScanGroup`), and submits them to the service's
//! **one** shared `CubeScheduler` (each service owns its scheduler, like
//! each `BatchVerifier` owns its pool); while its own tasks are pending it
//! helps execute *other* in-flight documents' passes. A worker with no document
//! parks in [`CubeScheduler::help_until`](agg_relational::CubeScheduler::help_until),
//! draining whatever passes the drivers queue, and is recalled by a `kick`
//! the moment a new document lands in the intake — so wave formation rides
//! an open-ended queue instead of a fixed batch.
//!
//! Cross-document sharing is the point of the shared substrate: cube
//! scope is *canonical* (catalog-wide literal lists, per-column aggregate
//! bundles), so same-scope cubes of different in-flight documents resolve
//! to the same cache keys — whichever document's wave claims them first
//! executes them as one fused row pass, and every other in-flight
//! document's wave hits the resident slice or joins the flight instead of
//! scanning again. N clients streaming summaries of one database cost one
//! document's scans plus each document's unique remainder.
//!
//! # Determinism contract
//!
//! Reports are **bit-identical to a solo
//! [`AggChecker::check_document`] run** regardless of arrival order, wave
//! composition, or worker count — the same contract batch mode holds,
//! extended to dynamic admission. The ingredients are identical: canonical
//! task bundling (the executed-scan set does not depend on scheduling),
//! sequential scans inside every fused pass (each grid sees rows in
//! relation order, so f64 accumulation sequences never vary), and
//! single-flight publication (each cube key computed exactly once). The
//! equivalence proptests and the CI `dedup-gate` (streaming variants)
//! enforce it end to end. The one caveat is inherited from warm caches
//! generally: a float `Sum`/`Avg` served from a wider cached slice can
//! differ in the last ulp from a cold evaluation; count-like and
//! integer-exact aggregates — the paper's workload — are bit-identical.
//!
//! # Backpressure and shutdown
//!
//! The intake queue is bounded ([`StreamConfig::intake_capacity`]); a full
//! queue either blocks the submitter or rejects the submission
//! ([`IntakePolicy`]). [`close`](StreamingVerifier::close) stops intake
//! but **drains**: everything already queued is still verified.
//! [`into_checker`](StreamingVerifier::into_checker) closes, joins the
//! workers, and returns the warmed checker. Dropping the service without
//! closing takes the fast path instead: in-flight documents finish, but
//! documents still queued are **rejected** (their tickets settle with
//! [`CheckerError::Stream`]) so teardown never waits on a deep queue.
//!
//! # Deadlines, cancellation, and supervision
//!
//! A submission may carry a **deadline**
//! ([`submit_with_deadline`](StreamingVerifier::submit_with_deadline)),
//! and every [`Ticket`] can be [`cancel`](Ticket::cancel)led. Both settle
//! the ticket with a **partial report** instead of an error or a hang:
//! a still-queued document de-queues immediately; an in-flight document
//! aborts at its next wave boundary (between EM iterations), keeping
//! every verdict that already settled and marking the rest
//! [`Verdict::Unverified`](crate::pipeline::Verdict::Unverified). The
//! report's [`ReportStatus`] says which way it ended; partial reports are
//! tallied in [`StreamStats::timed_out`] / [`StreamStats::cancelled`],
//! never in `completed`.
//!
//! The worker pool is **supervised**: a panicked worker (its ticket
//! settles via the unwind guard) is joined and replaced by a fresh thread
//! while the [`StreamConfig::max_respawns`] budget lasts. Once the budget
//! is spent and the last worker dies, the supervisor closes the intake
//! and settles everything still queued with [`CheckerError::Stream`] — a
//! fully dead pool never leaves a `Ticket::wait` blocking forever.
//!
//! # Example
//!
//! ```
//! use agg_core::{CheckerConfig, StreamConfig, StreamingVerifier};
//! use agg_relational::{Database, Table};
//!
//! let table = Table::from_columns(
//!     "sales",
//!     vec![("region", vec!["west".into(), "west".into(), "east".into()])],
//! )?;
//! let mut db = Database::new("demo");
//! db.add_table(table);
//!
//! let service = StreamingVerifier::new(db, CheckerConfig::default(), StreamConfig::default())?;
//! // Submissions can arrive from any thread, at any time.
//! let ticket = service.submit_text("<p>There were two sales in the west region.</p>")?;
//! let report = ticket.wait()?;
//! assert_eq!(report.claims.len(), 1);
//! // Graceful shutdown: drain the queue, stop the workers, keep the
//! // warmed cache for a future service.
//! let checker = service.into_checker();
//! assert!(checker.cache().stats().entries() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::config::{CheckerConfig, IntakePolicy, StreamConfig};
use crate::evaluate::TaskBundling;
use crate::pipeline::{
    AggChecker, CheckerError, DocControl, ExecContext, ProgressObserver, ReportStatus,
    VerificationReport,
};
use agg_nlp::structure::{parse_document, Document};
use agg_relational::{CubeScheduler, Database, GridArena};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The intake queue is at capacity and the stream runs
    /// [`IntakePolicy::Reject`] — shed load or retry later.
    Full,
    /// The stream was closed; no further submissions are accepted.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full => write!(f, "intake queue full"),
            SubmitError::Closed => write!(f, "stream closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
enum TicketState {
    Pending,
    // Boxed: a settled report is >200 bytes, and every pending ticket
    // would otherwise carry that much inline in its mutex.
    Done(Box<Result<VerificationReport, CheckerError>>),
    Taken,
}

#[derive(Debug)]
struct TicketCell {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl TicketCell {
    fn new() -> TicketCell {
        TicketCell {
            state: Mutex::new(TicketState::Pending),
            cv: Condvar::new(),
        }
    }

    fn settle(&self, result: Result<VerificationReport, CheckerError>) {
        *lock(&self.state) = TicketState::Done(Box::new(result));
        self.cv.notify_all();
    }
}

/// Per-document completion handle returned by
/// [`StreamingVerifier::submit`]. Every accepted submission's ticket
/// settles exactly once: with the report (complete or — after a deadline
/// or [`Ticket::cancel`] — partial), with the verification error, or with
/// [`CheckerError::Stream`] if the service shut down before the document
/// ran.
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<TicketCell>,
    /// Shared with the worker driving this document (if any): carries the
    /// deadline and the cancellation flag into the wave-boundary checks.
    ctrl: Arc<DocControl>,
    /// Back-reference for [`Ticket::cancel`]'s de-queue path. Weak so an
    /// outstanding ticket never keeps a dropped service alive.
    shared: Weak<Shared>,
}

impl Ticket {
    /// Has the document been verified (or its submission abandoned)?
    pub fn is_done(&self) -> bool {
        !matches!(*lock(&self.cell.state), TicketState::Pending)
    }

    /// Cancel this submission. Still queued: the document de-queues
    /// immediately and the ticket settles right here with a
    /// [`ReportStatus::Cancelled`] partial report (every claim
    /// [`Verdict::Unverified`](crate::pipeline::Verdict::Unverified)).
    /// In flight: the driving worker aborts at its next wave boundary and
    /// settles the same way, keeping verdicts that already settled.
    /// Already settled: a no-op. Idempotent either way.
    pub fn cancel(&self) {
        self.ctrl.cancel();
        let Some(shared) = self.shared.upgrade() else {
            return;
        };
        let sub = {
            let mut intake = lock(&shared.intake);
            let sub = intake.remove_cell(&self.cell);
            if sub.is_some() {
                shared.queue_len.store(intake.len, Ordering::Release);
            }
            sub
        };
        // Not queued: either in flight (the worker's wave-boundary check
        // picks the flag up and settles the ticket) or already settled.
        let Some(sub) = sub else {
            return;
        };
        // A slot freed — and on a closed stream this removal may be the
        // drained-shutdown transition parked workers must observe.
        shared.space.notify_one();
        shared.scheduler.kick();
        let c = &shared.counters;
        c.cancelled.fetch_add(1, Ordering::Relaxed);
        c.partial.fetch_add(1, Ordering::Relaxed);
        let report = shared
            .checker_arc()
            .unverified_report(&sub.doc, ReportStatus::Cancelled);
        sub.cell.settle(Ok(report));
    }

    /// Take the settled result without blocking: `None` while the
    /// document is still queued or in flight, `Some` exactly once when it
    /// has settled. Pollers (the HTTP `GET /v1/documents/{id}` path) call
    /// this instead of [`wait`](Ticket::wait), which blocks and consumes
    /// the ticket. After a successful take, a later `wait` on the same
    /// ticket returns [`CheckerError::Stream`].
    pub fn try_take(&self) -> Option<Result<VerificationReport, CheckerError>> {
        let mut state = lock(&self.cell.state);
        if !matches!(*state, TicketState::Done(_)) {
            return None;
        }
        match std::mem::replace(&mut *state, TicketState::Taken) {
            TicketState::Done(result) => Some(*result),
            TicketState::Pending | TicketState::Taken => unreachable!("just matched Done"),
        }
    }

    /// Block until the document's verification settles.
    pub fn wait(self) -> Result<VerificationReport, CheckerError> {
        self.wait_ref()
    }

    /// [`wait`](Ticket::wait) through a shared reference: blocks until the
    /// document settles and takes the result exactly once, without
    /// consuming the ticket. Network front-ends keep the ticket in an
    /// `Arc` — a watcher thread blocks here streaming the result out
    /// while the connection handler retains the same ticket for
    /// [`cancel`](Ticket::cancel) on client disconnect. A second
    /// `wait_ref` (or `wait`) after the result was taken returns
    /// [`CheckerError::Stream`].
    pub fn wait_ref(&self) -> Result<VerificationReport, CheckerError> {
        let mut state = lock(&self.cell.state);
        while matches!(*state, TicketState::Pending) {
            state = self
                .cell
                .cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        match std::mem::replace(&mut *state, TicketState::Taken) {
            TicketState::Done(result) => *result,
            // Pending was just ruled out; Taken means a prior
            // [`Ticket::try_take`] already claimed the result.
            TicketState::Pending => unreachable!("ticket settles once"),
            TicketState::Taken => Err(CheckerError::Stream(
                "report already taken from this ticket".into(),
            )),
        }
    }
}

/// Point-in-time counters of one streaming service. High-water marks are
/// monotone; throughput counters sum over completed documents' reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Documents accepted into the intake queue.
    pub submitted: u64,
    /// Documents verified to completion (ticket settled with a
    /// [`ReportStatus::Complete`] report).
    pub completed: u64,
    /// Documents whose verification returned an error (ticket settled
    /// with it). Every accepted document lands in exactly one of
    /// `completed`/`failed`/`rejected`/`timed_out`/`cancelled` — see
    /// [`StreamStats::settled`] — so `submitted == settled()` at
    /// quiescence.
    pub failed: u64,
    /// Submissions abandoned at shutdown (queued at drop or at whole-pool
    /// death; their tickets settled with [`CheckerError::Stream`]). Policy
    /// rejects ([`SubmitError::Full`]) never enter the queue and are not
    /// counted.
    pub rejected: u64,
    /// Documents whose deadline expired before verification finished
    /// (ticket settled with a [`ReportStatus::TimedOut`] partial report).
    pub timed_out: u64,
    /// Documents cancelled via [`Ticket::cancel`] before verification
    /// finished (ticket settled with a [`ReportStatus::Cancelled`]
    /// partial report).
    pub cancelled: u64,
    /// Partial reports issued — always `timed_out + cancelled`; kept as
    /// its own counter so operators can alert on "any partial output"
    /// without summing.
    pub partial: u64,
    /// Panicked workers the supervisor replaced (bounded by
    /// [`StreamConfig::max_respawns`]). 0 in fault-free operation.
    pub respawns: u64,
    /// Poisoned single-flight retries observed by this service's
    /// documents (a waited-on worker panicked mid-cube and the waiter
    /// re-probed). 0 in fault-free operation.
    pub poison_retries: u64,
    /// Deepest the intake queue ever got (backpressure headroom).
    pub queue_depth_high_water: u64,
    /// Most documents ever in verification at once — the widest admission
    /// wave the worker pool formed.
    pub in_flight_high_water: u64,
    /// Claims across completed documents.
    pub claims: u64,
    /// Rows read by completed documents' fused scan passes.
    pub rows_scanned: u64,
    /// Cube tasks executed on behalf of completed documents.
    pub tasks_executed: u64,
    /// Cube requests resolved without a new execution (cross-claim merge,
    /// resident cache, or another document's single-flight).
    pub tasks_deduped: u64,
    /// Requests that blocked on another in-flight cube computation.
    pub singleflight_waits: u64,
    /// Fused row passes executed for completed documents.
    pub scan_passes: u64,
    /// Compressed storage blocks decoded by completed documents' scans.
    pub blocks_scanned: u64,
    /// Blocks bulk-applied from zone-map metadata without decoding.
    pub blocks_skipped: u64,
    /// Encoded payload bytes read by the decoded blocks.
    pub bytes_scanned: u64,
    /// Fixed scan partitions executed by completed documents' passes
    /// (charged once per pass; single-partition passes charge 0).
    pub partitions_scanned: u64,
    /// Partition-grid merges performed for completed documents.
    pub partition_merges: u64,
    /// Max distinct workers observed on any one partitioned pass across
    /// completed documents. A gauge — the only counter here that may
    /// legitimately vary run to run at a fixed corpus.
    pub partition_parallelism: u32,
    /// Cached grids patched forward over appended rows (instead of being
    /// recomputed by a full scan) on behalf of completed documents. 0
    /// until [`StreamingVerifier::append_rows`] grows the fact base.
    pub grids_patched: u64,
    /// Appended-tail rows read by those patch passes. After an append of
    /// `k` rows, re-verification costs `O(k)` here instead of re-scanning
    /// the corpus — the delta-gate's headline ratio.
    pub delta_rows_scanned: u64,
}

impl StreamStats {
    /// Average cube tasks served per fused row pass (0.0 when no pass ran).
    pub fn fused_tasks_per_pass(&self) -> f64 {
        if self.scan_passes == 0 {
            0.0
        } else {
            self.tasks_executed as f64 / self.scan_passes as f64
        }
    }

    /// Accepted documents whose tickets have settled, over every outcome
    /// bin. The service's accounting invariant is
    /// `settled() == submitted` at quiescence: every accepted document
    /// lands in exactly one bin, none is counted twice, none is lost.
    pub fn settled(&self) -> u64 {
        self.completed + self.failed + self.rejected + self.timed_out + self.cancelled
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    partial: AtomicU64,
    respawns: AtomicU64,
    poison_retries: AtomicU64,
    queue_depth_high_water: AtomicU64,
    in_flight_high_water: AtomicU64,
    claims: AtomicU64,
    rows_scanned: AtomicU64,
    tasks_executed: AtomicU64,
    tasks_deduped: AtomicU64,
    singleflight_waits: AtomicU64,
    scan_passes: AtomicU64,
    blocks_scanned: AtomicU64,
    blocks_skipped: AtomicU64,
    bytes_scanned: AtomicU64,
    partitions_scanned: AtomicU64,
    partition_merges: AtomicU64,
    partition_parallelism: AtomicU64,
    grids_patched: AtomicU64,
    delta_rows_scanned: AtomicU64,
}

struct Submission {
    doc: Document,
    cell: Arc<TicketCell>,
    /// Deadline + cancellation flag, shared with this document's ticket.
    ctrl: Arc<DocControl>,
    /// Per-wave verdict subscription, forwarded into the pipeline's
    /// [`ExecContext`] by the worker that drives this document.
    observer: Option<Arc<dyn ProgressObserver>>,
}

/// Options for one submission beyond the document itself. `Default` is
/// exactly the plain [`StreamingVerifier::submit`]: no deadline, lane 0,
/// no observer.
#[derive(Clone, Default)]
pub struct SubmitOptions {
    /// Abort verification at the first wave boundary past this instant
    /// and settle the ticket with a [`ReportStatus::TimedOut`] partial
    /// report. `None` = no deadline.
    pub deadline: Option<Instant>,
    /// Client lane for intake fairness. Documents of one lane stay FIFO
    /// relative to each other; distinct lanes are drained round-robin, so
    /// a flooding client delays its own backlog, not everyone's. Callers
    /// that never set this share lane 0 and see plain FIFO intake.
    pub lane: u64,
    /// Per-wave verdict subscription (see [`ProgressObserver`]): called on
    /// the driving worker at every completed evaluation wave. The settled
    /// report on the [`Ticket`] remains the authoritative result.
    pub observer: Option<Arc<dyn ProgressObserver>>,
}

impl fmt::Debug for SubmitOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubmitOptions")
            .field("deadline", &self.deadline)
            .field("lane", &self.lane)
            .field("observer", &self.observer.as_ref().map(|_| "…"))
            .finish()
    }
}

#[derive(Default)]
struct Intake {
    /// One FIFO per client lane, in lane-creation order. Invariant: no
    /// lane is ever empty — a lane drains away the moment its last queued
    /// submission leaves — so the round-robin scan never spins over dead
    /// lanes and a long-lived service does not accumulate per-client
    /// state.
    lanes: Vec<(u64, VecDeque<Submission>)>,
    /// Round-robin cursor: index into `lanes` of the next lane to serve.
    cursor: usize,
    /// Total queued submissions across all lanes.
    len: usize,
    /// No further submissions are accepted.
    closed: bool,
    /// Shutdown fast path: workers reject queued submissions instead of
    /// verifying them.
    rejecting: bool,
}

impl Intake {
    fn lane_len(&self, lane: u64) -> usize {
        self.lanes
            .iter()
            .find(|(id, _)| *id == lane)
            .map_or(0, |(_, q)| q.len())
    }

    fn push(&mut self, lane: u64, sub: Submission) {
        self.len += 1;
        match self.lanes.iter_mut().find(|(id, _)| *id == lane) {
            Some((_, queue)) => queue.push_back(sub),
            None => self.lanes.push((lane, VecDeque::from([sub]))),
        }
    }

    /// Pop the next submission, round-robin across client lanes. With a
    /// single lane this is plain FIFO — the in-process `submit` path —
    /// so the deterministic arrival order the dedup gates pin is
    /// unchanged.
    fn pop(&mut self) -> Option<Submission> {
        if self.lanes.is_empty() {
            return None;
        }
        if self.cursor >= self.lanes.len() {
            self.cursor = 0;
        }
        let (_, queue) = &mut self.lanes[self.cursor];
        let sub = queue.pop_front().expect("no lane is ever empty");
        self.len -= 1;
        if queue.is_empty() {
            // Removing at the cursor leaves it pointing at the next lane.
            self.lanes.remove(self.cursor);
        } else {
            self.cursor += 1;
        }
        if self.cursor >= self.lanes.len() {
            self.cursor = 0;
        }
        Some(sub)
    }

    /// Remove one specific queued submission (ticket cancellation).
    fn remove_cell(&mut self, cell: &Arc<TicketCell>) -> Option<Submission> {
        for li in 0..self.lanes.len() {
            let queue = &mut self.lanes[li].1;
            let Some(pos) = queue.iter().position(|s| Arc::ptr_eq(&s.cell, cell)) else {
                continue;
            };
            let sub = queue.remove(pos).expect("position is in range");
            self.len -= 1;
            if queue.is_empty() {
                self.lanes.remove(li);
                if self.cursor > li {
                    self.cursor -= 1;
                }
                if self.cursor >= self.lanes.len() {
                    self.cursor = 0;
                }
            }
            return Some(sub);
        }
        None
    }

    /// Drain every queued submission (shutdown paths), lane by lane.
    fn take_all(&mut self) -> Vec<Submission> {
        self.len = 0;
        self.cursor = 0;
        self.lanes.drain(..).flat_map(|(_, queue)| queue).collect()
    }

    /// Live lanes and their queued depths.
    fn depths(&self) -> Vec<(u64, usize)> {
        self.lanes.iter().map(|(id, q)| (*id, q.len())).collect()
    }
}

struct Shared {
    /// The current checker generation. Workers **pin** the `Arc` once per
    /// document, so a concurrent [`StreamingVerifier::append_rows`] (which
    /// swaps in a successor checker over the grown database) never moves
    /// the fact base under a document mid-verification: every report is
    /// evaluated against exactly one database snapshot. The lock is held
    /// only for the pin (a clone) or the swap — never across verification.
    checker: RwLock<Arc<AggChecker>>,
    scheduler: CubeScheduler,
    intake: Mutex<Intake>,
    /// Wakes submitters blocked on a full queue ([`IntakePolicy::Block`]).
    space: Condvar,
    capacity: usize,
    /// Per-lane queue cap ([`StreamConfig::lane_capacity`]); 0 = none.
    lane_capacity: usize,
    policy: IntakePolicy,
    /// Lock-free mirrors of the intake state, readable from
    /// `help_until`'s recall predicate without taking the intake lock.
    queue_len: AtomicUsize,
    in_flight: AtomicUsize,
    closed: AtomicBool,
    counters: Counters,
}

impl Shared {
    /// Pin the current checker generation (see the field docs).
    fn checker_arc(&self) -> Arc<AggChecker> {
        self.checker
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Should a parked helper return to the intake? True when a document
    /// is waiting, or when a closed stream has fully drained (time to
    /// exit). Every transition that can flip this to true is followed by a
    /// [`CubeScheduler::kick`].
    fn recall(&self) -> bool {
        self.queue_len.load(Ordering::Acquire) > 0
            || (self.closed.load(Ordering::Acquire) && self.in_flight.load(Ordering::Acquire) == 0)
    }
}

/// Settles the ticket and releases the in-flight slot exactly once, even
/// if verification panics mid-document (the unwinding worker thread dies,
/// but the client's ticket resolves and the stream can still drain).
struct DocGuard<'a> {
    shared: &'a Shared,
    cell: Option<Arc<TicketCell>>,
}

impl DocGuard<'_> {
    fn finish(mut self, result: Result<VerificationReport, CheckerError>) {
        let c = &self.shared.counters;
        match &result {
            Ok(report) => {
                // Faults a document survived are visible however it ended.
                c.poison_retries
                    .fetch_add(report.stats.poison_retries, Ordering::Relaxed);
                match report.status {
                    ReportStatus::Complete => {
                        c.completed.fetch_add(1, Ordering::Relaxed);
                        // Throughput counters sum *completed* documents
                        // only, so they stay comparable against solo/batch
                        // runs of the same corpus (the dedup gates).
                        c.claims
                            .fetch_add(report.stats.claims as u64, Ordering::Relaxed);
                        c.rows_scanned
                            .fetch_add(report.stats.rows_scanned, Ordering::Relaxed);
                        c.tasks_executed
                            .fetch_add(report.stats.tasks_executed, Ordering::Relaxed);
                        c.tasks_deduped
                            .fetch_add(report.stats.tasks_deduped, Ordering::Relaxed);
                        c.singleflight_waits
                            .fetch_add(report.stats.singleflight_waits, Ordering::Relaxed);
                        c.scan_passes
                            .fetch_add(report.stats.scan_passes, Ordering::Relaxed);
                        c.blocks_scanned
                            .fetch_add(report.stats.blocks_scanned, Ordering::Relaxed);
                        c.blocks_skipped
                            .fetch_add(report.stats.blocks_skipped, Ordering::Relaxed);
                        c.bytes_scanned
                            .fetch_add(report.stats.bytes_scanned, Ordering::Relaxed);
                        c.partitions_scanned
                            .fetch_add(report.stats.partitions_scanned, Ordering::Relaxed);
                        c.partition_merges
                            .fetch_add(report.stats.partition_merges, Ordering::Relaxed);
                        c.grids_patched
                            .fetch_add(report.stats.grids_patched, Ordering::Relaxed);
                        c.delta_rows_scanned
                            .fetch_add(report.stats.delta_rows_scanned, Ordering::Relaxed);
                        c.partition_parallelism.fetch_max(
                            report.stats.partition_parallelism as u64,
                            Ordering::Relaxed,
                        );
                    }
                    ReportStatus::TimedOut => {
                        c.timed_out.fetch_add(1, Ordering::Relaxed);
                        c.partial.fetch_add(1, Ordering::Relaxed);
                    }
                    ReportStatus::Cancelled => {
                        c.cancelled.fetch_add(1, Ordering::Relaxed);
                        c.partial.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                c.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.cell.take().expect("unsettled").settle(result);
        // Drop runs next and releases the in-flight slot.
    }
}

impl Drop for DocGuard<'_> {
    fn drop(&mut self) {
        if let Some(cell) = self.cell.take() {
            self.shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            cell.settle(Err(CheckerError::Stream(
                "verification worker panicked with the document in flight".into(),
            )));
        }
        if self.shared.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Possibly the last in-flight document of a closing stream —
            // and in any case a recall-state change parked peers must see.
            self.shared.scheduler.kick();
        }
    }
}

/// Close the intake and settle every still-queued ticket with
/// [`CheckerError::Stream`]. Run by the supervisor once the last worker
/// is gone: a pool that died entirely (every worker panicked past the
/// respawn budget) must not leave `Ticket::wait` blocking forever or
/// admit submissions nobody will ever verify. On a normal drained
/// shutdown the queue is already empty, so this is a no-op beyond the
/// flag writes.
fn dead_pool_drain(shared: &Shared) {
    let drained = {
        let mut intake = lock(&shared.intake);
        intake.closed = true;
        intake.rejecting = true;
        intake.take_all()
    };
    shared.closed.store(true, Ordering::Release);
    shared.queue_len.store(0, Ordering::Release);
    for sub in drained {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        sub.cell.settle(Err(CheckerError::Stream(
            "stream worker pool exited with the document still queued".into(),
        )));
    }
    shared.space.notify_all();
    shared.scheduler.kick();
}

/// One worker's exit note to the supervisor — sent from a drop guard so a
/// panic unwind reports just like a normal return.
struct ExitNote {
    id: usize,
    panicked: bool,
}

struct ExitNotifier {
    id: usize,
    tx: mpsc::Sender<ExitNote>,
}

impl Drop for ExitNotifier {
    fn drop(&mut self) {
        let _ = self.tx.send(ExitNote {
            id: self.id,
            panicked: std::thread::panicking(),
        });
    }
}

fn spawn_worker(shared: Arc<Shared>, id: usize, tx: mpsc::Sender<ExitNote>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("agg-stream-{id}"))
        .spawn(move || {
            // Dropped last (declared first): per-document guards settle
            // their own ticket before the exit note goes out on an unwind.
            let _exit = ExitNotifier { id, tx };
            worker_loop(&shared);
        })
        .expect("spawn streaming worker")
}

/// The worker supervisor: joins exited workers, replaces panicked ones
/// while the [`StreamConfig::max_respawns`] budget lasts, and — once the
/// last worker is gone — runs [`dead_pool_drain`] so no queued ticket
/// ever hangs. Normal worker exits (drained shutdown) are never
/// "respawned": only a panic spends budget.
fn supervise(
    shared: Arc<Shared>,
    mut workers: HashMap<usize, JoinHandle<()>>,
    rx: mpsc::Receiver<ExitNote>,
    tx: mpsc::Sender<ExitNote>,
    max_respawns: usize,
) {
    let mut live = workers.len();
    let mut next_id = workers.len();
    let mut respawned = 0usize;
    while live > 0 {
        // The supervisor holds its own sender, so the channel cannot
        // disconnect while notes are still owed.
        let Ok(note) = rx.recv() else {
            break;
        };
        if let Some(handle) = workers.remove(&note.id) {
            let _ = handle.join();
        }
        if note.panicked && respawned < max_respawns {
            respawned += 1;
            shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
            workers.insert(next_id, spawn_worker(shared.clone(), next_id, tx.clone()));
            next_id += 1;
        } else {
            live -= 1;
        }
    }
    dead_pool_drain(&shared);
}

/// One long-lived worker: alternate between driving intake documents and
/// helping drain other documents' fused scan passes.
fn worker_loop(shared: &Shared) {
    let arena = GridArena::new();
    loop {
        let sub = {
            let mut intake = lock(&shared.intake);
            loop {
                if let Some(sub) = intake.pop() {
                    shared.queue_len.store(intake.len, Ordering::Release);
                    // A slot freed: admit one blocked submitter.
                    shared.space.notify_one();
                    if intake.rejecting {
                        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        sub.cell.settle(Err(CheckerError::Stream(
                            "stream dropped with the document still queued".into(),
                        )));
                        continue;
                    }
                    let now = shared.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
                    shared
                        .counters
                        .in_flight_high_water
                        .fetch_max(now as u64, Ordering::Relaxed);
                    break Some(sub);
                }
                if intake.closed && shared.in_flight.load(Ordering::Acquire) == 0 {
                    break None;
                }
                // Nothing to verify: park on the scheduler and drain other
                // documents' passes until a kick announces new intake (or
                // the drained shutdown).
                drop(intake);
                shared
                    .scheduler
                    .help_until(Some(&arena), || shared.recall());
                intake = lock(&shared.intake);
            }
        };
        let Some(sub) = sub else {
            // Closed and drained: wake siblings so they observe it too.
            shared.scheduler.kick();
            return;
        };
        let Submission {
            doc,
            cell,
            ctrl,
            observer,
        } = sub;
        let guard = DocGuard {
            shared,
            cell: Some(cell),
        };
        // Pin one checker generation for the whole document: a concurrent
        // append swaps the service's checker, but this document keeps its
        // database snapshot (and its watermark) start to finish.
        let checker = shared.checker_arc();
        let result = if let Some(status) = ctrl.should_abort() {
            // Cancelled or expired while queued: settle without touching
            // the evaluation substrate at all (no waves, no scans).
            Ok(checker.unverified_report(&doc, status))
        } else {
            let ctx = ExecContext {
                arena: Some(&arena),
                scheduler: Some(&shared.scheduler),
                // The pool provides the parallelism; per-document fan-out
                // would only oversubscribe the machine (same as batch
                // workers).
                threads: 1,
                // Canonical bundling keeps the executed-scan set — and
                // therefore `scan_passes`/`rows_scanned` — independent of
                // worker count and arrival interleaving (the CI dedup
                // gate's streaming variants).
                bundling: TaskBundling::Canonical,
                fuse: checker.config().fuse_scans,
                partition_blocks: checker.config().partition_blocks,
                ctrl: Some(&ctrl),
                observer: observer.as_deref(),
            };
            checker.check_document_with(&doc, &ctx)
        };
        guard.finish(result);
    }
}

/// A long-lived streaming verification service over one shared database
/// (see the [module docs](self) for the execution model, determinism
/// contract, and shutdown semantics).
pub struct StreamingVerifier {
    shared: Arc<Shared>,
    /// Joins the whole pool: the supervisor owns every worker handle
    /// (including respawns) and exits only after the last one is gone.
    /// `None` once shut down via [`StreamingVerifier::into_checker`].
    supervisor: Option<JoinHandle<()>>,
    worker_count: usize,
}

impl StreamingVerifier {
    /// Start a service over a database: builds the checker (catalog, cost
    /// model, sharded cache) and spawns the worker pool.
    pub fn new(
        db: Database,
        config: CheckerConfig,
        stream: StreamConfig,
    ) -> Result<StreamingVerifier, CheckerError> {
        StreamingVerifier::from_checker(AggChecker::new(db, config)?, stream)
    }

    /// Start a service over an existing checker (shares its warmed cache).
    pub fn from_checker(
        checker: AggChecker,
        stream: StreamConfig,
    ) -> Result<StreamingVerifier, CheckerError> {
        stream.validate().map_err(CheckerError::Config)?;
        let workers = if stream.workers == 0 {
            checker.config().threads
        } else {
            stream.workers
        }
        .max(1);
        let shared = Arc::new(Shared {
            checker: RwLock::new(Arc::new(checker)),
            scheduler: CubeScheduler::new(),
            intake: Mutex::new(Intake::default()),
            space: Condvar::new(),
            capacity: stream.intake_capacity,
            lane_capacity: stream.lane_capacity,
            policy: stream.policy,
            queue_len: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let (tx, rx) = mpsc::channel();
        let handles: HashMap<usize, JoinHandle<()>> = (0..workers)
            .map(|i| (i, spawn_worker(shared.clone(), i, tx.clone())))
            .collect();
        let supervisor = {
            let shared = shared.clone();
            let max_respawns = stream.max_respawns;
            std::thread::Builder::new()
                .name("agg-stream-supervisor".into())
                .spawn(move || supervise(shared, handles, rx, tx, max_respawns))
                .expect("spawn streaming supervisor")
        };
        Ok(StreamingVerifier {
            shared,
            supervisor: Some(supervisor),
            worker_count: workers,
        })
    }

    /// The current checker generation (database, catalog, cache
    /// accessors). [`append_rows`](StreamingVerifier::append_rows)
    /// replaces the service's checker with a successor over the grown
    /// database; a handle obtained here keeps the snapshot it was taken
    /// at, exactly like an in-flight document.
    pub fn checker(&self) -> Arc<AggChecker> {
        self.shared.checker_arc()
    }

    /// Append rows to a table of the live service's database and make
    /// them visible to every **subsequently admitted** document. The
    /// fact base grows mid-stream without a restart: a successor checker
    /// (rebuilt catalog and cost model over the appended corpus, **same
    /// shared cache**) is swapped in atomically, while documents already
    /// in flight keep the snapshot they pinned at admission. Because the
    /// cache is watermark-aware, re-verifying a document after an append
    /// patches the resident grids over just the appended tail instead of
    /// re-scanning the corpus — the savings surface in
    /// [`StreamStats::grids_patched`] / [`StreamStats::delta_rows_scanned`].
    pub fn append_rows(
        &self,
        table: &str,
        rows: &[Vec<agg_relational::Value>],
    ) -> Result<usize, CheckerError> {
        let mut current = self
            .shared
            .checker
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (next, appended) = current.with_appended(table, rows)?;
        *current = Arc::new(next);
        Ok(appended)
    }

    /// Size of the worker pool as configured. The live pool can
    /// transiently dip below this while the supervisor replaces a
    /// panicked worker, or permanently once the respawn budget is spent.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Parse and submit a text document (HTML subset or plain text).
    pub fn submit_text(&self, text: &str) -> Result<Ticket, SubmitError> {
        self.submit_text_with_deadline(text, None)
    }

    /// [`submit_text`](StreamingVerifier::submit_text) with a per-document
    /// deadline (see
    /// [`submit_with_deadline`](StreamingVerifier::submit_with_deadline)).
    pub fn submit_text_with_deadline(
        &self,
        text: &str,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        // Cheap pre-check before paying for the parse: under overload —
        // exactly when `Reject` matters — a shedding caller should not
        // parse a whole article just to be turned away. The lock-free
        // reads can go stale either way, but [`StreamingVerifier::submit`]
        // re-checks authoritatively under the intake lock.
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(SubmitError::Closed);
        }
        if self.shared.policy == IntakePolicy::Reject
            && self.shared.queue_len.load(Ordering::Acquire) >= self.shared.capacity
        {
            return Err(SubmitError::Full);
        }
        self.submit_with_deadline(parse_document(text), deadline)
    }

    /// Parse and submit a text document with full [`SubmitOptions`]
    /// (deadline, client lane, per-wave observer) — the path network
    /// front-ends use. Applies the same cheap overload pre-check as
    /// [`submit_text_with_deadline`](StreamingVerifier::submit_text_with_deadline).
    pub fn submit_text_with(&self, text: &str, opts: SubmitOptions) -> Result<Ticket, SubmitError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(SubmitError::Closed);
        }
        if self.shared.policy == IntakePolicy::Reject
            && self.shared.queue_len.load(Ordering::Acquire) >= self.shared.capacity
        {
            return Err(SubmitError::Full);
        }
        self.submit_with(parse_document(text), opts)
    }

    /// Submit a parsed document for verification. Returns immediately with
    /// a [`Ticket`] unless the queue is full under [`IntakePolicy::Block`],
    /// in which case the call blocks until a slot frees (or the stream
    /// closes). Safe to call from any number of threads.
    pub fn submit(&self, doc: Document) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(doc, None)
    }

    /// [`submit`](StreamingVerifier::submit) with a per-document deadline.
    /// If verification has not finished by `deadline`, it aborts at the
    /// next wave boundary and the ticket settles with a
    /// [`ReportStatus::TimedOut`] **partial** report — verdicts that
    /// settled before the deadline are kept, the rest come back
    /// [`Verdict::Unverified`](crate::pipeline::Verdict::Unverified) —
    /// never an error, never a hang. `None` = no deadline.
    pub fn submit_with_deadline(
        &self,
        doc: Document,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        self.submit_with(
            doc,
            SubmitOptions {
                deadline,
                ..SubmitOptions::default()
            },
        )
    }

    /// The fully general submission path: deadline, client lane, and
    /// per-wave verdict observer in one [`SubmitOptions`]. All other
    /// `submit*` methods delegate here.
    pub fn submit_with(&self, doc: Document, opts: SubmitOptions) -> Result<Ticket, SubmitError> {
        let SubmitOptions {
            deadline,
            lane,
            observer,
        } = opts;
        let cell = Arc::new(TicketCell::new());
        let ctrl = Arc::new(DocControl::new(deadline));
        {
            let mut intake = lock(&self.shared.intake);
            loop {
                if intake.closed {
                    return Err(SubmitError::Closed);
                }
                let lane_full = self.shared.lane_capacity > 0
                    && intake.lane_len(lane) >= self.shared.lane_capacity;
                if intake.len < self.shared.capacity && !lane_full {
                    break;
                }
                match self.shared.policy {
                    IntakePolicy::Reject => return Err(SubmitError::Full),
                    IntakePolicy::Block => {
                        intake = self
                            .shared
                            .space
                            .wait(intake)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
            intake.push(
                lane,
                Submission {
                    doc,
                    cell: cell.clone(),
                    ctrl: ctrl.clone(),
                    observer,
                },
            );
            let depth = intake.len;
            self.shared.queue_len.store(depth, Ordering::Release);
            self.shared
                .counters
                .queue_depth_high_water
                .fetch_max(depth as u64, Ordering::Relaxed);
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
        }
        // Recall a parked worker for the new document.
        self.shared.scheduler.kick();
        Ok(Ticket {
            cell,
            ctrl,
            shared: Arc::downgrade(&self.shared),
        })
    }

    /// Submit several documents in **one admission**: the whole batch
    /// enters the intake under a single lock hold and a single worker
    /// recall, so with free workers the batch's first evaluation waves
    /// form together and their same-scope cubes coalesce into shared
    /// fused passes (`run_requests`) instead of meeting only at the
    /// single-flight cache. Every document shares `opts`' deadline, lane,
    /// and observer; each gets its own [`Ticket`] (returned in input
    /// order).
    ///
    /// The batch is admitted atomically — all or none. It must fit the
    /// free capacity (and the lane cap, if configured): under
    /// [`IntakePolicy::Reject`] an oversized batch fails with
    /// [`SubmitError::Full`]; under [`IntakePolicy::Block`] the call
    /// waits until the whole batch fits, or fails with
    /// [`SubmitError::Full`] if it can *never* fit (more documents than
    /// `intake_capacity`).
    pub fn submit_batch(
        &self,
        docs: Vec<Document>,
        opts: SubmitOptions,
    ) -> Result<Vec<Ticket>, SubmitError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let n = docs.len();
        if n > self.shared.capacity
            || (self.shared.lane_capacity > 0 && n > self.shared.lane_capacity)
        {
            return Err(SubmitError::Full);
        }
        let mut tickets = Vec::with_capacity(n);
        {
            let mut intake = lock(&self.shared.intake);
            loop {
                if intake.closed {
                    return Err(SubmitError::Closed);
                }
                let lane_room = self.shared.lane_capacity == 0
                    || intake.lane_len(opts.lane) + n <= self.shared.lane_capacity;
                if intake.len + n <= self.shared.capacity && lane_room {
                    break;
                }
                match self.shared.policy {
                    IntakePolicy::Reject => return Err(SubmitError::Full),
                    IntakePolicy::Block => {
                        intake = self
                            .shared
                            .space
                            .wait(intake)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
            for doc in docs {
                let cell = Arc::new(TicketCell::new());
                let ctrl = Arc::new(DocControl::new(opts.deadline));
                intake.push(
                    opts.lane,
                    Submission {
                        doc,
                        cell: cell.clone(),
                        ctrl: ctrl.clone(),
                        observer: opts.observer.clone(),
                    },
                );
                tickets.push(Ticket {
                    cell,
                    ctrl,
                    shared: Arc::downgrade(&self.shared),
                });
            }
            let depth = intake.len;
            self.shared.queue_len.store(depth, Ordering::Release);
            self.shared
                .counters
                .queue_depth_high_water
                .fetch_max(depth as u64, Ordering::Relaxed);
            self.shared
                .counters
                .submitted
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        // One recall for the whole batch: parked workers wake together and
        // pull adjacent documents of the same admission wave.
        self.shared.scheduler.kick();
        Ok(tickets)
    }

    /// Stop accepting submissions. Everything already queued is still
    /// verified (`close` **drains**); blocked submitters wake with
    /// [`SubmitError::Closed`]. Idempotent.
    pub fn close(&self) {
        lock(&self.shared.intake).closed = true;
        self.shared.closed.store(true, Ordering::Release);
        self.shared.space.notify_all();
        self.shared.scheduler.kick();
    }

    /// Documents queued but not yet picked up.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_len.load(Ordering::Acquire)
    }

    /// Queued depth of every live client lane as `(lane, depth)` pairs,
    /// in lane-creation order. Lanes appear on first submission and
    /// vanish once drained; the depths sum to
    /// [`queue_depth`](StreamingVerifier::queue_depth). Network
    /// front-ends export these as fairness telemetry (`docs/operations.md`).
    pub fn lane_depths(&self) -> Vec<(u64, usize)> {
        lock(&self.shared.intake).depths()
    }

    /// Documents currently being verified.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Snapshot the service's counters.
    pub fn stats(&self) -> StreamStats {
        let c = &self.shared.counters;
        StreamStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            partial: c.partial.load(Ordering::Relaxed),
            respawns: c.respawns.load(Ordering::Relaxed),
            poison_retries: c.poison_retries.load(Ordering::Relaxed),
            queue_depth_high_water: c.queue_depth_high_water.load(Ordering::Relaxed),
            in_flight_high_water: c.in_flight_high_water.load(Ordering::Relaxed),
            claims: c.claims.load(Ordering::Relaxed),
            rows_scanned: c.rows_scanned.load(Ordering::Relaxed),
            tasks_executed: c.tasks_executed.load(Ordering::Relaxed),
            tasks_deduped: c.tasks_deduped.load(Ordering::Relaxed),
            singleflight_waits: c.singleflight_waits.load(Ordering::Relaxed),
            scan_passes: c.scan_passes.load(Ordering::Relaxed),
            blocks_scanned: c.blocks_scanned.load(Ordering::Relaxed),
            blocks_skipped: c.blocks_skipped.load(Ordering::Relaxed),
            bytes_scanned: c.bytes_scanned.load(Ordering::Relaxed),
            partitions_scanned: c.partitions_scanned.load(Ordering::Relaxed),
            partition_merges: c.partition_merges.load(Ordering::Relaxed),
            partition_parallelism: c.partition_parallelism.load(Ordering::Relaxed) as u32,
            grids_patched: c.grids_patched.load(Ordering::Relaxed),
            delta_rows_scanned: c.delta_rows_scanned.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: close the intake, verify everything queued, join
    /// the pool (via its supervisor), and recover the checker with its
    /// warmed cache.
    pub fn into_checker(mut self) -> AggChecker {
        self.close();
        if let Some(handle) = self.supervisor.take() {
            // The supervisor joins every worker — panicked workers
            // already settled their tickets via `DocGuard`.
            let _ = handle.join();
        }
        // `supervisor` is now `None`, so `drop(self)` below is a no-op,
        // and the joined threads' `Shared` clones are gone: ours is the
        // last (outstanding `Ticket`s only hold weak references).
        let shared = self.shared.clone();
        drop(self);
        let checker = match Arc::try_unwrap(shared) {
            Ok(shared) => shared
                .checker
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            Err(_) => unreachable!("joined pool holds no Shared references"),
        };
        // A caller may still hold a `checker()` handle; fall back to a
        // rebuilt twin over the same database and shared cache.
        Arc::try_unwrap(checker).unwrap_or_else(|arc| arc.fork())
    }
}

impl Drop for StreamingVerifier {
    /// Fast shutdown: in-flight documents finish, queued documents are
    /// rejected (tickets settle with [`CheckerError::Stream`]), the pool
    /// joins. Use [`StreamingVerifier::close`] +
    /// [`StreamingVerifier::into_checker`] to drain instead.
    fn drop(&mut self) {
        let Some(handle) = self.supervisor.take() else {
            return; // already shut down via into_checker
        };
        {
            let mut intake = lock(&self.shared.intake);
            intake.closed = true;
            intake.rejecting = true;
        }
        self.shared.closed.store(true, Ordering::Release);
        self.shared.space.notify_all();
        self.shared.scheduler.kick();
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AggChecker;
    use agg_relational::{Table, Value};

    /// Figure 2's database (same fixture as the pipeline tests).
    fn nfl_db() -> Database {
        let mut t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                        "2".into(),
                        "6".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "substance abuse".into(),
                        "personal conduct".into(),
                        "deflategate".into(),
                        "bounty program".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                        Value::Int(2013),
                        Value::Int(2012),
                    ],
                ),
            ],
        )
        .unwrap();
        t.schema.columns[0].description =
            Some("games suspended; indef means an indefinite lifetime ban".into());
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    const ARTICLE: &str = r#"
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Indefinite suspensions</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;

    const WRONG: &str = r#"
<h1>Indefinite suspensions</h1>
<p>There were seven previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;

    fn solo_fingerprint(db: &Database, cfg: &CheckerConfig, text: &str) -> String {
        let checker = AggChecker::new(db.clone(), cfg.clone()).unwrap();
        checker.check_text(text).unwrap().content_fingerprint()
    }

    /// The determinism contract at unit scale: whatever the worker count,
    /// streamed reports are bit-identical to fresh solo runs, and the
    /// totals of `rows_scanned`/`scan_passes` are exactly worker-count
    /// independent (single-flight + canonical bundling + atomic wave
    /// probes — the invariant the CI dedup gate checks at bench scale).
    #[test]
    fn streaming_single_flight_keeps_rows_and_passes_exact() {
        let db = nfl_db();
        let texts = [
            ARTICLE, WRONG, ARTICLE, WRONG, ARTICLE, ARTICLE, WRONG, ARTICLE,
        ];
        let cfg = CheckerConfig::default();
        let expected: Vec<String> = texts
            .iter()
            .map(|t| solo_fingerprint(&db, &cfg, t))
            .collect();
        let run = |workers: usize| {
            let stream_cfg = StreamConfig {
                workers,
                ..StreamConfig::default()
            };
            let service = StreamingVerifier::new(db.clone(), cfg.clone(), stream_cfg).unwrap();
            assert_eq!(service.workers(), workers);
            let tickets: Vec<Ticket> = texts
                .iter()
                .map(|t| service.submit_text(t).unwrap())
                .collect();
            let reports: Vec<VerificationReport> =
                tickets.into_iter().map(|t| t.wait().unwrap()).collect();
            let stats = service.stats();
            assert_eq!(stats.completed, texts.len() as u64);
            assert_eq!(stats.failed, 0);
            assert_eq!(stats.rejected, 0);
            // Every accepted document is accounted for in exactly one bin.
            assert_eq!(stats.submitted, stats.settled());
            assert_eq!(stats.timed_out, 0);
            assert_eq!(stats.cancelled, 0);
            assert_eq!(stats.partial, 0);
            assert_eq!(stats.respawns, 0, "fault-free run respawns nothing");
            assert_eq!(stats.poison_retries, 0);
            // Stats reconcile with the reports they summed over.
            let rows: u64 = reports.iter().map(|r| r.stats.rows_scanned).sum();
            let passes: u64 = reports.iter().map(|r| r.stats.scan_passes).sum();
            assert_eq!(stats.rows_scanned, rows);
            assert_eq!(stats.scan_passes, passes);
            let checker = service.into_checker();
            assert_eq!(
                checker.cache().inflight_len(),
                0,
                "drained shutdown leaves no dangling flights"
            );
            let fps: Vec<String> = reports.iter().map(|r| r.content_fingerprint()).collect();
            (rows, passes, fps)
        };
        let (rows_1w, passes_1w, fps_1w) = run(1);
        assert!(rows_1w > 0 && passes_1w > 0);
        assert_eq!(fps_1w, expected, "streamed == solo at 1 worker");
        for workers in [2usize, 4, 8] {
            let (rows, passes, fps) = run(workers);
            assert_eq!(rows, rows_1w, "workers={workers}: rows_scanned drifted");
            assert_eq!(
                passes, passes_1w,
                "workers={workers}: pass formation drifted"
            );
            assert_eq!(
                fps, expected,
                "workers={workers}: reports must be bit-identical"
            );
        }
    }

    /// Cross-document sharing through the canonical cache: streaming the
    /// same summary repeatedly must cost one document's scans — later
    /// in-flight documents ride the first one's fused passes (flight
    /// joins / resident hits), never re-scanning.
    #[test]
    fn later_documents_reuse_earlier_documents_passes() {
        let service =
            StreamingVerifier::new(nfl_db(), CheckerConfig::default(), StreamConfig::default())
                .unwrap();
        let first = service.submit_text(ARTICLE).unwrap().wait().unwrap();
        assert!(first.stats.rows_scanned > 0);
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| service.submit_text(ARTICLE).unwrap())
            .collect();
        for ticket in tickets {
            let report = ticket.wait().unwrap();
            assert_eq!(report.stats.rows_scanned, 0, "warm stream re-scans nothing");
            assert_eq!(report.content_fingerprint(), first.content_fingerprint());
        }
        let stats = service.stats();
        assert_eq!(stats.rows_scanned, first.stats.rows_scanned);
        assert!(stats.tasks_deduped > 0);
    }

    /// The 8-worker streaming stress test behind the CI release-job
    /// `single_flight` filter: four submitter threads race documents into
    /// the service while it drains, `close()` lands mid-stream, and every
    /// accepted document must still produce a report bit-identical to a
    /// fresh solo run — with no dangling single-flight entries afterwards.
    #[test]
    fn streaming_single_flight_stress_submit_while_draining() {
        let db = nfl_db();
        let cfg = CheckerConfig::default();
        let expected_ok = solo_fingerprint(&db, &cfg, ARTICLE);
        let expected_wrong = solo_fingerprint(&db, &cfg, WRONG);
        let service = StreamingVerifier::new(
            db,
            cfg,
            StreamConfig {
                workers: 8,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let submitters = 4usize;
        let per_thread = 8usize;
        // A pre-close batch accepted for certain, so the drain guarantee
        // is exercised even if the racing close wins every other submit.
        let mut outcomes: Vec<(bool, Result<Ticket, SubmitError>)> = (0..4)
            .map(|i| {
                let wrong = i % 2 == 0;
                let text = if wrong { WRONG } else { ARTICLE };
                (wrong, service.submit_text(text))
            })
            .collect();
        outcomes.extend(std::thread::scope(|scope| {
            let service = &service;
            let handles: Vec<_> = (0..submitters)
                .map(|t| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for i in 0..per_thread {
                            let wrong = (t + i) % 3 == 0;
                            let text = if wrong { WRONG } else { ARTICLE };
                            out.push((wrong, service.submit_text(text)));
                        }
                        out
                    })
                })
                .collect();
            // Mid-stream close: submissions racing past it error with
            // `Closed`; everything accepted before it still drains.
            service.close();
            let late = service.submit_text(ARTICLE);
            assert_eq!(late.unwrap_err(), SubmitError::Closed);
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        }));
        let mut accepted = 0u64;
        for (wrong, outcome) in outcomes {
            match outcome {
                Ok(ticket) => {
                    accepted += 1;
                    let report = ticket.wait().unwrap();
                    let expected = if wrong { &expected_wrong } else { &expected_ok };
                    assert_eq!(&report.content_fingerprint(), expected);
                }
                Err(e) => assert_eq!(e, SubmitError::Closed, "only the close can reject"),
            }
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, accepted);
        assert_eq!(stats.completed, accepted);
        assert_eq!(stats.rejected, 0, "close() drains, it never rejects");
        assert!(stats.in_flight_high_water >= 1);
        let checker = service.into_checker();
        assert_eq!(checker.cache().inflight_len(), 0);
    }

    /// Full-queue backpressure, `Block` policy: a capacity-1 intake admits
    /// a burst of submitters losslessly by blocking them, and the queue
    /// high-water mark proves the bound was honored.
    #[test]
    fn streaming_single_flight_backpressure_block_is_lossless() {
        let db = nfl_db();
        let service = StreamingVerifier::new(
            db.clone(),
            CheckerConfig::default(),
            StreamConfig {
                intake_capacity: 1,
                policy: IntakePolicy::Block,
                workers: 2,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let n = 12usize;
        let tickets: Vec<Ticket> = std::thread::scope(|scope| {
            let service = &service;
            let handles: Vec<_> = (0..n)
                .map(|_| scope.spawn(move || service.submit_text(ARTICLE).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expected = solo_fingerprint(&db, &CheckerConfig::default(), ARTICLE);
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().content_fingerprint(), expected);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, n as u64);
        assert_eq!(stats.completed, n as u64);
        assert_eq!(stats.queue_depth_high_water, 1, "the bound held");
    }

    /// Full-queue backpressure, `Reject` policy: once the intake is at
    /// capacity, `submit` fails fast with `Full` instead of blocking, and
    /// every *accepted* document still verifies.
    #[test]
    fn streaming_single_flight_backpressure_reject_fails_fast() {
        let db = nfl_db();
        let service = StreamingVerifier::new(
            db.clone(),
            CheckerConfig::default(),
            StreamConfig {
                intake_capacity: 1,
                policy: IntakePolicy::Reject,
                workers: 1,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        // One worker, capacity 1: a burst much faster than verification
        // must hit `Full`. (1000 sub-microsecond submissions vs
        // millisecond documents — the worker cannot keep up.)
        let mut tickets = Vec::new();
        let mut fulls = 0usize;
        for _ in 0..1000 {
            match service.submit_text(ARTICLE) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::Full) => fulls += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(fulls > 0, "a capacity-1 queue must reject under a burst");
        let expected = solo_fingerprint(&db, &CheckerConfig::default(), ARTICLE);
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().content_fingerprint(), expected);
        }
        assert_eq!(service.stats().rejected, 0, "policy rejects never enqueue");
        // After the drain there is room again.
        assert!(service.submit_text(ARTICLE).is_ok());
    }

    /// Dropping the service without closing rejects what is still queued
    /// (every ticket settles — none hangs) while in-flight documents
    /// finish normally.
    #[test]
    fn drop_rejects_queued_documents() {
        let service = StreamingVerifier::new(
            nfl_db(),
            CheckerConfig::default(),
            StreamConfig {
                workers: 1,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| service.submit_text(ARTICLE).unwrap())
            .collect();
        let stats_handle = service.shared.clone();
        drop(service);
        let mut oks = 0u64;
        let mut rejected = 0u64;
        for ticket in tickets {
            assert!(ticket.is_done(), "drop settles every ticket");
            match ticket.wait() {
                Ok(_) => oks += 1,
                Err(CheckerError::Stream(_)) => rejected += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(oks + rejected, 8);
        assert!(
            rejected >= 1,
            "a single worker cannot outrun an immediate drop of 8 queued docs"
        );
        let c = &stats_handle.counters;
        assert_eq!(c.completed.load(Ordering::Relaxed), oks);
        assert_eq!(c.rejected.load(Ordering::Relaxed), rejected);
    }

    /// Mid-stream appends: rows added through the live service become
    /// visible to documents admitted afterwards, while checker handles
    /// pinned earlier keep their snapshot. The post-append report is
    /// bit-identical to a cold solo run over the grown database.
    #[test]
    fn append_mid_stream_refreshes_subsequent_documents() {
        let fifth_ban = || {
            vec![
                Value::from("indef"),
                Value::from("gambling"),
                Value::Int(2015),
            ]
        };
        let service =
            StreamingVerifier::new(nfl_db(), CheckerConfig::default(), StreamConfig::default())
                .unwrap();
        let before = service.submit_text(ARTICLE).unwrap().wait().unwrap();
        assert_eq!(before.status, ReportStatus::Complete);
        let pinned = service.checker();
        let w0 = pinned.db().watermark();

        assert_eq!(
            service
                .append_rows("nflsuspensions", &[fifth_ban()])
                .unwrap(),
            1
        );
        // The pinned handle keeps its snapshot; the service moved on.
        assert_eq!(pinned.db().watermark(), w0);
        assert_eq!(service.checker().db().watermark(), w0 + 1);

        let after = service.submit_text(ARTICLE).unwrap().wait().unwrap();
        assert_ne!(
            after.content_fingerprint(),
            before.content_fingerprint(),
            "the fifth lifetime ban must be visible to new documents"
        );
        let mut db = nfl_db();
        db.append_rows("nflsuspensions", &[fifth_ban()]).unwrap();
        assert_eq!(
            after.content_fingerprint(),
            solo_fingerprint(&db, &CheckerConfig::default(), ARTICLE),
            "post-append report == cold solo run over the grown database"
        );
        let stats = service.stats();
        assert_eq!(stats.completed, 2);
        // `pinned` is still held, so shutdown recovers a rebuilt twin over
        // the same database generation and shared cache.
        let checker = service.into_checker();
        assert_eq!(checker.db().watermark(), w0 + 1);
        assert!(checker.cache().stats().entries() > 0);
    }

    /// A warmed checker survives the round trip through a stream and keeps
    /// its cache (the Scrutinizer redeployment shape: service restarts
    /// must not re-scan the fact base).
    #[test]
    fn into_checker_keeps_warmed_cache() {
        let checker = AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap();
        checker.check_text(ARTICLE).unwrap();
        let entries = checker.cache().stats().entries();
        assert!(entries > 0);
        let service = StreamingVerifier::from_checker(checker, StreamConfig::default()).unwrap();
        let report = service.submit_text(ARTICLE).unwrap().wait().unwrap();
        assert_eq!(report.stats.rows_scanned, 0, "served from the warm cache");
        let checker = service.into_checker();
        assert_eq!(checker.cache().stats().entries(), entries);
        // A closed-and-recovered service cannot accept more documents,
        // but the checker verifies directly.
        checker.check_text(WRONG).unwrap();
    }

    /// The dead-pool guarantee: once the supervisor sees the last worker
    /// gone (the all-workers-panicked-past-budget scenario — normal exits
    /// only happen on a drained queue), still-queued tickets settle with
    /// `CheckerError::Stream` instead of hanging `wait()` forever, and
    /// the intake closes so nothing new can be admitted unverifiable.
    #[test]
    fn dead_pool_drain_settles_queued_tickets() {
        let shared = Shared {
            checker: RwLock::new(Arc::new(
                AggChecker::new(nfl_db(), CheckerConfig::default()).unwrap(),
            )),
            scheduler: CubeScheduler::new(),
            intake: Mutex::new(Intake::default()),
            space: Condvar::new(),
            capacity: 8,
            lane_capacity: 0,
            policy: IntakePolicy::Block,
            queue_len: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            counters: Counters::default(),
        };
        let cell = Arc::new(TicketCell::new());
        let ctrl = Arc::new(DocControl::new(None));
        lock(&shared.intake).push(
            0,
            Submission {
                doc: parse_document(ARTICLE),
                cell: cell.clone(),
                ctrl: ctrl.clone(),
                observer: None,
            },
        );
        shared.queue_len.store(1, Ordering::Release);
        dead_pool_drain(&shared);
        assert!(!matches!(*lock(&cell.state), TicketState::Pending));
        let result = match std::mem::replace(&mut *lock(&cell.state), TicketState::Taken) {
            TicketState::Done(result) => *result,
            other => panic!("unsettled ticket: {other:?}"),
        };
        assert!(matches!(result, Err(CheckerError::Stream(_))));
        let intake = lock(&shared.intake);
        assert!(intake.closed && intake.rejecting && intake.len == 0);
        assert_eq!(shared.counters.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(shared.queue_len.load(Ordering::Acquire), 0);
    }

    /// A panicked worker spends respawn budget, the replacement keeps the
    /// service draining, and `respawns` records the replacement. The
    /// panic is forced by poisoning the ticket-independent path: we
    /// simulate it end-to-end in the chaos integration suite; here we
    /// verify the supervisor accounting machinery directly by observing a
    /// fault-free pool respawning nothing.
    #[test]
    fn supervisor_joins_cleanly_without_respawns() {
        let service = StreamingVerifier::new(
            nfl_db(),
            CheckerConfig::default(),
            StreamConfig {
                workers: 3,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        for _ in 0..4 {
            service.submit_text(ARTICLE).unwrap().wait().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.respawns, 0);
        assert_eq!(stats.completed, 4);
        // into_checker joins supervisor + workers; reaching here without
        // a hang is the assertion.
        let _ = service.into_checker();
    }

    /// An already-expired deadline settles as a `TimedOut` *partial*
    /// report — every claim `Unverified`, nothing scanned, the ticket
    /// never hangs, and the document lands in the `timed_out` bin.
    #[test]
    fn expired_deadline_settles_partial_report() {
        let db = nfl_db();
        let service =
            StreamingVerifier::new(db, CheckerConfig::default(), StreamConfig::default()).unwrap();
        let ticket = service
            .submit_text_with_deadline(ARTICLE, Some(Instant::now()))
            .unwrap();
        let report = ticket.wait().unwrap();
        assert_eq!(report.status, ReportStatus::TimedOut);
        assert!(report.status.is_partial());
        assert!(!report.claims.is_empty(), "claims are still detected");
        for claim in &report.claims {
            assert_eq!(claim.verdict, crate::pipeline::Verdict::Unverified);
            assert!(claim.top_queries.is_empty());
        }
        assert_eq!(report.stats.rows_scanned, 0, "expired docs never scan");
        let stats = service.stats();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.partial, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.submitted, stats.settled());
        // A generous deadline on the same service still completes fully.
        let ok = service
            .submit_text_with_deadline(
                ARTICLE,
                Some(Instant::now() + std::time::Duration::from_secs(60)),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(ok.status, ReportStatus::Complete);
        assert!(ok.claims.iter().all(|c| !c.top_queries.is_empty()));
    }

    /// Cancelling a still-queued submission de-queues it immediately:
    /// the ticket settles (from the cancelling thread) with a `Cancelled`
    /// partial report, and the worker never sees the document.
    #[test]
    fn cancel_dequeues_and_settles_immediately() {
        let service = StreamingVerifier::new(
            nfl_db(),
            CheckerConfig::default(),
            StreamConfig {
                workers: 1,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        // Fillers keep the single worker busy for several milliseconds,
        // so the cancel (microseconds later) beats the queue's tail.
        let fillers: Vec<Ticket> = (0..3)
            .map(|_| service.submit_text(ARTICLE).unwrap())
            .collect();
        let victim = service.submit_text(WRONG).unwrap();
        victim.cancel();
        assert!(victim.is_done(), "cancel settles a queued ticket in place");
        let report = victim.wait().unwrap();
        assert_eq!(report.status, ReportStatus::Cancelled);
        assert!(report
            .claims
            .iter()
            .all(|c| c.verdict == crate::pipeline::Verdict::Unverified));
        for t in fillers {
            let r = t.wait().unwrap();
            assert_eq!(r.status, ReportStatus::Complete, "siblings unaffected");
        }
        let stats = service.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.partial, 1);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.submitted, stats.settled());
        let checker = service.into_checker();
        assert_eq!(checker.cache().inflight_len(), 0);
    }

    /// Cancelling after the report settled is a no-op: the report stays
    /// complete and no `cancelled` bin is charged.
    #[test]
    fn cancel_after_completion_is_noop() {
        let service =
            StreamingVerifier::new(nfl_db(), CheckerConfig::default(), StreamConfig::default())
                .unwrap();
        let ticket = service.submit_text(ARTICLE).unwrap();
        while !ticket.is_done() {
            std::thread::yield_now();
        }
        ticket.cancel();
        let report = ticket.wait().unwrap();
        assert_eq!(report.status, ReportStatus::Complete);
        let stats = service.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.partial, 0);
    }

    #[test]
    fn invalid_stream_config_is_rejected() {
        let bad = StreamConfig {
            intake_capacity: 0,
            ..StreamConfig::default()
        };
        assert!(matches!(
            StreamingVerifier::new(nfl_db(), CheckerConfig::default(), bad),
            Err(CheckerError::Config(_))
        ));
    }

    /// A per-wave observer sees at least one wave, the final wave is
    /// flagged `last`, and its verdicts/probabilities agree with the
    /// settled report — observation never perturbs evaluation (the
    /// observed report stays bit-identical to solo).
    #[test]
    fn progress_observer_matches_settled_report() {
        use crate::pipeline::ClaimProgress;

        #[derive(Default)]
        struct Recorder {
            waves: Mutex<Vec<(usize, bool, Vec<ClaimProgress>)>>,
        }
        impl ProgressObserver for Recorder {
            fn wave_complete(&self, wave: usize, last: bool, claims: &[ClaimProgress]) {
                lock(&self.waves).push((wave, last, claims.to_vec()));
            }
        }

        let db = nfl_db();
        let cfg = CheckerConfig::default();
        let solo = solo_fingerprint(&db, &cfg, ARTICLE);
        let service = StreamingVerifier::new(db, cfg, StreamConfig::default()).unwrap();
        let recorder = Arc::new(Recorder::default());
        let ticket = service
            .submit_text_with(
                ARTICLE,
                SubmitOptions {
                    observer: Some(recorder.clone()),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        let report = ticket.wait().unwrap();
        assert_eq!(report.content_fingerprint(), solo, "observation is free");

        let waves = lock(&recorder.waves);
        assert!(!waves.is_empty(), "at least one wave is observed");
        // Waves arrive in order, exactly one is last, and it is the final one.
        for (i, (wave, _, _)) in waves.iter().enumerate() {
            assert_eq!(*wave, i + 1);
        }
        assert_eq!(waves.iter().filter(|(_, last, _)| *last).count(), 1);
        let (wave, last, progress) = waves.last().unwrap();
        assert!(*last);
        assert_eq!(*wave, report.stats.em_iterations);
        assert_eq!(progress.len(), report.claims.len());
        for (p, c) in progress.iter().zip(&report.claims) {
            assert_eq!(p.claim, c.mention.id);
            assert_eq!(p.verdict, c.verdict);
            assert_eq!(p.claimed_value.to_bits(), c.claimed_value.to_bits());
            assert_eq!(
                p.correctness_probability.to_bits(),
                c.correctness_probability.to_bits()
            );
        }
    }

    /// Observer that blocks the driving worker at every wave boundary
    /// until released — pins a 1-worker pool deterministically so
    /// intake-order tests are race-free.
    struct GateObserver {
        open: Mutex<bool>,
        cv: Condvar,
    }

    impl GateObserver {
        fn new() -> Arc<GateObserver> {
            Arc::new(GateObserver {
                open: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn release(&self) {
            *lock(&self.open) = true;
            self.cv.notify_all();
        }
    }

    impl ProgressObserver for GateObserver {
        fn wave_complete(&self, _: usize, _: bool, _: &[crate::pipeline::ClaimProgress]) {
            let mut open = lock(&self.open);
            while !*open {
                open = self
                    .cv
                    .wait(open)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    /// Observer that logs a tag when a document's final wave completes —
    /// records the order the pool actually served documents in.
    struct TagObserver {
        name: &'static str,
        log: Arc<Mutex<Vec<&'static str>>>,
    }

    impl ProgressObserver for TagObserver {
        fn wave_complete(&self, _: usize, last: bool, _: &[crate::pipeline::ClaimProgress]) {
            if last {
                lock(&self.log).push(self.name);
            }
        }
    }

    /// Round-robin lane fairness: with one worker and a flooded lane, the
    /// light client's single document is served right after the flooder's
    /// *first* document — bounded skew — instead of behind its whole
    /// backlog. Deterministic: a gate observer pins the worker inside the
    /// first document until every submission is queued.
    #[test]
    fn lanes_drain_round_robin() {
        let service = StreamingVerifier::new(
            nfl_db(),
            CheckerConfig::default(),
            StreamConfig {
                workers: 1,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let gate = GateObserver::new();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::default();
        let tag = |name| {
            Some(Arc::new(TagObserver {
                name,
                log: log.clone(),
            }) as Arc<dyn ProgressObserver>)
        };
        let stall = service
            .submit_text_with(
                ARTICLE,
                SubmitOptions {
                    observer: Some(gate.clone()),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        // Pinned worker: wait until the stall document is in flight, so
        // every queue-depth observation below is exact.
        while service.in_flight() == 0 {
            std::thread::yield_now();
        }
        let flood: Vec<Ticket> = (0..6)
            .map(|_| {
                service
                    .submit_text_with(
                        WRONG,
                        SubmitOptions {
                            lane: 1,
                            observer: tag("flood"),
                            ..SubmitOptions::default()
                        },
                    )
                    .unwrap()
            })
            .collect();
        let light = service
            .submit_text_with(
                ARTICLE,
                SubmitOptions {
                    lane: 2,
                    observer: tag("light"),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        assert_eq!(service.queue_depth(), 7);
        let depths = service.lane_depths();
        assert!(
            depths.contains(&(1, 6)) && depths.contains(&(2, 1)),
            "{depths:?}"
        );
        gate.release();
        stall.wait().unwrap();
        light.wait().unwrap();
        for t in flood {
            t.wait().unwrap();
        }
        // The worker served: flood #1 (round-robin start), then the light
        // lane, then the rest of the flood — skew bounded by one document.
        let order = lock(&log).clone();
        assert_eq!(
            order,
            vec!["flood", "light", "flood", "flood", "flood", "flood", "flood"],
        );
        assert!(service.lane_depths().is_empty(), "drained lanes are pruned");
        let stats = service.stats();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.submitted, stats.settled());
    }

    /// A per-lane cap (`lane_capacity`) rejects the flooder's overflow
    /// while other lanes still have room. Deterministic via the gate: the
    /// single worker is pinned, so queue depths cannot drain mid-test.
    #[test]
    fn lane_capacity_bounds_one_client() {
        let service = StreamingVerifier::new(
            nfl_db(),
            CheckerConfig::default(),
            StreamConfig {
                workers: 1,
                intake_capacity: 16,
                lane_capacity: 2,
                policy: IntakePolicy::Reject,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let gate = GateObserver::new();
        let stall = service
            .submit_text_with(
                ARTICLE,
                SubmitOptions {
                    observer: Some(gate.clone()),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        // Pinned worker: wait until it has the stall document in flight,
        // so nothing below can drain.
        while service.in_flight() == 0 {
            std::thread::yield_now();
        }
        let lane = |l| SubmitOptions {
            lane: l,
            ..SubmitOptions::default()
        };
        let mut accepted = Vec::new();
        for i in 0..4 {
            match service.submit_with(parse_document(WRONG), lane(1)) {
                Ok(t) => {
                    assert!(i < 2, "lane cap is 2");
                    accepted.push(t);
                }
                Err(SubmitError::Full) => assert!(i >= 2, "under-cap submit rejected"),
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(accepted.len(), 2);
        // The capped lane being full must not block other lanes.
        accepted.push(
            service
                .submit_with(parse_document(ARTICLE), lane(2))
                .unwrap(),
        );
        gate.release();
        stall.wait().unwrap();
        for t in accepted {
            t.wait().unwrap();
        }
    }

    /// `submit_batch` admits everything under one lock hold and one kick;
    /// results and dedup counters stay identical to one-by-one admission.
    #[test]
    fn submit_batch_coalesces_admission() {
        let db = nfl_db();
        let cfg = CheckerConfig::default();
        let texts = [ARTICLE, WRONG, ARTICLE, WRONG];
        let expected: Vec<String> = texts
            .iter()
            .map(|t| solo_fingerprint(&db, &cfg, t))
            .collect();
        let service = StreamingVerifier::new(
            db,
            cfg,
            StreamConfig {
                workers: 4,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let docs: Vec<Document> = texts.iter().map(|t| parse_document(t)).collect();
        let tickets = service
            .submit_batch(docs, SubmitOptions::default())
            .unwrap();
        assert_eq!(tickets.len(), texts.len());
        for (ticket, want) in tickets.into_iter().zip(&expected) {
            assert_eq!(ticket.wait().unwrap().content_fingerprint(), *want);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, texts.len() as u64);
        assert_eq!(stats.completed, texts.len() as u64);
        // An oversized batch can never fit and fails fast either way.
        let service2 = StreamingVerifier::new(
            nfl_db(),
            CheckerConfig::default(),
            StreamConfig {
                intake_capacity: 2,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let too_many: Vec<Document> = (0..3).map(|_| parse_document(ARTICLE)).collect();
        assert_eq!(
            service2
                .submit_batch(too_many, SubmitOptions::default())
                .err(),
            Some(SubmitError::Full)
        );
        assert_eq!(service2.stats().submitted, 0);
    }

    /// `try_take` polls without consuming: `None` while pending, the
    /// report exactly once when settled, and a later `wait` reports the
    /// result as already taken instead of panicking or hanging.
    #[test]
    fn try_take_polls_without_blocking() {
        let service =
            StreamingVerifier::new(nfl_db(), CheckerConfig::default(), StreamConfig::default())
                .unwrap();
        let ticket = service.submit_text(ARTICLE).unwrap();
        while !ticket.is_done() {
            std::thread::yield_now();
        }
        let report = ticket.try_take().expect("settled").unwrap();
        assert_eq!(report.status, ReportStatus::Complete);
        assert!(ticket.try_take().is_none(), "a report is taken once");
        assert!(matches!(ticket.wait(), Err(CheckerError::Stream(_))));
    }
}
