//! Rounding-aware comparison of query results against claimed values.
//!
//! Definition 1 of the paper: a claim is correct if there is an *admissible
//! rounding function* ρ with ρ(q(D)) = e; *"we currently consider rounding
//! to any number of significant digits as admissible"*. The implementation
//! lives in [`agg_nlp::rounding`] (the corpus generator labels its claims
//! with the same matcher); this module re-exports it and documents the
//! paper-facing contract.

pub use agg_nlp::rounding::{matches_claim, matches_value, round_decimals, round_significant};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches() {
        assert!(matches_value(4.0, 4.0, 1, 0));
        assert!(matches_value(0.0, 0.0, 1, 0));
        assert!(!matches_value(4.0, 3.0, 1, 0));
    }

    #[test]
    fn paper_table9_examples() {
        // "three were for repeated substance abuse" — true count 4: no
        // rounding of 4 gives 3 → erroneous.
        assert!(!matches_value(4.0, 3.0, 1, 0));
        // "64 candidates" — true count 63: 63 does not round to 64.
        assert!(!matches_value(63.0, 64.0, 2, 0));
        // "13% self-taught" — true percentage ≈13.5%: stated at 2
        // significant digits, 13.5 rounds to 14, not 13 → erroneous,
        // matching the author's "rounding error/typo on our part".
        assert!(!matches_value(13.5, 13.0, 2, 0));
        assert!(matches_value(13.5, 14.0, 2, 0));
    }

    #[test]
    fn significant_digit_rounding() {
        assert_eq!(round_significant(423.0, 1), 400.0);
        assert_eq!(round_significant(423.0, 2), 420.0);
        assert_eq!(round_significant(0.0456, 2), 0.046);
        assert_eq!(round_significant(-37.0, 1), -40.0);
        assert_eq!(round_significant(0.0, 3), 0.0);
    }

    #[test]
    fn rounded_matches() {
        // "about 400 cases" (1 significant digit) vs an exact count of 423.
        assert!(matches_value(423.0, 400.0, 1, 0));
        assert!(!matches_value(470.0, 400.0, 1, 0));
        // "66%" vs 66.666…%.
        assert!(matches_value(66.6667, 67.0, 2, 0));
        assert!(!matches_value(66.6667, 66.0, 2, 0), "66.67 rounds to 67");
        // "41 percent" vs 41.3.
        assert!(matches_value(41.3, 41.0, 2, 0));
    }

    #[test]
    fn decimal_place_matches() {
        assert!(matches_value(2.4997, 2.5, 2, 1));
        assert!(matches_value(13.4999, 13.5, 4, 2));
        assert!(!matches_value(13.51, 13.5, 4, 2));
    }

    #[test]
    fn non_finite_results_never_match() {
        assert!(!matches_value(f64::NAN, 4.0, 1, 0));
        assert!(!matches_value(f64::INFINITY, 4.0, 1, 0));
    }

    #[test]
    fn number_mention_overload() {
        use agg_nlp::numbers::NumberMention;
        let claim = NumberMention {
            value: 400.0,
            token_start: 0,
            token_end: 1,
            significant_digits: 1,
            decimal_places: 0,
            is_percentage: false,
            spelled_out: true,
            had_separator: false,
        };
        assert!(matches_claim(423.0, &claim));
        assert!(!matches_claim(470.0, &claim));
    }

    #[test]
    fn negative_results() {
        assert!(matches_value(-4.2, -4.0, 1, 0));
        assert!(!matches_value(-4.2, 4.0, 1, 0));
    }

    #[test]
    fn small_fractions() {
        assert!(matches_value(0.04567, 0.046, 2, 3));
        assert!(!matches_value(0.04567, 0.047, 2, 3));
    }

    #[test]
    fn trailing_zero_semantics_from_parser() {
        use agg_nlp::numbers::parse_number_mentions;
        use agg_nlp::tokenize::tokenize;
        // "4,300,000" states 2 significant digits.
        let m = &parse_number_mentions(&tokenize("about 4,300,000 users"))[0];
        assert_eq!(m.significant_digits, 2);
        assert!(matches_claim(4_283_456.0, m));
        assert!(!matches_claim(4_420_000.0, m));
    }
}
