//! Shared text utilities: stopwords and keyword-term extraction.

use agg_nlp::stem::stem;
use agg_nlp::tokenize::{tokenize, Token, TokenKind};

/// Function words that carry no matching signal. Kept deliberately small —
/// aggressive stopword lists hurt recall on terse column names.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "with", "by", "from", "as", "is", "are",
    "was", "were", "be", "been", "being", "am", "do", "does", "did", "have", "has", "had", "and",
    "or", "but", "nor", "not", "no", "yes", "it", "its", "this", "that", "these", "those", "there",
    "here", "he", "she", "they", "we", "you", "i", "his", "her", "their", "our", "your", "my",
    "me", "him", "them", "us", "which", "who", "whom", "whose", "what", "when", "where", "why",
    "how", "than", "then", "so", "such", "very", "just", "only", "also", "too", "about", "into",
    "over", "under", "again", "more", "most", "some", "any", "each", "few", "both", "all", "per",
    "via", "will", "would", "can", "could", "should", "may", "might", "must", "shall", "if",
    "while", "during", "before", "after", "since", "until", "up", "down", "out", "off", "own",
    "same", "other", "another",
];

/// Is `word` (any case) a stopword?
pub fn is_stopword(word: &str) -> bool {
    let lower = word.to_lowercase();
    STOPWORDS.contains(&lower.as_str())
}

/// Extract stemmed keyword terms from free text: tokenize, keep words and
/// numbers, drop stopwords and single letters, stem words.
pub fn keyword_terms(text: &str) -> Vec<String> {
    tokenize(text).iter().filter_map(token_term).collect()
}

/// The indexable term of one token, if any: stemmed word or normalized
/// number (digits only, separators stripped).
pub fn token_term(token: &Token) -> Option<String> {
    match token.kind {
        TokenKind::Word => {
            let lower = token.lower();
            if lower.len() < 2 || is_stopword(&lower) {
                return None;
            }
            Some(stem(&lower))
        }
        TokenKind::Number | TokenKind::Percent | TokenKind::Currency => {
            let digits: String = token
                .text
                .chars()
                .filter(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            (!digits.is_empty()).then_some(digits)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwords_filtered_and_terms_stemmed() {
        let terms = keyword_terms("There were only four previous lifetime bans in my database");
        assert!(!terms.iter().any(|t| t == "the" || t == "in" || t == "my"));
        assert!(terms.contains(&stem("lifetime")));
        assert!(terms.contains(&stem("bans")));
        assert!(terms.contains(&stem("database")));
    }

    #[test]
    fn numbers_keep_digits() {
        let terms = keyword_terms("spent $1,200 or 13% in 2014");
        assert!(terms.contains(&"1200".to_string()));
        assert!(terms.contains(&"13".to_string()));
        assert!(terms.contains(&"2014".to_string()));
    }

    #[test]
    fn single_letters_dropped() {
        assert!(keyword_terms("a b c").is_empty());
    }

    #[test]
    fn stopword_check_is_case_insensitive() {
        assert!(is_stopword("The"));
        assert!(is_stopword("WHILE"));
        assert!(!is_stopword("gambling"));
    }
}
