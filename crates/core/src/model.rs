//! The probabilistic model (§5 of the paper).
//!
//! Each claim `c` is mapped to a distribution over candidate queries:
//!
//! ```text
//! Pr(Q_c = q | S_c, E_c) ∝ Pr(S_c | q) · Pr(E_c | q) · Pr(q)
//! ```
//!
//! * `Pr(S_c | q)` — keyword likelihood: the product of the relevance
//!   scores of q's fragments (function, aggregation column, and one factor
//!   per restricted column, normalized against the *unrestricted*
//!   pseudo-score `s₀`).
//! * `Pr(E_c | q)` — evaluation likelihood: `p_T` when q's result rounds to
//!   the claimed value, `1 − p_T` otherwise.
//! * `Pr(q)` — the document prior from Θ: `p_f(f_q) · p_a(a_q) ·
//!   ∏_{restricted i} p_r(i)` (Eq. 5; optionally `· ∏_{unrestricted}
//!   (1 − p_r(i))`, an ablation the paper omits).
//!
//! Document parameters Θ and claim distributions are refined jointly by
//! expectation maximization (Algorithm 3): the E-step computes the
//! distributions above; the M-step re-estimates Θ from the maximum
//! likelihood query of every claim.

use crate::candidates::{Candidate, CandidateSet};
use crate::config::CheckerConfig;
use crate::evaluate::ResultsMatrix;
use crate::fragments::FragmentCatalog;
use crate::matching::ClaimScores;
use crate::rounding::matches_claim;
use agg_nlp::numbers::NumberMention;
use serde::{Deserialize, Serialize};

/// Document-specific priors (Eq. 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Theta {
    /// Prior of each aggregation function (sums to 1).
    pub p_fn: Vec<f64>,
    /// Prior of each aggregation column (sums to 1).
    pub p_agg: Vec<f64>,
    /// Per predicate column: prior probability that a claim query restricts
    /// it (independent Bernoullis — a query may restrict several columns).
    pub p_restrict: Vec<f64>,
}

impl Theta {
    /// The uniform initialization of Algorithm 3, line 6.
    pub fn uniform(n_fn: usize, n_agg: usize, n_pred_cols: usize) -> Theta {
        Theta {
            p_fn: vec![1.0 / n_fn.max(1) as f64; n_fn],
            p_agg: vec![1.0 / n_agg.max(1) as f64; n_agg],
            p_restrict: vec![0.5; n_pred_cols],
        }
    }

    /// Largest absolute component change (convergence check).
    pub fn max_change(&self, other: &Theta) -> f64 {
        let diff = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max)
        };
        diff(&self.p_fn, &other.p_fn)
            .max(diff(&self.p_agg, &other.p_agg))
            .max(diff(&self.p_restrict, &other.p_restrict))
    }
}

/// The outcome of the E-step for one claim.
#[derive(Debug, Clone)]
pub struct ClaimDistribution {
    /// Top candidates with normalized probabilities, descending.
    pub top: Vec<(Candidate, f64)>,
    /// Total probability mass on candidates whose result matches the
    /// claimed value — the claim's correctness probability.
    pub correctness: f64,
    /// Whether the maximum-likelihood candidate's result matches.
    pub ml_matches: bool,
    /// Number of candidates scored.
    pub scored: usize,
}

impl ClaimDistribution {
    /// The maximum-likelihood candidate, if any.
    pub fn ml(&self) -> Option<Candidate> {
        self.top.first().map(|(c, _)| *c)
    }

    fn empty() -> ClaimDistribution {
        ClaimDistribution {
            top: Vec::new(),
            correctness: 0.0,
            ml_matches: false,
            scored: 0,
        }
    }
}

/// How many top candidates each distribution retains (the UI shows top-10;
/// coverage experiments need no more than 20).
pub const TOP_K: usize = 20;

/// E-step for one claim: score every candidate and form the distribution.
#[allow(clippy::too_many_arguments)]
pub fn score_claim(
    catalog: &FragmentCatalog,
    scores: &ClaimScores,
    candidates: &CandidateSet,
    results: &ResultsMatrix,
    theta: Option<&Theta>,
    claim_number: &NumberMention,
    cfg: &CheckerConfig,
) -> ClaimDistribution {
    if candidates.is_empty() {
        return ClaimDistribution::empty();
    }
    // Unrestricted pseudo-score s₀ (DESIGN.md §4): restricting on a literal
    // scoring above s₀ increases the keyword likelihood, below decreases.
    let s0 = (scores.max_predicate_score * cfg.unrestricted_factor).max(1e-9);

    // Per-combo factor: ∏ (score/s₀) [ · p_r or odds ].
    let n_combos = candidates.combos.len();
    let mut combo_factor = vec![0.0f64; n_combos];
    for (ci, combo) in candidates.combos.iter().enumerate() {
        let mut w = 1.0f64;
        for &(c, l) in combo {
            let s = scores.predicates[c as usize][l as usize];
            w *= (s / s0).max(1e-12);
            if let Some(t) = theta {
                let p = t.p_restrict[c as usize].clamp(1e-6, 1.0 - 1e-6);
                if cfg.penalize_unrestricted {
                    w *= p / (1.0 - p); // odds form ≡ ∏ p · ∏ (1−p) up to a constant
                } else {
                    w *= p;
                }
            }
        }
        combo_factor[ci] = w;
    }

    // Per-pair factor: S(f)·S(a) [ · p_f·p_a ].
    let n_pairs = candidates.agg_pairs.len();
    let mut pair_factor = vec![0.0f64; n_pairs];
    for (pi, &(fi, ai)) in candidates.agg_pairs.iter().enumerate() {
        let mut w = scores.functions[fi as usize] * scores.agg_columns[ai as usize];
        if let Some(t) = theta {
            w *= t.p_fn[fi as usize] * t.p_agg[ai as usize];
        }
        pair_factor[pi] = w;
    }

    let p_t = cfg.p_true;
    let use_eval = cfg.model.use_evaluation;

    let mut total = 0.0f64;
    let mut matching = 0.0f64;
    let mut top: Vec<(Candidate, f64)> = Vec::with_capacity(TOP_K + 1);
    let mut scored = 0usize;

    for (ci, &cf) in combo_factor.iter().enumerate().take(n_combos) {
        let combo_empty = candidates.combos[ci].is_empty();
        for (pi, &pf) in pair_factor.iter().enumerate().take(n_pairs) {
            let (fi, _) = candidates.agg_pairs[pi];
            // Conditional probability needs a condition predicate.
            if combo_empty
                && catalog.functions[fi as usize]
                    == agg_relational::AggFunction::ConditionalProbability
            {
                continue;
            }
            scored += 1;
            let result = results.get(ci, pi);
            let is_match = result.is_some_and(|r| matches_claim(r, claim_number));
            let mut w = cf * pf;
            if use_eval {
                w *= if is_match { p_t } else { 1.0 - p_t };
            }
            if w <= 0.0 {
                continue;
            }
            total += w;
            if is_match {
                matching += w;
            }
            push_top(
                &mut top,
                Candidate {
                    combo: ci as u32,
                    pair: pi as u32,
                },
                w,
            );
        }
    }

    if total <= 0.0 {
        return ClaimDistribution {
            scored,
            ..ClaimDistribution::empty()
        };
    }
    for (_, w) in &mut top {
        *w /= total;
    }
    let ml_matches = top
        .first()
        .map(|(c, _)| {
            results
                .get(c.combo as usize, c.pair as usize)
                .is_some_and(|r| matches_claim(r, claim_number))
        })
        .unwrap_or(false);
    ClaimDistribution {
        top,
        correctness: matching / total,
        ml_matches,
        scored,
    }
}

/// Insert into a bounded, descending top-k list.
fn push_top(top: &mut Vec<(Candidate, f64)>, cand: Candidate, w: f64) {
    let pos = top.partition_point(|(_, tw)| *tw >= w);
    if pos >= TOP_K {
        return;
    }
    top.insert(pos, (cand, w));
    top.truncate(TOP_K);
}

/// M-step (Algorithm 3, line 17): re-estimate Θ from maximum-likelihood
/// candidates, with additive smoothing `λ`.
pub fn m_step(
    catalog: &FragmentCatalog,
    ml_candidates: &[(Option<Candidate>, &CandidateSet)],
    smoothing: f64,
) -> Theta {
    let n_fn = catalog.functions.len();
    let n_agg = catalog.agg_columns.len();
    let n_pred = catalog.predicate_columns.len();
    let mut fn_counts = vec![0.0f64; n_fn];
    let mut agg_counts = vec![0.0f64; n_agg];
    let mut restrict_counts = vec![0.0f64; n_pred];
    let mut n = 0.0f64;
    for (ml, set) in ml_candidates {
        let Some(cand) = ml else { continue };
        n += 1.0;
        let (fi, ai) = set.agg_pairs[cand.pair as usize];
        fn_counts[fi as usize] += 1.0;
        agg_counts[ai as usize] += 1.0;
        for &(c, _) in &set.combos[cand.combo as usize] {
            restrict_counts[c as usize] += 1.0;
        }
    }
    let lambda = smoothing;
    Theta {
        p_fn: fn_counts
            .iter()
            .map(|c| (c + lambda) / (n + lambda * n_fn as f64).max(1e-12))
            .collect(),
        p_agg: agg_counts
            .iter()
            .map(|c| (c + lambda) / (n + lambda * n_agg as f64).max(1e-12))
            .collect(),
        p_restrict: restrict_counts
            .iter()
            .map(|c| ((c + lambda) / (n + 2.0 * lambda).max(1e-12)).min(1.0 - 1e-6))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_theta_sums_to_one() {
        let t = Theta::uniform(8, 5, 3);
        assert!((t.p_fn.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((t.p_agg.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(t.p_restrict.iter().all(|p| *p == 0.5));
    }

    #[test]
    fn max_change_detects_movement() {
        let a = Theta::uniform(4, 2, 2);
        let mut b = a.clone();
        assert_eq!(a.max_change(&b), 0.0);
        b.p_restrict[1] = 0.9;
        assert!((a.max_change(&b) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn push_top_keeps_descending_bounded_list() {
        let mut top = Vec::new();
        for (i, w) in [(0u32, 0.1), (1, 0.5), (2, 0.3)] {
            push_top(&mut top, Candidate { combo: i, pair: 0 }, w);
        }
        let ws: Vec<f64> = top.iter().map(|(_, w)| *w).collect();
        assert_eq!(ws, vec![0.5, 0.3, 0.1]);
        for i in 0..100 {
            push_top(&mut top, Candidate { combo: i, pair: 1 }, 1.0 + i as f64);
        }
        assert_eq!(top.len(), TOP_K);
        assert!(top[0].1 >= top[TOP_K - 1].1);
    }
}
