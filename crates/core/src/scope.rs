//! Evaluation-scope selection — `PickScope` of Algorithm 4 (§6.1).
//!
//! Myriads of queries are possible; only fragments with sufficient marginal
//! probability enter candidate enumeration. The scope expands in descending
//! marginal-probability order — keyword score times the current prior —
//! until the cost model's budget is exhausted or the hard caps are reached.

use crate::config::ScopeConfig;
use crate::fragments::FragmentCatalog;
use crate::matching::ClaimScores;
use crate::model::Theta;
use agg_relational::CostModel;

/// The fragments admitted for one claim's candidate enumeration.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Catalog positions of admitted aggregation columns (always includes
    /// position 0, the `*` column).
    pub agg_columns: Vec<usize>,
    /// Admitted `(catalog predicate column, literal)` pairs, descending by
    /// marginal probability.
    pub predicate_pairs: Vec<(usize, usize)>,
}

/// Pick the evaluation scope for one claim.
pub fn pick_scope(
    catalog: &FragmentCatalog,
    scores: &ClaimScores,
    theta: Option<&Theta>,
    cost: &CostModel,
    rows_hint: usize,
    cfg: &ScopeConfig,
) -> Scope {
    let budget = cfg.budget_per_claim;
    let row_cost = rows_hint.max(1) as f64;
    let mut spent = 0.0f64;

    // --- Aggregation columns: rank by score × prior ----------------------
    let mut ranked_cols: Vec<(usize, f64)> = scores
        .agg_columns
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let prior = theta.map(|t| t.p_agg[i]).unwrap_or(1.0);
            (i, s * prior)
        })
        .collect();
    ranked_cols.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut agg_columns = vec![0usize]; // `*` is always in scope
    spent += row_cost;
    for (i, _) in ranked_cols {
        if i == 0 {
            continue;
        }
        if agg_columns.len() >= cfg.max_agg_columns || spent + row_cost > budget {
            break;
        }
        agg_columns.push(i);
        spent += row_cost;
    }

    // --- Predicate pairs: rank by score × restriction prior --------------
    let mut ranked_pairs: Vec<(usize, usize, f64)> = scores
        .scored_predicates()
        .into_iter()
        .map(|(c, l, s)| {
            let prior = theta.map(|t| t.p_restrict[c]).unwrap_or(1.0);
            (c, l, s * prior)
        })
        .collect();
    ranked_pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

    let mut predicate_pairs: Vec<(usize, usize)> = Vec::new();
    let mut per_column: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut columns_used: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for (c, l, _) in ranked_pairs {
        if spent + row_cost > budget {
            break;
        }
        if !columns_used.contains(&c) && columns_used.len() >= cfg.max_predicate_columns {
            continue;
        }
        let count = per_column.entry(c).or_insert(0);
        if *count >= cfg.max_literals_per_column {
            continue;
        }
        *count += 1;
        columns_used.insert(c);
        predicate_pairs.push((c, l));
        spent += row_cost;
    }

    // Consume the cost model for dimension estimates so extreme databases
    // shrink the scope further (cube cost grows with dims).
    let _ = cost;
    let _ = catalog;

    Scope {
        agg_columns,
        predicate_pairs,
    }
}

impl Scope {
    /// Number of admitted fragments (diagnostic).
    pub fn fragment_count(&self) -> usize {
        self.agg_columns.len() + self.predicate_pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::CatalogConfig;
    use crate::keywords::WeightedKeyword;
    use crate::matching::match_claim;
    use agg_nlp::stem::stem;
    use agg_relational::{Database, Table, Value};

    fn db() -> Database {
        let t = Table::from_columns(
            "teams",
            vec![
                (
                    "color",
                    vec!["red".into(), "blue".into(), "green".into(), "white".into()],
                ),
                (
                    "flavor",
                    vec!["sweet".into(), "sour".into(), "salty".into(), "mild".into()],
                ),
                (
                    "num",
                    vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
                ),
            ],
        )
        .unwrap();
        let mut d = Database::new("d");
        d.add_table(t);
        d
    }

    fn kw(term: &str, weight: f64) -> WeightedKeyword {
        WeightedKeyword {
            term: stem(term),
            weight,
            source: crate::keywords::KeywordSource::ClaimSentence,
        }
    }

    #[test]
    fn star_is_always_in_scope() {
        let d = db();
        let cat = FragmentCatalog::build(&d, &CatalogConfig::default());
        let scores = match_claim(&cat, &[], 20);
        let scope = pick_scope(
            &cat,
            &scores,
            None,
            &CostModel::new(&d),
            d.total_rows(),
            &ScopeConfig::default(),
        );
        assert!(scope.agg_columns.contains(&0));
    }

    #[test]
    fn caps_limit_scope() {
        let d = db();
        let cat = FragmentCatalog::build(&d, &CatalogConfig::default());
        let scores = match_claim(&cat, &[kw("color", 1.0), kw("flavor", 0.9)], 30);
        let tight = ScopeConfig {
            max_agg_columns: 1,
            max_predicate_columns: 1,
            max_literals_per_column: 2,
            ..Default::default()
        };
        let scope = pick_scope(
            &cat,
            &scores,
            None,
            &CostModel::new(&d),
            d.total_rows(),
            &tight,
        );
        assert_eq!(scope.agg_columns, vec![0]);
        let cols: std::collections::HashSet<usize> =
            scope.predicate_pairs.iter().map(|(c, _)| *c).collect();
        assert!(cols.len() <= 1);
        assert!(scope.predicate_pairs.len() <= 2);
    }

    #[test]
    fn budget_limits_scope() {
        let d = db();
        let cat = FragmentCatalog::build(&d, &CatalogConfig::default());
        let scores = match_claim(&cat, &[kw("color", 1.0)], 30);
        let starving = ScopeConfig {
            budget_per_claim: 4.0, // one row-cost unit for `*` only
            ..Default::default()
        };
        let scope = pick_scope(
            &cat,
            &scores,
            None,
            &CostModel::new(&d),
            d.total_rows(),
            &starving,
        );
        assert_eq!(scope.fragment_count(), 1, "only `*` fits the budget");
    }

    #[test]
    fn priors_reorder_predicates() {
        let d = db();
        let cat = FragmentCatalog::build(&d, &CatalogConfig::default());
        // Equal keyword pull on both columns.
        let scores = match_claim(&cat, &[kw("color", 1.0), kw("flavor", 1.0)], 30);
        let mut theta = Theta::uniform(
            cat.functions.len(),
            cat.agg_columns.len(),
            cat.predicate_columns.len(),
        );
        // Find the catalog position of column "flavor" and boost it.
        let flavor_pos = cat
            .predicate_columns
            .iter()
            .position(|c| d.short_column_name(*c) == "flavor")
            .unwrap();
        theta.p_restrict[flavor_pos] = 0.9;
        let color_pos = cat
            .predicate_columns
            .iter()
            .position(|c| d.short_column_name(*c) == "color")
            .unwrap();
        theta.p_restrict[color_pos] = 0.01;
        let scope = pick_scope(
            &cat,
            &scores,
            Some(&theta),
            &CostModel::new(&d),
            d.total_rows(),
            &ScopeConfig::default(),
        );
        let first_col = scope.predicate_pairs.first().map(|(c, _)| *c);
        assert_eq!(first_col, Some(flavor_pos), "prior must dominate ordering");
    }
}
