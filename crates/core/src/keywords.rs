//! Claim keyword-context extraction — Algorithm 2 of the paper.
//!
//! For a claim (a number mention in a sentence), the keyword context is:
//!
//! * every word of the **claim sentence**, weighted `1 / TreeDistance` from
//!   the claimed value in the (pseudo-)dependency tree — so in a sentence
//!   with several claims, each claim pulls the words nearest to it;
//! * with `m` the minimum claim-sentence weight: the words of the
//!   **previous sentence** and the **first sentence of the paragraph** at
//!   weight `0.4·m`;
//! * the words of all **enclosing headlines** (walking up the section
//!   hierarchy, including the document title) at weight `0.7·m`;
//! * optionally, **synonyms** of every collected word at a configured
//!   fraction of its weight.
//!
//! Keywords are returned as stemmed terms ready for the IR engine.

use crate::config::ContextConfig;
use crate::textutil::{is_stopword, token_term};
use agg_nlp::claims::ClaimMention;
use agg_nlp::deptree::DependencyTree;
use agg_nlp::numbers::parse_number_mentions;
use agg_nlp::stem::stem;
use agg_nlp::structure::{Document, Sentence};
use agg_nlp::synonyms::SynonymDict;
use agg_nlp::tokenize::TokenKind;
use std::collections::HashMap;

/// Where a keyword came from (diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeywordSource {
    ClaimSentence,
    PreviousSentence,
    ParagraphStart,
    Headline,
    Synonym,
}

/// One stemmed keyword with its context weight.
#[derive(Debug, Clone)]
pub struct WeightedKeyword {
    pub term: String,
    pub weight: f64,
    pub source: KeywordSource,
}

/// Extract the weighted keyword context of a claim (Algorithm 2).
pub fn claim_keywords(
    doc: &Document,
    claim: &ClaimMention,
    synonyms: &SynonymDict,
    context: &ContextConfig,
    synonym_weight: f64,
) -> Vec<WeightedKeyword> {
    // Surface words with weights, before stemming/synonym expansion.
    let mut collected: Vec<(String, f64, KeywordSource)> = Vec::new();

    let section = doc.section(&claim.section);
    let paragraph = section.and_then(|s| s.paragraphs.get(claim.paragraph));
    let sentence = paragraph.and_then(|p| p.sentences.get(claim.sentence));

    // --- Claim sentence, weighted by tree distance ----------------------
    let mut m = 1.0 / 3.0; // fallback: the maximum tree distance
    if let Some(sentence) = sentence {
        let tree = DependencyTree::build(&sentence.tokens);
        // Token spans of *other* spelled-out numbers: those are competing
        // claims, not context keywords.
        let other_numbers: Vec<(usize, usize)> = parse_number_mentions(&sentence.tokens)
            .into_iter()
            .filter(|nm| nm.token_start != claim.number.token_start)
            .filter(|nm| nm.spelled_out)
            .map(|nm| (nm.token_start, nm.token_end))
            .collect();
        let mut min_weight = f64::MAX;
        for (i, token) in sentence.tokens.iter().enumerate() {
            if (claim.number.token_start..claim.number.token_end).contains(&i) {
                continue;
            }
            if other_numbers.iter().any(|(s, e)| (*s..*e).contains(&i)) {
                continue;
            }
            if token.kind == TokenKind::Punct || token.kind == TokenKind::Ordinal {
                continue;
            }
            let Some(surface) = surface_word(token) else {
                continue;
            };
            let dist = tree.distance(i, claim.number.token_start).max(1);
            let weight = 1.0 / dist as f64;
            min_weight = min_weight.min(weight);
            collected.push((surface, weight, KeywordSource::ClaimSentence));
        }
        if min_weight < f64::MAX {
            m = min_weight;
        }
    }

    // --- Neighbouring sentences at 0.4·m ---------------------------------
    if let Some(paragraph) = paragraph {
        if context.use_previous_sentence && claim.sentence > 0 {
            if let Some(prev) = paragraph.sentences.get(claim.sentence - 1) {
                add_sentence(
                    &mut collected,
                    prev,
                    0.4 * m,
                    KeywordSource::PreviousSentence,
                );
            }
        }
        if context.use_paragraph_start && claim.sentence > 0 {
            // Skip when it coincides with the previous sentence (already
            // added) — same words, same weight.
            let first_is_prev = claim.sentence == 1 && context.use_previous_sentence;
            if !first_is_prev {
                if let Some(first) = paragraph.sentences.first() {
                    add_sentence(
                        &mut collected,
                        first,
                        0.4 * m,
                        KeywordSource::ParagraphStart,
                    );
                }
            }
        }
    }

    // --- Enclosing headlines at 0.7·m -------------------------------------
    if context.use_headlines {
        for headline in doc.enclosing_headlines(&claim.section) {
            add_sentence(&mut collected, headline, 0.7 * m, KeywordSource::Headline);
        }
    }

    // --- Synonym expansion ------------------------------------------------
    let mut expanded: Vec<(String, f64, KeywordSource)> = Vec::new();
    if context.use_synonyms {
        for (word, weight, _) in &collected {
            if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                continue;
            }
            for syn in synonyms.synonyms(word) {
                expanded.push((syn, weight * synonym_weight, KeywordSource::Synonym));
            }
        }
    }
    collected.extend(expanded);

    // --- Stem and deduplicate (max weight per term) -----------------------
    let mut best: HashMap<String, (f64, KeywordSource)> = HashMap::new();
    for (word, weight, source) in collected {
        let term = if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            word
        } else {
            stem(&word)
        };
        match best.get_mut(&term) {
            Some(entry) if entry.0 >= weight => {}
            Some(entry) => *entry = (weight, source),
            None => {
                best.insert(term, (weight, source));
            }
        }
    }
    let mut keywords: Vec<WeightedKeyword> = best
        .into_iter()
        .map(|(term, (weight, source))| WeightedKeyword {
            term,
            weight,
            source,
        })
        .collect();
    keywords.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.term.cmp(&b.term))
    });
    keywords
}

/// Add every indexable word of a sentence at a fixed weight.
fn add_sentence(
    out: &mut Vec<(String, f64, KeywordSource)>,
    sentence: &Sentence,
    weight: f64,
    source: KeywordSource,
) {
    for token in &sentence.tokens {
        if let Some(surface) = surface_word(token) {
            out.push((surface, weight, source));
        }
    }
}

/// The surface form used for synonym lookup (lowercased word) or the digit
/// string for numbers; `None` for tokens that are not keywords.
fn surface_word(token: &agg_nlp::tokenize::Token) -> Option<String> {
    match token.kind {
        TokenKind::Word => {
            let lower = token.lower();
            if lower.len() < 2 || is_stopword(&lower) {
                None
            } else {
                Some(lower)
            }
        }
        TokenKind::Number | TokenKind::Percent | TokenKind::Currency => {
            // Reuse token_term's digit normalization.
            token_term(token)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_nlp::claims::{detect_claims, ClaimDetectorConfig};
    use agg_nlp::structure::parse_document;

    const ARTICLE: &str = r#"
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#;

    fn keywords_for(claim_value: f64, ctx: &ContextConfig) -> Vec<WeightedKeyword> {
        let doc = parse_document(ARTICLE);
        let claims = detect_claims(&doc, &ClaimDetectorConfig::default());
        let claim = claims
            .iter()
            .find(|c| c.number.value == claim_value)
            .expect("claim present");
        claim_keywords(&doc, claim, &SynonymDict::embedded(), ctx, 0.7)
    }

    fn weight_of(kws: &[WeightedKeyword], term: &str) -> Option<f64> {
        let stemmed = stem(term);
        kws.iter().find(|k| k.term == stemmed).map(|k| k.weight)
    }

    #[test]
    fn gambling_weighs_more_for_one_than_for_three() {
        let ctx = ContextConfig::default();
        let for_one = keywords_for(1.0, &ctx);
        let for_three = keywords_for(3.0, &ctx);
        let w1 = weight_of(&for_one, "gambling").expect("gambling in context of 'one'");
        let w3 = weight_of(&for_three, "gambling").expect("gambling in context of 'three'");
        assert!(w1 > w3, "paper Example 3: {w1} vs {w3}");
    }

    #[test]
    fn competing_spelled_numbers_are_excluded() {
        let ctx = ContextConfig::default();
        let for_one = keywords_for(1.0, &ctx);
        assert!(
            weight_of(&for_one, "three").is_none(),
            "'three' is a rival claim"
        );
    }

    #[test]
    fn previous_sentence_supplies_missing_context() {
        // "lifetime bans" appears only in the first sentence; the claims
        // 'three' and 'one' live in the second.
        let ctx = ContextConfig::default();
        let kws = keywords_for(1.0, &ctx);
        assert!(weight_of(&kws, "lifetime").is_some());
        assert!(weight_of(&kws, "bans").is_some());

        let no_ctx = ContextConfig::sentence_only();
        let kws = keywords_for(1.0, &no_ctx);
        assert!(weight_of(&kws, "lifetime").is_none());
    }

    #[test]
    fn context_weights_are_scaled_by_m() {
        let ctx = ContextConfig::default();
        let kws = keywords_for(1.0, &ctx);
        let in_sentence = weight_of(&kws, "gambling").unwrap();
        let prev = kws
            .iter()
            .find(|k| k.source == KeywordSource::PreviousSentence)
            .expect("previous-sentence keywords present");
        assert!(prev.weight < in_sentence);
    }

    #[test]
    fn headlines_walk_up_to_title() {
        let ctx = ContextConfig::default();
        let kws = keywords_for(4.0, &ctx);
        // "history" occurs only in the document title (and has no synonym
        // group that any claim-sentence word belongs to).
        assert!(weight_of(&kws, "history").is_some(), "{kws:?}");

        let no_headlines = ContextConfig {
            use_headlines: false,
            ..ContextConfig::default()
        };
        let kws = keywords_for(4.0, &no_headlines);
        assert!(weight_of(&kws, "history").is_none());
    }

    #[test]
    fn synonyms_expand_with_reduced_weight() {
        let ctx = ContextConfig::default();
        let kws = keywords_for(4.0, &ctx);
        // "bans" (claim sentence) has "suspension" as an embedded synonym.
        let direct = weight_of(&kws, "bans").unwrap();
        let syn = weight_of(&kws, "suspension").expect("synonym of 'ban'");
        assert!(syn < direct, "synonym weight {syn} < direct {direct}");

        let no_syn = ContextConfig {
            use_synonyms: false,
            ..ContextConfig::default()
        };
        let kws = keywords_for(4.0, &no_syn);
        assert!(weight_of(&kws, "suspension").is_none());
    }

    #[test]
    fn terms_are_deduplicated_with_max_weight() {
        let ctx = ContextConfig::default();
        let kws = keywords_for(4.0, &ctx);
        let mut terms: Vec<&str> = kws.iter().map(|k| k.term.as_str()).collect();
        terms.sort_unstable();
        let before = terms.len();
        terms.dedup();
        assert_eq!(before, terms.len(), "duplicate stemmed terms");
    }

    #[test]
    fn keywords_sorted_by_weight() {
        let ctx = ContextConfig::default();
        let kws = keywords_for(4.0, &ctx);
        for pair in kws.windows(2) {
            assert!(pair[0].weight >= pair[1].weight);
        }
    }

    #[test]
    fn claims_own_tokens_are_excluded() {
        let ctx = ContextConfig::default();
        let kws = keywords_for(4.0, &ctx);
        assert!(weight_of(&kws, "four").is_none());
    }
}
