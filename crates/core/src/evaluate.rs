//! Massive-scale candidate evaluation — `RefineByEval`, Algorithm 4 (§6).
//!
//! Evaluating each candidate separately would be hopeless (Table 6 of the
//! paper: >40 minutes of query time on the full test set). Instead:
//!
//! * candidates of one claim are grouped by their **predicate column set**;
//!   each group becomes one cube query covering every literal combination
//!   (§6.2, query merging);
//! * the relevant literals of each cube are the **document-wide** sets, so
//!   cube slices are reusable across claims and EM iterations (§6.3);
//! * slices are stored in the shared [`EvalCache`] keyed by (aggregation
//!   function, aggregation column, dimension set) — the cache granularity
//!   the paper found to perform best. The cache is **lock-striped** into
//!   shards, so many evaluators (one per batch worker verifying its own
//!   document, see `pipeline::BatchVerifier`) read and fill it
//!   concurrently without serializing on a global lock;
//! * cube scans fan out over [`Evaluator::set_threads`] scoped workers, and
//!   dense accumulator grids are drawn from an optional [`GridArena`]
//!   ([`Evaluator::set_arena`]) so buffers persist across cube executions
//!   instead of being reallocated per cube;
//! * ratio aggregates (`Percentage`, `ConditionalProbability`) are derived
//!   from `Count` slices per footnote 1.

use crate::candidates::CandidateSet;
use crate::fragments::FragmentCatalog;
use agg_relational::{
    ratio_from_counts, AggColumn, AggFunction, CacheKey, CachedSlice, ColumnRef, CubeOptions,
    CubeQuery, Database, EvalCache, GridArena, Result, Value,
};
use std::collections::BTreeMap;

/// Per-run evaluation statistics (feeds Table 6 and `RunStats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStats {
    /// Candidate (query, claim) evaluations resolved.
    pub candidates_evaluated: u64,
    /// Cube queries actually executed.
    pub cubes_executed: u64,
    /// Cube slice requests served from the cache.
    pub cubes_cached: u64,
    /// Rows scanned by executed cubes.
    pub rows_scanned: u64,
}

impl EvalStats {
    pub fn merge(&mut self, other: &EvalStats) {
        self.candidates_evaluated += other.candidates_evaluated;
        self.cubes_executed += other.cubes_executed;
        self.cubes_cached += other.cubes_cached;
        self.rows_scanned += other.rows_scanned;
    }
}

/// Dense result matrix: one `Option<f64>` per (combo, aggregate pair).
#[derive(Debug, Clone)]
pub struct ResultsMatrix {
    n_pairs: usize,
    data: Vec<Option<f64>>,
}

impl ResultsMatrix {
    fn new(n_combos: usize, n_pairs: usize) -> ResultsMatrix {
        ResultsMatrix {
            n_pairs,
            data: vec![None; n_combos * n_pairs],
        }
    }

    #[inline]
    pub fn get(&self, combo: usize, pair: usize) -> Option<f64> {
        self.data[combo * self.n_pairs + pair]
    }

    #[inline]
    fn set(&mut self, combo: usize, pair: usize, value: Option<f64>) {
        self.data[combo * self.n_pairs + pair] = value;
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// How one aggregate pair reads its value from a cube slice.
#[derive(Debug, Clone, Copy)]
enum PairPlan {
    /// Read the value aggregate at `slice` directly.
    Direct { slice: usize },
    /// `100 · count(assignment) / count(all-unrestricted)`.
    Percentage { count_slice: usize },
    /// `100 · count(assignment) / count(condition only)`.
    CondProb { count_slice: usize },
}

/// Evaluates candidate sets against the database with merging and caching.
pub struct Evaluator<'a> {
    db: &'a Database,
    catalog: &'a FragmentCatalog,
    cache: Option<EvalCache>,
    /// Document-wide relevant literals per catalog predicate column
    /// (literal positions) — §6.3's cache-friendly literal sets.
    document_literals: Vec<Vec<usize>>,
    /// Scan workers per cube execution (`CheckerConfig::threads`).
    threads: usize,
    /// Dense-grid buffer pool persisted across cube executions (batch mode
    /// hands each worker thread one arena for its whole document stream).
    arena: Option<&'a GridArena>,
    pub stats: EvalStats,
}

impl<'a> Evaluator<'a> {
    /// `cache = None` gives the "+ Query Merging" row of Table 6 (merged
    /// cubes, no reuse); `Some` adds "+ Caching".
    pub fn new(
        db: &'a Database,
        catalog: &'a FragmentCatalog,
        cache: Option<EvalCache>,
    ) -> Evaluator<'a> {
        Evaluator {
            db,
            catalog,
            cache,
            document_literals: vec![Vec::new(); catalog.predicate_columns.len()],
            threads: 1,
            arena: None,
            stats: EvalStats::default(),
        }
    }

    /// Use up to `threads` scan workers per cube execution (the
    /// `CheckerConfig::threads` knob; small relations stay sequential).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Reuse dense-grid buffers from `arena` across this evaluator's cube
    /// executions (and, when callers share the arena, across documents).
    pub fn set_arena(&mut self, arena: &'a GridArena) {
        self.arena = Some(arena);
    }

    /// Declare the document-wide literal sets: the union of scoped literal
    /// positions per predicate column over *all* claims of the document.
    pub fn set_document_literals(&mut self, literals: Vec<Vec<usize>>) {
        assert_eq!(literals.len(), self.catalog.predicate_columns.len());
        self.document_literals = literals;
    }

    /// Evaluate every candidate of one claim.
    pub fn evaluate(&mut self, candidates: &CandidateSet) -> Result<ResultsMatrix> {
        let n_pairs = candidates.agg_pairs.len();
        let mut matrix = ResultsMatrix::new(candidates.combos.len(), n_pairs);

        // Map each aggregate pair to the value aggregate it needs.
        let mut value_aggs: Vec<(AggFunction, AggColumn)> = Vec::new();
        let agg_slot = |aggs: &mut Vec<(AggFunction, AggColumn)>, f: AggFunction, c: AggColumn| {
            aggs.iter()
                .position(|(af, ac)| *af == f && *ac == c)
                .unwrap_or_else(|| {
                    aggs.push((f, c));
                    aggs.len() - 1
                })
        };
        let plans: Vec<PairPlan> = candidates
            .agg_pairs
            .iter()
            .map(|&(fi, ai)| {
                let f = self.catalog.functions[fi as usize];
                let col = self.catalog.agg_columns[ai as usize];
                match f {
                    AggFunction::Percentage => PairPlan::Percentage {
                        count_slice: agg_slot(&mut value_aggs, AggFunction::Count, col),
                    },
                    AggFunction::ConditionalProbability => PairPlan::CondProb {
                        count_slice: agg_slot(&mut value_aggs, AggFunction::Count, col),
                    },
                    _ => PairPlan::Direct {
                        slice: agg_slot(&mut value_aggs, f, col),
                    },
                }
            })
            .collect();

        // Group combos by (sorted) predicate column set.
        let mut groups: BTreeMap<Vec<u16>, Vec<u32>> = BTreeMap::new();
        for (ci, combo) in candidates.combos.iter().enumerate() {
            let mut cols: Vec<u16> = combo.iter().map(|(c, _)| *c).collect();
            cols.sort_unstable();
            groups.entry(cols).or_default().push(ci as u32);
        }

        for (cols, combo_ids) in groups {
            let dims: Vec<ColumnRef> = cols
                .iter()
                .map(|&c| self.catalog.predicate_columns[c as usize])
                .collect();
            // Document-wide literals per dimension (falling back to the
            // literals used by this claim when none were declared).
            let relevant: Vec<Vec<Value>> = cols
                .iter()
                .map(|&c| {
                    let doc_lits = &self.document_literals[c as usize];
                    let positions: Vec<usize> = if doc_lits.is_empty() {
                        candidates
                            .combos
                            .iter()
                            .flat_map(|combo| combo.iter())
                            .filter(|(cc, _)| *cc == c)
                            .map(|(_, l)| *l as usize)
                            .collect::<std::collections::BTreeSet<_>>()
                            .into_iter()
                            .collect()
                    } else {
                        doc_lits.clone()
                    };
                    positions
                        .into_iter()
                        .map(|l| self.catalog.literals[c as usize][l].clone())
                        .collect()
                })
                .collect();

            let slices = self.slices_for(&dims, &relevant, &value_aggs)?;

            // Resolve every combo × pair in this group.
            for &ci in &combo_ids {
                let combo = &candidates.combos[ci as usize];
                // Assignment by value, aligned with `dims`.
                let mut assignment: Vec<Option<Value>> = vec![None; dims.len()];
                // Condition position (first = highest-relevance pair).
                let mut condition_dim: Option<usize> = None;
                for (rank, &(c, l)) in combo.iter().enumerate() {
                    let d = cols.iter().position(|cc| *cc == c).expect("dim present");
                    assignment[d] = Some(self.catalog.literals[c as usize][l as usize].clone());
                    if rank == 0 {
                        condition_dim = Some(d);
                    }
                }
                for (pi, plan) in plans.iter().enumerate() {
                    let value = match plan {
                        PairPlan::Direct { slice } => {
                            slices[*slice].lookup(&assignment).ok().flatten()
                        }
                        PairPlan::Percentage { count_slice } => {
                            let s = &slices[*count_slice];
                            let num = s.lookup_count(&assignment).ok();
                            let all: Vec<Option<Value>> = vec![None; dims.len()];
                            let den = s.lookup_count(&all).ok();
                            match (num, den) {
                                (Some(n), Some(d)) => ratio_from_counts(n, d),
                                _ => None,
                            }
                        }
                        PairPlan::CondProb { count_slice } => match condition_dim {
                            None => None, // invalid: no condition predicate
                            Some(cd) => {
                                let s = &slices[*count_slice];
                                let num = s.lookup_count(&assignment).ok();
                                let mut cond: Vec<Option<Value>> = vec![None; dims.len()];
                                cond[cd] = assignment[cd].clone();
                                let den = s.lookup_count(&cond).ok();
                                match (num, den) {
                                    (Some(n), Some(d)) => ratio_from_counts(n, d),
                                    _ => None,
                                }
                            }
                        },
                    };
                    matrix.set(ci as usize, pi, value);
                }
            }
            self.stats.candidates_evaluated += combo_ids.len() as u64 * n_pairs as u64;
        }
        Ok(matrix)
    }

    /// Obtain one slice per value aggregate over the given dimensions,
    /// from the cache where possible.
    fn slices_for(
        &mut self,
        dims: &[ColumnRef],
        relevant: &[Vec<Value>],
        value_aggs: &[(AggFunction, AggColumn)],
    ) -> Result<Vec<CachedSlice>> {
        let mut out: Vec<Option<CachedSlice>> = vec![None; value_aggs.len()];
        let mut missing: Vec<usize> = Vec::new();
        if let Some(cache) = &self.cache {
            for (i, (f, c)) in value_aggs.iter().enumerate() {
                let key = CacheKey::new(*f, *c, dims.to_vec());
                match cache.get(&key, relevant) {
                    Some(s) => {
                        self.stats.cubes_cached += 1;
                        out[i] = Some(s);
                    }
                    None => missing.push(i),
                }
            }
        } else {
            missing = (0..value_aggs.len()).collect();
        }
        if !missing.is_empty() {
            let cube = CubeQuery {
                dims: dims.to_vec(),
                relevant: relevant.to_vec(),
                aggregates: missing.iter().map(|&i| value_aggs[i]).collect(),
            };
            let result = std::sync::Arc::new(cube.execute_in(
                self.db,
                &CubeOptions::with_threads(self.threads),
                self.arena,
            )?);
            self.stats.cubes_executed += 1;
            self.stats.rows_scanned += result.stats.rows_scanned;
            for (pos, &i) in missing.iter().enumerate() {
                let (f, c) = value_aggs[i];
                let slice = CachedSlice::new(result.clone(), pos, f);
                if let Some(cache) = &self.cache {
                    cache.put(CacheKey::new(f, c, dims.to_vec()), slice.clone());
                }
                out[i] = Some(slice);
            }
        }
        Ok(out.into_iter().map(|s| s.expect("slice filled")).collect())
    }
}

/// The naive evaluation strategy of Table 6: every candidate becomes its
/// own query, executed separately — no merging, no caching.
pub fn evaluate_naive(
    db: &Database,
    catalog: &FragmentCatalog,
    candidates: &CandidateSet,
    stats: &mut EvalStats,
) -> Result<ResultsMatrix> {
    let n_pairs = candidates.agg_pairs.len();
    let mut matrix = ResultsMatrix::new(candidates.combos.len(), n_pairs);
    for ci in 0..candidates.combos.len() {
        for pi in 0..n_pairs {
            let cand = crate::candidates::Candidate {
                combo: ci as u32,
                pair: pi as u32,
            };
            if !candidates.is_valid(catalog, cand) {
                continue;
            }
            let query = candidates.to_query(catalog, cand);
            let value = agg_relational::execute_query(db, &query)?;
            matrix.set(ci, pi, value);
            stats.candidates_evaluated += 1;
            stats.rows_scanned += db.total_rows() as u64;
        }
    }
    Ok(matrix)
}

/// A `HashMap`-free helper for collecting document-wide literal sets from
/// scopes: merge per-claim scoped pairs into per-column sorted positions.
pub fn document_literal_union(
    n_pred_cols: usize,
    scoped_pairs: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<Vec<usize>> {
    let mut sets: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n_pred_cols];
    for (c, l) in scoped_pairs {
        sets[c].insert(l);
    }
    sets.into_iter().map(|s| s.into_iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::Candidate;
    use crate::fragments::CatalogConfig;
    use crate::scope::Scope;
    use agg_relational::{execute_query, Table};

    fn nfl_db() -> Database {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    fn full_scope(cat: &FragmentCatalog) -> Scope {
        let mut pairs = Vec::new();
        for (c, lits) in cat.literals.iter().enumerate() {
            for l in 0..lits.len() {
                pairs.push((c, l));
            }
        }
        Scope {
            agg_columns: (0..cat.agg_columns.len()).collect(),
            predicate_pairs: pairs,
        }
    }

    #[test]
    fn merged_results_agree_with_naive_execution() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scope = full_scope(&cat);
        let set = CandidateSet::enumerate(&cat, &scope, 2, 100_000);

        let mut evaluator = Evaluator::new(&db, &cat, Some(EvalCache::new()));
        let merged = evaluator.evaluate(&set).unwrap();

        for ci in 0..set.combos.len() {
            for pi in 0..set.agg_pairs.len() {
                let cand = Candidate {
                    combo: ci as u32,
                    pair: pi as u32,
                };
                if !set.is_valid(&cat, cand) {
                    continue;
                }
                let q = set.to_query(&cat, cand);
                let naive = execute_query(&db, &q).unwrap();
                assert_eq!(merged.get(ci, pi), naive, "mismatch for {}", q.to_sql(&db));
            }
        }
    }

    #[test]
    fn caching_eliminates_cube_executions_on_rerun() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scope = full_scope(&cat);
        let set = CandidateSet::enumerate(&cat, &scope, 2, 100_000);
        let cache = EvalCache::new();

        let mut e1 = Evaluator::new(&db, &cat, Some(cache.clone()));
        let m1 = e1.evaluate(&set).unwrap();
        assert!(e1.stats.cubes_executed > 0);

        let mut e2 = Evaluator::new(&db, &cat, Some(cache));
        let m2 = e2.evaluate(&set).unwrap();
        assert_eq!(e2.stats.cubes_executed, 0, "everything cached");
        assert!(e2.stats.cubes_cached > 0);
        assert_eq!(m1.len(), m2.len());
        for ci in 0..set.combos.len() {
            for pi in 0..set.agg_pairs.len() {
                assert_eq!(m1.get(ci, pi), m2.get(ci, pi));
            }
        }
    }

    #[test]
    fn merging_without_cache_still_works() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scope = full_scope(&cat);
        let set = CandidateSet::enumerate(&cat, &scope, 2, 100_000);
        let mut e = Evaluator::new(&db, &cat, None);
        let m = e.evaluate(&set).unwrap();
        assert!(!m.is_empty());
        assert!(e.stats.cubes_executed > 0);
        assert_eq!(e.stats.cubes_cached, 0);
    }

    #[test]
    fn naive_strategy_matches_merged() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scope = Scope {
            agg_columns: vec![0, 1],
            predicate_pairs: vec![(0, 0), (1, 0)],
        };
        let set = CandidateSet::enumerate(&cat, &scope, 2, 1000);
        let mut stats = EvalStats::default();
        let naive = evaluate_naive(&db, &cat, &set, &mut stats).unwrap();
        let mut e = Evaluator::new(&db, &cat, None);
        let merged = e.evaluate(&set).unwrap();
        for ci in 0..set.combos.len() {
            for pi in 0..set.agg_pairs.len() {
                let cand = Candidate {
                    combo: ci as u32,
                    pair: pi as u32,
                };
                if !set.is_valid(&cat, cand) {
                    continue;
                }
                assert_eq!(naive.get(ci, pi), merged.get(ci, pi));
            }
        }
        assert!(stats.candidates_evaluated > 0);
        // Merging needs far fewer row scans than naive evaluation.
        assert!(e.stats.rows_scanned < stats.rows_scanned);
    }

    #[test]
    fn document_literal_union_merges_and_sorts() {
        let union = document_literal_union(3, vec![(0, 2), (0, 1), (2, 0), (0, 2)]);
        assert_eq!(union[0], vec![1, 2]);
        assert!(union[1].is_empty());
        assert_eq!(union[2], vec![0]);
    }

    #[test]
    fn document_literals_widen_cube_coverage() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        // Claim A only uses literal 0 of column 0; with document literals
        // covering all of column 0, a second claim using literal 1 hits the
        // same cached slice.
        let scope_a = Scope {
            agg_columns: vec![0],
            predicate_pairs: vec![(0, 0)],
        };
        let scope_b = Scope {
            agg_columns: vec![0],
            predicate_pairs: vec![(0, 1)],
        };
        let set_a = CandidateSet::enumerate(&cat, &scope_a, 1, 100);
        let set_b = CandidateSet::enumerate(&cat, &scope_b, 1, 100);
        let cache = EvalCache::new();
        let doc_lits =
            document_literal_union(cat.predicate_columns.len(), vec![(0usize, 0usize), (0, 1)]);
        let mut e = Evaluator::new(&db, &cat, Some(cache));
        e.set_document_literals(doc_lits);
        e.evaluate(&set_a).unwrap();
        let executed_after_a = e.stats.cubes_executed;
        e.evaluate(&set_b).unwrap();
        // Claim B's cubes were already computed by claim A (same dims,
        // document-wide literals).
        assert_eq!(e.stats.cubes_executed, executed_after_a);
    }
}
