//! Massive-scale candidate evaluation — `RefineByEval`, Algorithm 4 (§6),
//! restructured around the **cube-task scheduler**.
//!
//! Evaluating each candidate separately would be hopeless (Table 6 of the
//! paper: >40 minutes of query time on the full test set). Instead:
//!
//! * candidates of one claim are grouped by their **predicate column set**;
//!   each group becomes one cube query covering every literal combination
//!   (§6.2, query merging);
//! * the relevant literals of each cube are **canonical**: a column's full
//!   catalog literal list whenever it fits a cube dimension (falling back
//!   to §6.3's document-wide sets for very wide columns), so every claim
//!   of every document requests identical coverage per cache key and cube
//!   slices are reusable across claims, EM iterations, and documents;
//! * [`Evaluator::evaluate_all`] plans **all claims of a document at
//!   once**: per-claim groups that need the same (dimensions, literals)
//!   cube collapse into one cube task (counted as
//!   [`EvalStats::tasks_deduped`]), and the resulting task set — the
//!   claims × cubes work of the whole document — executes on a scoped
//!   worker wave ([`Evaluator::set_threads`] workers) or on a shared
//!   [`CubeScheduler`] spanning every document of a batch
//!   ([`Evaluator::set_scheduler`], see `pipeline::BatchVerifier`).
//!   Finished cubes are demultiplexed back into per-claim
//!   [`ResultsMatrix`] slots. The probe/bundle/wave/collect protocol
//!   itself lives in `agg_relational::schedule::run_requests` — shared
//!   with `MergePlan` — which also **fuses** the wave's same-scope tasks
//!   into single row passes (`ScanGroup`), so a wave costs one table scan
//!   per distinct table scope instead of one per task;
//! * slices are stored in the shared [`EvalCache`] keyed by (aggregation
//!   function, aggregation column, dimension set) — the cache granularity
//!   the paper found to perform best. The cache is **lock-striped** into
//!   shards, and every miss goes through the cache's **single-flight**
//!   latch: of N workers missing the same key concurrently, exactly one
//!   executes the cube and the rest block for its published slice
//!   ([`EvalStats::singleflight_waits`]). With [`TaskBundling::Canonical`]
//!   (batch mode) the executed-scan set is fully order-independent, so
//!   batched verification scans *exactly* as many rows as a sequential
//!   run — the CI dedup gate asserts the equality;
//! * cube tasks scan sequentially — parallelism comes from running many
//!   cubes at once — so f64 accumulation order, and therefore every
//!   report, is bit-identical across worker counts. Dense accumulator
//!   grids are drawn from an optional [`GridArena`]
//!   ([`Evaluator::set_arena`]) so buffers persist across cube executions
//!   instead of being reallocated per cube;
//! * ratio aggregates (`Percentage`, `ConditionalProbability`) are derived
//!   from `Count` slices per footnote 1.

use crate::candidates::CandidateSet;
use crate::fragments::FragmentCatalog;
use agg_relational::{
    ratio_from_counts, run_requests, AggColumn, AggFunction, CachedSlice, ColumnRef, CubeScheduler,
    Database, EvalCache, GridArena, Result, Value, WaveExec, WaveRequest,
};
use std::collections::BTreeMap;
use std::sync::Arc;

pub use agg_relational::TaskBundling;

/// Per-run evaluation statistics (feeds Table 6 and `RunStats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStats {
    /// Candidate (query, claim) evaluations resolved.
    pub candidates_evaluated: u64,
    /// Cube queries actually executed on behalf of this evaluator.
    pub cubes_executed: u64,
    /// Cube slice requests served from the cache.
    pub cubes_cached: u64,
    /// Real rows read by this evaluator's fused scan passes. Each pass
    /// charges its relation length once, however many cube grids it feeds
    /// — the physical I/O, not the per-task ledger.
    pub rows_scanned: u64,
    /// Cube tasks this evaluator submitted and saw executed (scheduler
    /// accounting twin of [`EvalStats::cubes_executed`]).
    pub tasks_executed: u64,
    /// Aggregate-key requests resolved without a new execution: merged
    /// into another claim's identical cube group at planning time, or
    /// satisfied by another worker's in-flight computation
    /// (single-flight). Counted per key in both cases, so the value is
    /// comparable across modes and against [`EvalStats::tasks_executed`].
    pub tasks_deduped: u64,
    /// Subset of [`EvalStats::tasks_deduped`]: requests that blocked on
    /// another worker's in-flight cube and received its published slice.
    pub singleflight_waits: u64,
    /// Fused row passes executed on behalf of this evaluator: same-scope
    /// tasks of one wave share a single scan
    /// (`agg_relational::schedule::ScanGroup`), so this is the number of
    /// physical table scans — compare with [`EvalStats::tasks_executed`]
    /// for the fusion factor.
    pub scan_passes: u64,
    /// Poisoned-flight wake-ups absorbed by this evaluator's waves (each
    /// re-probes the cache, bounded per aggregate by
    /// `agg_relational::MAX_POISON_RETRIES`). 0 in fault-free runs.
    pub poison_retries: u64,
    /// Compressed storage blocks decoded by this evaluator's scans (per
    /// member grid; 0 when scans ran on plain columns).
    pub blocks_scanned: u64,
    /// Blocks bulk-applied from zone-map metadata without decoding.
    pub blocks_skipped: u64,
    /// Encoded payload bytes read by the decoded blocks.
    pub bytes_scanned: u64,
    /// Fixed scan partitions executed by this evaluator's passes (charged
    /// once per pass like [`EvalStats::rows_scanned`]; single-partition
    /// passes charge 0). Worker-count independent by the determinism
    /// contract.
    pub partitions_scanned: u64,
    /// Partition-grid merges performed (per member task). Worker-count
    /// independent.
    pub partition_merges: u64,
    /// Max distinct workers observed on any one partitioned pass — the
    /// only counter here that may legitimately vary run to run.
    pub partition_parallelism: u32,
    /// Cached grids brought forward by a **patch pass** — a scan of only
    /// the rows appended since the grid's checkpoint — instead of a full
    /// recomputation. See `agg_relational::cube::ScanCheckpoint`.
    pub grids_patched: u64,
    /// Rows scanned by patch passes only (a subset of
    /// [`EvalStats::rows_scanned`]) — the incremental re-verification
    /// cost after appends.
    pub delta_rows_scanned: u64,
}

impl EvalStats {
    pub fn merge(&mut self, other: &EvalStats) {
        self.candidates_evaluated += other.candidates_evaluated;
        self.cubes_executed += other.cubes_executed;
        self.cubes_cached += other.cubes_cached;
        self.rows_scanned += other.rows_scanned;
        self.tasks_executed += other.tasks_executed;
        self.tasks_deduped += other.tasks_deduped;
        self.singleflight_waits += other.singleflight_waits;
        self.scan_passes += other.scan_passes;
        self.poison_retries += other.poison_retries;
        self.blocks_scanned += other.blocks_scanned;
        self.blocks_skipped += other.blocks_skipped;
        self.bytes_scanned += other.bytes_scanned;
        self.partitions_scanned += other.partitions_scanned;
        self.partition_merges += other.partition_merges;
        self.partition_parallelism = self.partition_parallelism.max(other.partition_parallelism);
        self.grids_patched += other.grids_patched;
        self.delta_rows_scanned += other.delta_rows_scanned;
    }

    /// Average member tasks per fused pass (1.0 when nothing fused; 0.0
    /// when nothing executed).
    pub fn fused_tasks_per_pass(&self) -> f64 {
        if self.scan_passes == 0 {
            0.0
        } else {
            self.tasks_executed as f64 / self.scan_passes as f64
        }
    }
}

/// Dense result matrix: one `Option<f64>` per (combo, aggregate pair).
#[derive(Debug, Clone)]
pub struct ResultsMatrix {
    n_pairs: usize,
    data: Vec<Option<f64>>,
}

impl ResultsMatrix {
    fn new(n_combos: usize, n_pairs: usize) -> ResultsMatrix {
        ResultsMatrix {
            n_pairs,
            data: vec![None; n_combos * n_pairs],
        }
    }

    #[inline]
    pub fn get(&self, combo: usize, pair: usize) -> Option<f64> {
        self.data[combo * self.n_pairs + pair]
    }

    #[inline]
    fn set(&mut self, combo: usize, pair: usize, value: Option<f64>) {
        self.data[combo * self.n_pairs + pair] = value;
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// How one aggregate pair reads its value from a cube slice.
#[derive(Debug, Clone, Copy)]
enum PairPlan {
    /// Read the value aggregate at `slice` directly.
    Direct { slice: usize },
    /// `100 · count(assignment) / count(all-unrestricted)`.
    Percentage { count_slice: usize },
    /// `100 · count(assignment) / count(condition only)`.
    CondProb { count_slice: usize },
}

/// The widest catalog literal list that is canonicalized into a cube
/// dimension wholesale (the cube operator itself admits at most 253
/// literals plus the `OTHER` bucket per dimension). Columns above this
/// fall back to document-wide literal sets.
const CANONICAL_LITERAL_CAP: usize = 253;

/// One distinct cube required by the document: a (dimensions, relevant
/// literals) pair plus the union of value aggregates every claim needs
/// from it.
struct CubeGroup {
    cols: Vec<u16>,
    dims: Vec<ColumnRef>,
    relevant: Vec<Vec<Value>>,
    aggs: Vec<(AggFunction, AggColumn)>,
}

/// One claim's combos that read from a [`CubeGroup`].
struct ClaimGroup {
    group: usize,
    combo_ids: Vec<u32>,
    /// Claim value-aggregate slot → aggregate index within the group.
    slot_map: Vec<usize>,
}

/// The per-claim part of a document plan.
struct ClaimPlan {
    plans: Vec<PairPlan>,
    n_value_aggs: usize,
    claim_groups: Vec<ClaimGroup>,
}

/// Evaluates candidate sets against the database with merging, caching,
/// and cube-task scheduling.
pub struct Evaluator<'a> {
    db: &'a Arc<Database>,
    catalog: &'a FragmentCatalog,
    cache: Option<EvalCache>,
    /// Document-wide relevant literals per catalog predicate column
    /// (literal positions) — §6.3's cache-friendly literal sets.
    document_literals: Vec<Vec<usize>>,
    /// Concurrent cube tasks per evaluation wave (`CheckerConfig::threads`)
    /// when no shared scheduler is attached.
    threads: usize,
    /// Dense-grid buffer pool persisted across cube executions (batch mode
    /// hands each worker thread one arena for its whole document stream).
    arena: Option<&'a GridArena>,
    /// Shared cube-task scheduler (batch mode): tasks from every document
    /// of the batch drain through one pool instead of per-wave threads.
    scheduler: Option<&'a CubeScheduler>,
    /// How missing aggregates are grouped into tasks (see [`TaskBundling`]).
    bundling: TaskBundling,
    /// Fuse same-scope tasks of one wave into shared scan passes; `false`
    /// reproduces the unfused one-pass-per-task shape for A/B comparison.
    fuse: bool,
    /// Storage blocks per fixed scan partition (`CheckerConfig::
    /// partition_blocks`; 0 disables partitioning). Part of the
    /// determinism contract's inputs, never of its outputs.
    partition_blocks: usize,
    pub stats: EvalStats,
}

impl<'a> Evaluator<'a> {
    /// `cache = None` gives the "+ Query Merging" row of Table 6 (merged
    /// cubes, no reuse); `Some` adds "+ Caching".
    pub fn new(
        db: &'a Arc<Database>,
        catalog: &'a FragmentCatalog,
        cache: Option<EvalCache>,
    ) -> Evaluator<'a> {
        Evaluator {
            db,
            catalog,
            cache,
            document_literals: vec![Vec::new(); catalog.predicate_columns.len()],
            threads: 1,
            arena: None,
            scheduler: None,
            bundling: TaskBundling::default(),
            fuse: true,
            partition_blocks: agg_relational::DEFAULT_PARTITION_BLOCKS,
            stats: EvalStats::default(),
        }
    }

    /// Choose how missing aggregates bundle into cube tasks (results are
    /// unaffected; see [`TaskBundling`]).
    pub fn set_bundling(&mut self, bundling: TaskBundling) {
        self.bundling = bundling;
    }

    /// Enable or disable fused multi-cube scans (results are unaffected —
    /// fusion is purely physical; see `agg_relational::schedule`).
    pub fn set_fusion(&mut self, fuse: bool) {
        self.fuse = fuse;
    }

    /// Set the fixed scan-partition span in storage blocks (0 disables
    /// partitioning). Results are unaffected as long as every run over
    /// the same corpus uses the same span — the span shapes the
    /// deterministic partition/merge tree, not the semantics.
    pub fn set_partition_blocks(&mut self, blocks: usize) {
        self.partition_blocks = blocks;
    }

    /// Run up to `threads` concurrent cube tasks per evaluation wave (the
    /// `CheckerConfig::threads` knob). Ignored while a shared scheduler is
    /// attached — the batch pool then provides the parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Reuse dense-grid buffers from `arena` across this evaluator's cube
    /// executions (and, when callers share the arena, across documents).
    pub fn set_arena(&mut self, arena: &'a GridArena) {
        self.arena = Some(arena);
    }

    /// Submit cube tasks to a shared scheduler (the batch pool) instead of
    /// spawning a per-wave scoped pool. The evaluator still helps drain
    /// the queue while its own tasks are pending.
    pub fn set_scheduler(&mut self, scheduler: &'a CubeScheduler) {
        self.scheduler = Some(scheduler);
    }

    /// Declare the document-wide literal sets: the union of scoped literal
    /// positions per predicate column over *all* claims of the document.
    pub fn set_document_literals(&mut self, literals: Vec<Vec<usize>>) {
        assert_eq!(literals.len(), self.catalog.predicate_columns.len());
        self.document_literals = literals;
    }

    /// Evaluate every candidate of one claim. Equivalent to a one-claim
    /// [`Evaluator::evaluate_all`].
    pub fn evaluate(&mut self, candidates: &CandidateSet) -> Result<ResultsMatrix> {
        Ok(self
            .evaluate_all(std::slice::from_ref(candidates))?
            .pop()
            .expect("one matrix per candidate set"))
    }

    /// Evaluate every candidate of **all** claims of a document in one
    /// scheduling wave: plan the distinct cubes the claims need, submit
    /// them as `CubeTask`s (deduplicating identical requests across
    /// claims and — via the cache's single-flight latch — across
    /// concurrent workers), execute, and demultiplex the finished slices
    /// back into one [`ResultsMatrix`] per claim.
    pub fn evaluate_all(&mut self, sets: &[CandidateSet]) -> Result<Vec<ResultsMatrix>> {
        // ---- Phase 1: plan claims and collect distinct cube groups. ----
        let mut groups: Vec<CubeGroup> = Vec::new();
        let claim_plans: Vec<ClaimPlan> = sets
            .iter()
            .map(|set| self.plan_claim(set, &mut groups))
            .collect();

        // ---- Phase 2: run the wave through the shared orchestration
        // layer (`agg_relational::schedule::run_requests` — the one
        // implementation of the probe/bundle/fuse/collect protocol): one
        // atomic cache probe for the whole wave, missing aggregates
        // bundled into tasks, same-scope tasks fused into shared scan
        // passes, execution on the batch scheduler or a scoped pool, and
        // collection with poisoned flights retried inline.
        let requests: Vec<WaveRequest<'_>> = groups
            .iter()
            .map(|group| WaveRequest {
                dims: &group.dims,
                relevant: &group.relevant,
                aggs: &group.aggs,
            })
            .collect();
        let exec = WaveExec {
            cache: self.cache.as_ref(),
            arena: self.arena,
            scheduler: self.scheduler,
            threads: self.threads,
            bundling: self.bundling,
            fuse: self.fuse,
            partition_blocks: self.partition_blocks,
        };
        let outcome = run_requests(self.db, &exec, &requests)?;
        self.stats.cubes_cached += outcome.stats.key_hits;
        // A wave joined in flight was deduplicated exactly like one merged
        // at planning time; both land in `tasks_deduped`, waits also in
        // their own counter (net of poison-retry takeovers, which the
        // orchestration already moved back across the ledger).
        self.stats.singleflight_waits += outcome.stats.key_waits;
        self.stats.tasks_deduped += outcome.stats.key_waits;
        self.stats.cubes_executed += outcome.stats.tasks_executed;
        self.stats.tasks_executed += outcome.stats.tasks_executed;
        self.stats.rows_scanned += outcome.stats.rows_scanned;
        self.stats.scan_passes += outcome.stats.scan_passes;
        self.stats.poison_retries += outcome.stats.poison_retries;
        self.stats.blocks_scanned += outcome.stats.blocks_scanned;
        self.stats.blocks_skipped += outcome.stats.blocks_skipped;
        self.stats.bytes_scanned += outcome.stats.bytes_scanned;
        self.stats.partitions_scanned += outcome.stats.partitions_scanned;
        self.stats.partition_merges += outcome.stats.partition_merges;
        self.stats.partition_parallelism = self
            .stats
            .partition_parallelism
            .max(outcome.stats.partition_parallelism);
        self.stats.grids_patched += outcome.stats.grids_patched;
        self.stats.delta_rows_scanned += outcome.stats.delta_rows_scanned;
        let resolved = outcome.slices;

        // ---- Phase 3: demultiplex into per-claim result matrices. ----
        Ok(sets
            .iter()
            .zip(&claim_plans)
            .map(|(set, plan)| self.demux_claim(set, plan, &groups, &resolved))
            .collect())
    }

    /// Plan one claim: pair plans, combo groups, and their mapping into the
    /// document-wide cube groups (inserting new groups as needed).
    fn plan_claim(&mut self, candidates: &CandidateSet, groups: &mut Vec<CubeGroup>) -> ClaimPlan {
        // Map each aggregate pair to the value aggregate it needs.
        let mut value_aggs: Vec<(AggFunction, AggColumn)> = Vec::new();
        let agg_slot = |aggs: &mut Vec<(AggFunction, AggColumn)>, f: AggFunction, c: AggColumn| {
            aggs.iter()
                .position(|(af, ac)| *af == f && *ac == c)
                .unwrap_or_else(|| {
                    aggs.push((f, c));
                    aggs.len() - 1
                })
        };
        let plans: Vec<PairPlan> = candidates
            .agg_pairs
            .iter()
            .map(|&(fi, ai)| {
                let f = self.catalog.functions[fi as usize];
                let col = self.catalog.agg_columns[ai as usize];
                match f {
                    AggFunction::Percentage => PairPlan::Percentage {
                        count_slice: agg_slot(&mut value_aggs, AggFunction::Count, col),
                    },
                    AggFunction::ConditionalProbability => PairPlan::CondProb {
                        count_slice: agg_slot(&mut value_aggs, AggFunction::Count, col),
                    },
                    _ => PairPlan::Direct {
                        slice: agg_slot(&mut value_aggs, f, col),
                    },
                }
            })
            .collect();

        // Group combos by (sorted) predicate column set.
        let mut combo_groups: BTreeMap<Vec<u16>, Vec<u32>> = BTreeMap::new();
        for (ci, combo) in candidates.combos.iter().enumerate() {
            let mut cols: Vec<u16> = combo.iter().map(|(c, _)| *c).collect();
            cols.sort_unstable();
            combo_groups.entry(cols).or_default().push(ci as u32);
        }

        let claim_groups = combo_groups
            .into_iter()
            .map(|(cols, combo_ids)| {
                let dims: Vec<ColumnRef> = cols
                    .iter()
                    .map(|&c| self.catalog.predicate_columns[c as usize])
                    .collect();
                // Canonical literals per dimension: the column's full
                // catalog literal list whenever it fits a cube dimension.
                // Every claim of every document then requests *identical*
                // coverage per cache key, which is what makes cube
                // executions dedupable across concurrent workers with an
                // exact row count — batched `rows_scanned` equals the
                // sequential run no matter how the scheduler interleaves
                // documents. Columns too wide for a cube dimension fall
                // back to the document-wide literal union (§6.3), and to
                // this claim's own literals when none were declared.
                let relevant: Vec<Vec<Value>> = cols
                    .iter()
                    .map(|&c| {
                        let catalog_lits = &self.catalog.literals[c as usize];
                        if catalog_lits.len() <= CANONICAL_LITERAL_CAP {
                            return catalog_lits.clone();
                        }
                        let doc_lits = &self.document_literals[c as usize];
                        let positions: Vec<usize> = if doc_lits.is_empty() {
                            candidates
                                .combos
                                .iter()
                                .flat_map(|combo| combo.iter())
                                .filter(|(cc, _)| *cc == c)
                                .map(|(_, l)| *l as usize)
                                .collect::<std::collections::BTreeSet<_>>()
                                .into_iter()
                                .collect()
                        } else {
                            doc_lits.clone()
                        };
                        positions
                            .into_iter()
                            .map(|l| self.catalog.literals[c as usize][l].clone())
                            .collect()
                    })
                    .collect();

                // Claims needing the same (dims, literals) cube share one
                // group — and therefore one task. Dedup is counted in
                // aggregate-key units (every key this claim would have
                // probed separately), the same unit the single-flight
                // path uses, so the counter is comparable across modes.
                let group = match groups
                    .iter()
                    .position(|g| g.cols == cols && g.relevant == relevant)
                {
                    Some(idx) => {
                        self.stats.tasks_deduped += value_aggs.len() as u64;
                        idx
                    }
                    None => {
                        groups.push(CubeGroup {
                            cols,
                            dims,
                            relevant,
                            aggs: Vec::new(),
                        });
                        groups.len() - 1
                    }
                };
                let slot_map = value_aggs
                    .iter()
                    .map(|&(f, c)| agg_slot(&mut groups[group].aggs, f, c))
                    .collect();
                ClaimGroup {
                    group,
                    combo_ids,
                    slot_map,
                }
            })
            .collect();

        ClaimPlan {
            plans,
            n_value_aggs: value_aggs.len(),
            claim_groups,
        }
    }

    /// Resolve one claim's matrix from the finished cube groups.
    fn demux_claim(
        &mut self,
        candidates: &CandidateSet,
        plan: &ClaimPlan,
        groups: &[CubeGroup],
        resolved: &[Vec<CachedSlice>],
    ) -> ResultsMatrix {
        let n_pairs = candidates.agg_pairs.len();
        let mut matrix = ResultsMatrix::new(candidates.combos.len(), n_pairs);
        for claim_group in &plan.claim_groups {
            let group = &groups[claim_group.group];
            let cols = &group.cols;
            let dims_len = group.dims.len();
            // This claim's value-aggregate slices, in claim slot order.
            debug_assert_eq!(claim_group.slot_map.len(), plan.n_value_aggs);
            let slices: Vec<&CachedSlice> = claim_group
                .slot_map
                .iter()
                .map(|&g| &resolved[claim_group.group][g])
                .collect();

            // Resolve every combo × pair in this group.
            for &ci in &claim_group.combo_ids {
                let combo = &candidates.combos[ci as usize];
                // Assignment by value, aligned with the group's dims.
                let mut assignment: Vec<Option<Value>> = vec![None; dims_len];
                // Condition position (first = highest-relevance pair).
                let mut condition_dim: Option<usize> = None;
                for (rank, &(c, l)) in combo.iter().enumerate() {
                    let d = cols.iter().position(|cc| *cc == c).expect("dim present");
                    assignment[d] = Some(self.catalog.literals[c as usize][l as usize].clone());
                    if rank == 0 {
                        condition_dim = Some(d);
                    }
                }
                for (pi, pair_plan) in plan.plans.iter().enumerate() {
                    let value = match pair_plan {
                        PairPlan::Direct { slice } => {
                            slices[*slice].lookup(&assignment).ok().flatten()
                        }
                        PairPlan::Percentage { count_slice } => {
                            let s = slices[*count_slice];
                            let num = s.lookup_count(&assignment).ok();
                            let all: Vec<Option<Value>> = vec![None; dims_len];
                            let den = s.lookup_count(&all).ok();
                            match (num, den) {
                                (Some(n), Some(d)) => ratio_from_counts(n, d),
                                _ => None,
                            }
                        }
                        PairPlan::CondProb { count_slice } => match condition_dim {
                            None => None, // invalid: no condition predicate
                            Some(cd) => {
                                let s = slices[*count_slice];
                                let num = s.lookup_count(&assignment).ok();
                                let mut cond: Vec<Option<Value>> = vec![None; dims_len];
                                cond[cd] = assignment[cd].clone();
                                let den = s.lookup_count(&cond).ok();
                                match (num, den) {
                                    (Some(n), Some(d)) => ratio_from_counts(n, d),
                                    _ => None,
                                }
                            }
                        },
                    };
                    matrix.set(ci as usize, pi, value);
                }
            }
            self.stats.candidates_evaluated += claim_group.combo_ids.len() as u64 * n_pairs as u64;
        }
        matrix
    }
}

/// The naive evaluation strategy of Table 6: every candidate becomes its
/// own query, executed separately — no merging, no caching.
pub fn evaluate_naive(
    db: &Database,
    catalog: &FragmentCatalog,
    candidates: &CandidateSet,
    stats: &mut EvalStats,
) -> Result<ResultsMatrix> {
    let n_pairs = candidates.agg_pairs.len();
    let mut matrix = ResultsMatrix::new(candidates.combos.len(), n_pairs);
    for ci in 0..candidates.combos.len() {
        for pi in 0..n_pairs {
            let cand = crate::candidates::Candidate {
                combo: ci as u32,
                pair: pi as u32,
            };
            if !candidates.is_valid(catalog, cand) {
                continue;
            }
            let query = candidates.to_query(catalog, cand);
            let value = agg_relational::execute_query(db, &query)?;
            matrix.set(ci, pi, value);
            stats.candidates_evaluated += 1;
            stats.rows_scanned += db.total_rows() as u64;
        }
    }
    Ok(matrix)
}

/// A `HashMap`-free helper for collecting document-wide literal sets from
/// scopes: merge per-claim scoped pairs into per-column sorted positions.
pub fn document_literal_union(
    n_pred_cols: usize,
    scoped_pairs: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<Vec<usize>> {
    let mut sets: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n_pred_cols];
    for (c, l) in scoped_pairs {
        sets[c].insert(l);
    }
    sets.into_iter().map(|s| s.into_iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::Candidate;
    use crate::fragments::CatalogConfig;
    use crate::scope::Scope;
    use agg_relational::{execute_query, Table};

    fn nfl_db() -> Arc<Database> {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                        "4".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1989),
                        Value::Int(1995),
                        Value::Int(2014),
                        Value::Int(1983),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        Arc::new(db)
    }

    fn full_scope(cat: &FragmentCatalog) -> Scope {
        let mut pairs = Vec::new();
        for (c, lits) in cat.literals.iter().enumerate() {
            for l in 0..lits.len() {
                pairs.push((c, l));
            }
        }
        Scope {
            agg_columns: (0..cat.agg_columns.len()).collect(),
            predicate_pairs: pairs,
        }
    }

    #[test]
    fn merged_results_agree_with_naive_execution() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scope = full_scope(&cat);
        let set = CandidateSet::enumerate(&cat, &scope, 2, 100_000);

        let mut evaluator = Evaluator::new(&db, &cat, Some(EvalCache::new()));
        let merged = evaluator.evaluate(&set).unwrap();

        for ci in 0..set.combos.len() {
            for pi in 0..set.agg_pairs.len() {
                let cand = Candidate {
                    combo: ci as u32,
                    pair: pi as u32,
                };
                if !set.is_valid(&cat, cand) {
                    continue;
                }
                let q = set.to_query(&cat, cand);
                let naive = execute_query(&db, &q).unwrap();
                assert_eq!(merged.get(ci, pi), naive, "mismatch for {}", q.to_sql(&db));
            }
        }
    }

    #[test]
    fn caching_eliminates_cube_executions_on_rerun() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scope = full_scope(&cat);
        let set = CandidateSet::enumerate(&cat, &scope, 2, 100_000);
        let cache = EvalCache::new();

        let mut e1 = Evaluator::new(&db, &cat, Some(cache.clone()));
        let m1 = e1.evaluate(&set).unwrap();
        assert!(e1.stats.cubes_executed > 0);

        let mut e2 = Evaluator::new(&db, &cat, Some(cache));
        let m2 = e2.evaluate(&set).unwrap();
        assert_eq!(e2.stats.cubes_executed, 0, "everything cached");
        assert!(e2.stats.cubes_cached > 0);
        assert_eq!(m1.len(), m2.len());
        for ci in 0..set.combos.len() {
            for pi in 0..set.agg_pairs.len() {
                assert_eq!(m1.get(ci, pi), m2.get(ci, pi));
            }
        }
    }

    #[test]
    fn merging_without_cache_still_works() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scope = full_scope(&cat);
        let set = CandidateSet::enumerate(&cat, &scope, 2, 100_000);
        let mut e = Evaluator::new(&db, &cat, None);
        let m = e.evaluate(&set).unwrap();
        assert!(!m.is_empty());
        assert!(e.stats.cubes_executed > 0);
        assert_eq!(e.stats.cubes_cached, 0);
    }

    #[test]
    fn naive_strategy_matches_merged() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scope = Scope {
            agg_columns: vec![0, 1],
            predicate_pairs: vec![(0, 0), (1, 0)],
        };
        let set = CandidateSet::enumerate(&cat, &scope, 2, 1000);
        let mut stats = EvalStats::default();
        let naive = evaluate_naive(&db, &cat, &set, &mut stats).unwrap();
        let mut e = Evaluator::new(&db, &cat, None);
        let merged = e.evaluate(&set).unwrap();
        for ci in 0..set.combos.len() {
            for pi in 0..set.agg_pairs.len() {
                let cand = Candidate {
                    combo: ci as u32,
                    pair: pi as u32,
                };
                if !set.is_valid(&cat, cand) {
                    continue;
                }
                assert_eq!(naive.get(ci, pi), merged.get(ci, pi));
            }
        }
        assert!(stats.candidates_evaluated > 0);
        // Merging needs far fewer row scans than naive evaluation.
        assert!(e.stats.rows_scanned < stats.rows_scanned);
    }

    #[test]
    fn document_literal_union_merges_and_sorts() {
        let union = document_literal_union(3, vec![(0, 2), (0, 1), (2, 0), (0, 2)]);
        assert_eq!(union[0], vec![1, 2]);
        assert!(union[1].is_empty());
        assert_eq!(union[2], vec![0]);
    }

    /// A cube group's identity: dimensions, relevant literals, aggregates.
    type GroupSpec = (
        Vec<ColumnRef>,
        Vec<Vec<Value>>,
        Vec<(AggFunction, AggColumn)>,
    );

    /// The group (dims, literals, aggregates) the evaluator will request
    /// for [`single_group_set`], mirroring `plan_claim`'s canonicalization:
    /// the column's full catalog literal list, and the claim's value
    /// aggregates (one `Count(*)` here).
    fn canonical_group(cat: &FragmentCatalog) -> GroupSpec {
        let dims = vec![cat.predicate_columns[0]];
        let relevant = vec![cat.literals[0].clone()];
        (dims, relevant, vec![(AggFunction::Count, AggColumn::Star)])
    }

    /// A candidate set with exactly one combo on predicate column 0 and one
    /// Count(*) aggregate pair — exactly one cube group.
    fn single_group_set(cat: &FragmentCatalog) -> CandidateSet {
        let count_fi = cat
            .functions
            .iter()
            .position(|f| *f == AggFunction::Count)
            .expect("catalog has Count") as u16;
        let star_ai = cat
            .agg_columns
            .iter()
            .position(|c| *c == AggColumn::Star)
            .expect("catalog has *") as u16;
        CandidateSet {
            combos: vec![vec![(0u16, 0u16)]],
            agg_pairs: vec![(count_fi, star_ai)],
        }
    }

    /// 8 concurrent evaluators hammering one cube's cache keys, all of
    /// which are pre-claimed by the test: every evaluator must block on
    /// the in-flight computation (deterministically — the guards are held
    /// until all waits are registered), receive the single published cube,
    /// and produce a bit-identical results matrix without executing
    /// anything itself.
    #[test]
    fn single_flight_stress_eight_workers_share_one_execution() {
        use agg_relational::{CacheKey, CubeQuery, Flight};
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let set = single_group_set(&cat);
        let (dims, relevant, aggs) = canonical_group(&cat);
        let keys: Vec<CacheKey> = aggs
            .iter()
            .map(|&(f, c)| CacheKey::new(f, c, dims.clone(), db.version()))
            .collect();
        let n_keys = keys.len() as u64;
        let workers = 8u64;

        // Reference: a solo evaluation over a fresh cache.
        let mut solo = Evaluator::new(&db, &cat, Some(EvalCache::new()));
        let expected = solo.evaluate(&set).unwrap();

        let cache = EvalCache::new();
        // Phase 1: pre-claim every key of the group.
        let guards: Vec<_> = cache
            .flight_batch(&keys, &relevant, db.watermark())
            .into_iter()
            .map(|f| match f {
                Flight::Compute(g) => g,
                other => panic!("expected to win every flight, got {other:?}"),
            })
            .collect();

        let results: Vec<(ResultsMatrix, EvalStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cache = cache.clone();
                    let (db, cat, set) = (&db, &cat, &set);
                    scope.spawn(move || {
                        // Phase 2: with all guards held, every key probe
                        // becomes a wait.
                        let mut e = Evaluator::new(db, cat, Some(cache));
                        let m = e.evaluate(set).unwrap();
                        (m, e.stats)
                    })
                })
                .collect();
            // Phase 3: all 8 evaluators have registered their waits;
            // compute the cube once and publish every slice.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
            while cache.stats().singleflight_waits() < workers * n_keys {
                assert!(
                    std::time::Instant::now() < deadline,
                    "evaluators never registered their waits"
                );
                std::thread::yield_now();
            }
            let cube = CubeQuery {
                dims: dims.clone(),
                relevant: relevant.clone(),
                aggregates: aggs.clone(),
            };
            let result = std::sync::Arc::new(cube.execute(&db).unwrap());
            for (pos, guard) in guards.into_iter().enumerate() {
                guard.fulfill(CachedSlice::new(
                    result.clone(),
                    pos,
                    aggs[pos].0,
                    db.watermark(),
                ));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (matrix, stats) in &results {
            // Bit-identical verdict input: every worker read the one
            // published cube.
            assert_eq!(matrix.len(), expected.len());
            for ci in 0..set.combos.len() {
                for pi in 0..set.agg_pairs.len() {
                    assert_eq!(matrix.get(ci, pi), expected.get(ci, pi));
                }
            }
            assert_eq!(stats.cubes_executed, 0, "nobody re-executed the cube");
            assert_eq!(stats.tasks_executed, 0);
            assert_eq!(stats.singleflight_waits, n_keys);
            assert_eq!(stats.tasks_deduped, n_keys);
            assert!(stats.tasks_deduped > 0);
        }
        // The cube was computed exactly once: one resident slice per key.
        assert_eq!(cache.len(), keys.len());
    }

    /// Dropping the pre-claimed guards poisons every flight: the blocked
    /// evaluators must wake, retry, recompute among themselves, and still
    /// produce correct, identical matrices.
    #[test]
    fn single_flight_poisoned_flights_recover_with_correct_results() {
        use agg_relational::{CacheKey, Flight};
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let set = single_group_set(&cat);
        let (dims, relevant, aggs) = canonical_group(&cat);
        let keys: Vec<CacheKey> = aggs
            .iter()
            .map(|&(f, c)| CacheKey::new(f, c, dims.clone(), db.version()))
            .collect();
        let n_keys = keys.len() as u64;
        let workers = 8u64;

        let mut solo = Evaluator::new(&db, &cat, Some(EvalCache::new()));
        let expected = solo.evaluate(&set).unwrap();

        let cache = EvalCache::new();
        let guards: Vec<_> = cache
            .flight_batch(&keys, &relevant, db.watermark())
            .into_iter()
            .map(|f| match f {
                Flight::Compute(g) => g,
                other => panic!("expected to win every flight, got {other:?}"),
            })
            .collect();

        let results: Vec<(ResultsMatrix, EvalStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cache = cache.clone();
                    let (db, cat, set) = (&db, &cat, &set);
                    scope.spawn(move || {
                        let mut e = Evaluator::new(db, cat, Some(cache));
                        let m = e.evaluate(set).unwrap();
                        (m, e.stats)
                    })
                })
                .collect();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
            while cache.stats().singleflight_waits() < workers * n_keys {
                assert!(
                    std::time::Instant::now() < deadline,
                    "evaluators never registered their waits"
                );
                std::thread::yield_now();
            }
            // The "computing" thread fails: every flight is poisoned.
            drop(guards);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut recomputed = 0u64;
        for (matrix, stats) in &results {
            for ci in 0..set.combos.len() {
                for pi in 0..set.agg_pairs.len() {
                    assert_eq!(matrix.get(ci, pi), expected.get(ci, pi));
                }
            }
            recomputed += stats.cubes_executed;
        }
        assert!(
            recomputed >= 1,
            "someone must have taken over the poisoned computation"
        );
    }

    #[test]
    fn document_literals_widen_cube_coverage() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        // Claim A only uses literal 0 of column 0; with document literals
        // covering all of column 0, a second claim using literal 1 hits the
        // same cached slice.
        let scope_a = Scope {
            agg_columns: vec![0],
            predicate_pairs: vec![(0, 0)],
        };
        let scope_b = Scope {
            agg_columns: vec![0],
            predicate_pairs: vec![(0, 1)],
        };
        let set_a = CandidateSet::enumerate(&cat, &scope_a, 1, 100);
        let set_b = CandidateSet::enumerate(&cat, &scope_b, 1, 100);
        let cache = EvalCache::new();
        let doc_lits =
            document_literal_union(cat.predicate_columns.len(), vec![(0usize, 0usize), (0, 1)]);
        let mut e = Evaluator::new(&db, &cat, Some(cache));
        e.set_document_literals(doc_lits);
        e.evaluate(&set_a).unwrap();
        let executed_after_a = e.stats.cubes_executed;
        e.evaluate(&set_b).unwrap();
        // Claim B's cubes were already computed by claim A (same dims,
        // document-wide literals).
        assert_eq!(e.stats.cubes_executed, executed_after_a);
    }
}
