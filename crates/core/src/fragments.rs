//! Query fragments and their keyword index (§4.2 of the paper).
//!
//! When a database is loaded, the catalog forms every potentially relevant
//! query fragment:
//!
//! * **aggregation functions** — the eight supported functions, each with a
//!   fixed keyword set;
//! * **aggregation columns** — `*` plus every numeric column, with keywords
//!   from the (decomposed) column name, the table name, synonym-free
//!   dictionary words, and the data-dictionary description if present;
//! * **equality predicates** — one fragment per `(column, literal)` pair,
//!   with keywords from the column and the literal's text.
//!
//! Keyword bags are indexed in three IR indexes (one per fragment
//! category), queried per claim by [`crate::matching`].

use crate::textutil::{is_stopword, keyword_terms};
use agg_ir::{Index, IndexBuilder};
use agg_nlp::stem::stem;
use agg_nlp::wordbreak::decompose_identifier;
use agg_relational::{AggColumn, AggFunction, ColumnRef, Database, Value};

/// Index-time limits.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Cap on distinct literals indexed per predicate column.
    pub max_literals_per_column: usize,
    /// Numeric columns become predicate columns only when their distinct
    /// count is at most this (years, ratings, … — not free-form measures).
    pub numeric_predicate_max_distinct: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            max_literals_per_column: 5000,
            numeric_predicate_max_distinct: 60,
        }
    }
}

/// All query fragments of a database plus their keyword indexes.
pub struct FragmentCatalog {
    /// The eight aggregation functions, in [`AggFunction::ALL`] order.
    pub functions: Vec<AggFunction>,
    /// `*` first, then every column. Numeric columns serve every function;
    /// categorical columns only count-like ones (the paper's Table 9
    /// ground truth includes `CountDistinct(Recipient)` over a string
    /// column, so aggregation columns cannot be numeric-only).
    pub agg_columns: Vec<AggColumn>,
    /// Whether each aggregation column is numeric (aligned with
    /// `agg_columns`; `*` counts as non-numeric).
    pub agg_col_numeric: Vec<bool>,
    /// Columns usable in equality predicates.
    pub predicate_columns: Vec<ColumnRef>,
    /// Distinct literals per predicate column (aligned with
    /// `predicate_columns`).
    pub literals: Vec<Vec<Value>>,
    fn_index: Index,
    col_index: Index,
    pred_index: Index,
    /// Maps predicate-index doc ids to `(column position, literal position)`.
    pred_docs: Vec<(u32, u32)>,
}

impl FragmentCatalog {
    /// Build the catalog for a database.
    pub fn build(db: &Database, config: &CatalogConfig) -> FragmentCatalog {
        // --- Aggregation functions --------------------------------------
        let functions: Vec<AggFunction> = AggFunction::ALL.to_vec();
        let mut fn_builder = IndexBuilder::new();
        for f in &functions {
            let terms: Vec<(String, f32)> = f.keywords().iter().map(|k| (stem(k), 1.0)).collect();
            fn_builder.add_document(terms.iter().map(|(t, w)| (t.as_str(), *w)));
        }

        // --- Aggregation columns ----------------------------------------
        let mut agg_columns = vec![AggColumn::Star];
        let mut agg_col_numeric = vec![false];
        for col in db.all_columns() {
            agg_columns.push(AggColumn::Column(col));
            agg_col_numeric.push(db.column(col).is_numeric());
        }
        let mut col_builder = IndexBuilder::new();
        for col in &agg_columns {
            let terms = match col {
                AggColumn::Star => star_keywords(db),
                AggColumn::Column(c) => column_keywords(db, *c),
            };
            col_builder.add_document(terms.iter().map(|(t, w)| (t.as_str(), *w)));
        }

        // --- Equality predicates ----------------------------------------
        let mut predicate_columns = Vec::new();
        let mut literals: Vec<Vec<Value>> = Vec::new();
        for col in db.all_columns() {
            let data = db.column(col);
            let col_literals: Vec<Value> = match data {
                agg_relational::ColumnData::Str { .. } => data
                    .dictionary()
                    .expect("string column has dictionary")
                    .iter()
                    .take(config.max_literals_per_column)
                    .map(|(_, s)| Value::Str(s.to_string()))
                    .collect(),
                _ => {
                    if data.distinct_count() > config.numeric_predicate_max_distinct {
                        continue;
                    }
                    distinct_numeric_literals(data, config.max_literals_per_column)
                }
            };
            if col_literals.is_empty() {
                continue;
            }
            predicate_columns.push(col);
            literals.push(col_literals);
        }

        let mut pred_builder = IndexBuilder::new();
        let mut pred_docs = Vec::new();
        for (ci, (col, lits)) in predicate_columns.iter().zip(&literals).enumerate() {
            let col_terms = column_keywords(db, *col);
            for (li, lit) in lits.iter().enumerate() {
                let mut terms: Vec<(String, f32)> = col_terms
                    .iter()
                    .map(|(t, w)| (t.clone(), w * 0.7))
                    .collect();
                terms.extend(literal_keywords(lit));
                pred_builder.add_document(terms.iter().map(|(t, w)| (t.as_str(), *w)));
                pred_docs.push((ci as u32, li as u32));
            }
        }

        FragmentCatalog {
            functions,
            agg_columns,
            agg_col_numeric,
            predicate_columns,
            literals,
            fn_index: fn_builder.build(),
            col_index: col_builder.build(),
            pred_index: pred_builder.build(),
            pred_docs,
        }
    }

    pub fn fn_index(&self) -> &Index {
        &self.fn_index
    }

    pub fn col_index(&self) -> &Index {
        &self.col_index
    }

    pub fn pred_index(&self) -> &Index {
        &self.pred_index
    }

    /// Resolve a predicate-index document id.
    pub fn pred_doc(&self, doc: u32) -> (usize, usize) {
        let (c, l) = self.pred_docs[doc as usize];
        (c as usize, l as usize)
    }

    /// Total number of predicate fragments.
    pub fn predicate_fragment_count(&self) -> usize {
        self.pred_docs.len()
    }

    /// The number of *simple aggregate queries* expressible over this
    /// database (Figure 8 of the paper): every function × aggregation
    /// column × choice of at most one literal per predicate column.
    /// Returned as `f64` — real data sets reach beyond 10¹².
    pub fn candidate_space(&self) -> f64 {
        let combos: f64 = self.literals.iter().map(|l| 1.0 + l.len() as f64).product();
        self.functions.len() as f64 * self.agg_columns.len() as f64 * combos
    }

    /// Log₁₀ of [`Self::candidate_space`] (safe for astronomically large
    /// spaces).
    pub fn candidate_space_log10(&self) -> f64 {
        let log_combos: f64 = self
            .literals
            .iter()
            .map(|l| (1.0 + l.len() as f64).log10())
            .sum();
        (self.functions.len() as f64).log10() + (self.agg_columns.len() as f64).log10() + log_combos
    }
}

/// Position of an aggregation function in a catalog's function list.
pub fn fn_position(catalog: &FragmentCatalog, f: AggFunction) -> Option<usize> {
    catalog.functions.iter().position(|g| *g == f)
}

/// Keywords for the `*` aggregation column: the table names plus generic
/// row-count vocabulary.
fn star_keywords(db: &Database) -> Vec<(String, f32)> {
    let mut terms: Vec<(String, f32)> = Vec::new();
    for t in db.tables() {
        for w in decompose_identifier(t.name()) {
            if !is_stopword(&w) {
                terms.push((stem(&w), 0.8));
            }
        }
    }
    for w in ["row", "record", "entry", "case", "instance", "all"] {
        terms.push((stem(w), 0.5));
    }
    terms
}

/// Keywords for a concrete column: decomposed column name (weight 1),
/// table name (0.5), and data-dictionary description terms (0.6).
fn column_keywords(db: &Database, col: ColumnRef) -> Vec<(String, f32)> {
    let table = &db.tables()[col.table];
    let meta = &table.schema.columns[col.column];
    let mut terms: Vec<(String, f32)> = Vec::new();
    for w in decompose_identifier(&meta.name) {
        if !is_stopword(&w) {
            terms.push((stem(&w), 1.0));
        }
    }
    for w in decompose_identifier(table.name()) {
        if !is_stopword(&w) {
            terms.push((stem(&w), 0.5));
        }
    }
    if let Some(desc) = &meta.description {
        for term in keyword_terms(desc) {
            terms.push((term, 0.6));
        }
    }
    terms
}

/// Keywords for a literal value: its words (stemmed) and digit strings.
fn literal_keywords(value: &Value) -> Vec<(String, f32)> {
    let text = match value {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Null => return Vec::new(),
    };
    let mut terms: Vec<(String, f32)> =
        keyword_terms(&text).into_iter().map(|t| (t, 1.0)).collect();
    // Also decompose identifier-ish literals ("self-taught", "substance_abuse").
    for w in decompose_identifier(&text) {
        let s = stem(&w);
        if !is_stopword(&w) && !terms.iter().any(|(t, _)| *t == s) {
            terms.push((s, 0.8));
        }
    }
    terms
}

fn distinct_numeric_literals(data: &agg_relational::ColumnData, cap: usize) -> Vec<Value> {
    let mut seen = std::collections::BTreeSet::new();
    for row in 0..data.len() {
        if let Some(v) = data.get_f64(row) {
            // Store integral values as ints for clean display.
            let bits = v.to_bits();
            seen.insert(bits);
            if seen.len() >= cap {
                break;
            }
        }
    }
    seen.into_iter()
        .map(|bits| {
            let v = f64::from_bits(bits);
            if v.fract() == 0.0 && v.abs() < i64::MAX as f64 {
                Value::Int(v as i64)
            } else {
                Value::Float(v)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_ir::Scorer;
    use agg_relational::Table;

    fn nfl_db() -> Database {
        let mut t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec!["indef".into(), "indef".into(), "10".into(), "4".into()],
                ),
                (
                    "category",
                    vec![
                        "gambling".into(),
                        "substance abuse, repeated offense".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1983),
                        Value::Int(1989),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        t.schema.columns[0].description =
            Some("number of games suspended, indef for lifetime bans".into());
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    #[test]
    fn catalog_enumerates_fragments() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        assert_eq!(cat.functions.len(), 9);
        // Star + games + category + year.
        assert_eq!(cat.agg_columns.len(), 4);
        assert_eq!(cat.agg_col_numeric, vec![false, false, false, true]);
        // games, category (strings) + year (low-cardinality numeric).
        assert_eq!(cat.predicate_columns.len(), 3);
        // games: {indef, 10, 4}; category: 4 values; year: {1983, 1989, 2014}.
        let total: usize = cat.literals.iter().map(Vec::len).sum();
        assert_eq!(total, 3 + 4 + 3);
        assert_eq!(cat.predicate_fragment_count(), total);
    }

    #[test]
    fn candidate_space_counts_combinations() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        // 9 fns × 4 agg cols × (1+3)(1+4)(1+3) combos = 9 × 4 × 80 = 2880.
        assert_eq!(cat.candidate_space(), 2880.0);
        assert!((cat.candidate_space_log10() - 2880f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn predicate_search_finds_gambling() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let hits =
            cat.pred_index()
                .search([(stem("gambling").as_str(), 1.0f32)], 5, Scorer::default());
        assert!(!hits.is_empty());
        let (col, lit) = cat.pred_doc(hits[0].doc);
        assert_eq!(db.short_column_name(cat.predicate_columns[col]), "category");
        assert_eq!(cat.literals[col][lit], Value::Str("gambling".into()));
    }

    #[test]
    fn data_dictionary_terms_reach_the_index() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        // "lifetime" appears only in the games column's description.
        let hits =
            cat.pred_index()
                .search([(stem("lifetime").as_str(), 1.0f32)], 10, Scorer::default());
        assert!(!hits.is_empty(), "description keyword must be indexed");
        let (col, _) = cat.pred_doc(hits[0].doc);
        assert_eq!(db.short_column_name(cat.predicate_columns[col]), "games");
    }

    #[test]
    fn function_search_maps_keywords() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let hits =
            cat.fn_index()
                .search([(stem("average").as_str(), 1.0f32)], 1, Scorer::default());
        assert_eq!(cat.functions[hits[0].doc as usize], AggFunction::Avg);
        let hits = cat.fn_index().search(
            [(stem("percentage").as_str(), 1.0f32)],
            1,
            Scorer::default(),
        );
        assert_eq!(cat.functions[hits[0].doc as usize], AggFunction::Percentage);
    }

    #[test]
    fn numeric_predicate_columns_respect_cardinality_cap() {
        let wide =
            Table::from_columns("t", vec![("metric", (0..200).map(Value::Int).collect())]).unwrap();
        let mut db = Database::new("d");
        db.add_table(wide);
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        assert!(
            cat.predicate_columns.is_empty(),
            "high-cardinality numeric column excluded"
        );
        assert_eq!(
            cat.agg_columns.len(),
            2,
            "but it still aggregates (* + metric)"
        );
    }

    #[test]
    fn year_literals_are_integers() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let year_pos = cat
            .predicate_columns
            .iter()
            .position(|c| db.short_column_name(*c) == "year")
            .unwrap();
        assert!(cat.literals[year_pos].contains(&Value::Int(2014)));
    }

    #[test]
    fn literal_cap_is_enforced() {
        let many = Table::from_columns(
            "t",
            vec![(
                "cat",
                (0..100).map(|i| Value::Str(format!("v{i}"))).collect(),
            )],
        )
        .unwrap();
        let mut db = Database::new("d");
        db.add_table(many);
        let cat = FragmentCatalog::build(
            &db,
            &CatalogConfig {
                max_literals_per_column: 10,
                ..Default::default()
            },
        );
        assert_eq!(cat.literals[0].len(), 10);
    }
}
