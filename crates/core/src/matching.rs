//! Keyword matching — Algorithm 1 of the paper.
//!
//! For each claim, the weighted keyword context queries the three fragment
//! indexes (functions, aggregation columns, predicates), yielding relevance
//! scores for the fragments most similar to the claim's keywords. These
//! scores are the observable variable `S_c` of the probabilistic model.

use crate::fragments::FragmentCatalog;
use crate::keywords::WeightedKeyword;
use agg_ir::Scorer;

/// Fraction of the best score granted to fragments without keyword hits in
/// the function / aggregation-column categories. Roughly 30% of real claims
/// never name their aggregation function ("There were four bans" is a
/// count), so unmatched fragments must stay viable — priors and evaluation
/// results then disambiguate.
const SCORE_FLOOR: f64 = 0.15;

/// Raised floor for the `*` aggregation column, as a fraction of the best
/// column score (see `match_claim_with_form`).
const STAR_FLOOR: f64 = 0.4;

/// Relevance scores of one claim against every fragment category.
#[derive(Debug, Clone)]
pub struct ClaimScores {
    /// Per [`FragmentCatalog::functions`] position.
    pub functions: Vec<f64>,
    /// Per [`FragmentCatalog::agg_columns`] position.
    pub agg_columns: Vec<f64>,
    /// `predicates[col][lit]` per catalog predicate column / literal
    /// position; zero when the fragment was not retrieved.
    pub predicates: Vec<Vec<f64>>,
    /// The highest predicate score (input to the unrestricted-column
    /// pseudo-score, see `model`).
    pub max_predicate_score: f64,
}

impl ClaimScores {
    /// Scored `(column, literal)` pairs, descending by score.
    pub fn scored_predicates(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for (c, lits) in self.predicates.iter().enumerate() {
            for (l, s) in lits.iter().enumerate() {
                if *s > 0.0 {
                    out.push((c, l, *s));
                }
            }
        }
        out.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

/// Score one claim's keyword context against the catalog.
///
/// `hits` is the paper's "# Hits" budget: the number of fragments retrieved
/// per category (Table 5 / Figure 13 vary it from 1 to 30).
pub fn match_claim(
    catalog: &FragmentCatalog,
    keywords: &[WeightedKeyword],
    hits: usize,
) -> ClaimScores {
    match_claim_with_form(catalog, keywords, hits, false)
}

/// Like [`match_claim`], additionally exploiting the *form* of the claimed
/// value: a number written as "13%" or "13 percent" announces a ratio
/// aggregate even when no function keyword appears in the text, so the
/// `Percentage` and `ConditionalProbability` fragments get a score boost.
pub fn match_claim_with_form(
    catalog: &FragmentCatalog,
    keywords: &[WeightedKeyword],
    hits: usize,
    is_percentage: bool,
) -> ClaimScores {
    let scorer = Scorer::default();
    let query: Vec<(&str, f32)> = keywords
        .iter()
        .map(|k| (k.term.as_str(), k.weight as f32))
        .collect();

    // Functions: retrieve all (there are only eight), then floor.
    let mut functions = vec![0.0f64; catalog.functions.len()];
    for hit in catalog
        .fn_index()
        .search(query.iter().copied(), catalog.functions.len(), scorer)
    {
        functions[hit.doc as usize] = hit.score as f64;
    }
    if is_percentage {
        let max = functions.iter().cloned().fold(0.0f64, f64::max).max(1.0);
        let pct = crate::fragments::fn_position(catalog, agg_relational::AggFunction::Percentage);
        let cp = crate::fragments::fn_position(
            catalog,
            agg_relational::AggFunction::ConditionalProbability,
        );
        if let Some(i) = pct {
            functions[i] = functions[i].max(max * 1.2);
        }
        if let Some(i) = cp {
            functions[i] = functions[i].max(max * 0.5);
        }
    }
    apply_floor(&mut functions);

    // Aggregation columns: top `hits`. The `*` column (position 0) gets a
    // raised floor: it is the *default* argument of the dominant count-like
    // functions, while concrete columns often absorb keyword mass that
    // actually belongs to predicates on them (e.g. a data-dictionary
    // description mentioning the predicate value).
    let mut agg_columns = vec![0.0f64; catalog.agg_columns.len()];
    for hit in catalog
        .col_index()
        .search(query.iter().copied(), hits, scorer)
    {
        agg_columns[hit.doc as usize] = hit.score as f64;
    }
    let max_col = agg_columns.iter().cloned().fold(0.0f64, f64::max);
    apply_floor(&mut agg_columns);
    if max_col > 0.0 {
        agg_columns[0] = agg_columns[0].max(max_col * STAR_FLOOR);
    }

    // Predicates: top `hits` across all (column, literal) fragments.
    let mut predicates: Vec<Vec<f64>> = catalog
        .literals
        .iter()
        .map(|lits| vec![0.0f64; lits.len()])
        .collect();
    let mut max_predicate_score = 0.0f64;
    for hit in catalog
        .pred_index()
        .search(query.iter().copied(), hits, scorer)
    {
        let (c, l) = catalog.pred_doc(hit.doc);
        let s = hit.score as f64;
        predicates[c][l] = s;
        max_predicate_score = max_predicate_score.max(s);
    }

    ClaimScores {
        functions,
        agg_columns,
        predicates,
        max_predicate_score,
    }
}

/// Raise unscored entries to `SCORE_FLOOR ×` the category's best score, so
/// fragments the text never names stay in play.
fn apply_floor(scores: &mut [f64]) {
    let max = scores.iter().cloned().fold(0.0f64, f64::max);
    let floor = if max > 0.0 { max * SCORE_FLOOR } else { 1.0 };
    for s in scores.iter_mut() {
        if *s < floor {
            *s = floor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::CatalogConfig;
    use crate::keywords::KeywordSource;
    use agg_nlp::stem::stem;
    use agg_relational::{AggFunction, Database, Table, Value};

    fn nfl_db() -> Database {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec!["indef".into(), "indef".into(), "10".into(), "4".into()],
                ),
                (
                    "category",
                    vec![
                        "gambling".into(),
                        "substance abuse".into(),
                        "peds".into(),
                        "personal conduct".into(),
                    ],
                ),
                (
                    "year",
                    vec![
                        Value::Int(1983),
                        Value::Int(1989),
                        Value::Int(2014),
                        Value::Int(2014),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    fn kw(term: &str, weight: f64) -> WeightedKeyword {
        WeightedKeyword {
            term: stem(term),
            weight,
            source: KeywordSource::ClaimSentence,
        }
    }

    #[test]
    fn gambling_keyword_scores_the_right_predicate() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scores = match_claim(&cat, &[kw("gambling", 1.0)], 20);
        let ranked = scores.scored_predicates();
        assert!(!ranked.is_empty());
        let (c, l, _) = ranked[0];
        assert_eq!(db.short_column_name(cat.predicate_columns[c]), "category");
        assert_eq!(cat.literals[c][l], Value::Str("gambling".into()));
    }

    #[test]
    fn average_keyword_boosts_avg_function() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scores = match_claim(&cat, &[kw("average", 1.0)], 20);
        let avg = scores.functions[AggFunction::Avg.index()];
        let count = scores.functions[AggFunction::Count.index()];
        assert!(avg > count);
    }

    #[test]
    fn floor_keeps_unmatched_functions_viable() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scores = match_claim(&cat, &[kw("gambling", 1.0)], 20);
        for (i, s) in scores.functions.iter().enumerate() {
            assert!(*s > 0.0, "function {i} must keep a floor score");
        }
        for s in &scores.agg_columns {
            assert!(*s > 0.0);
        }
    }

    #[test]
    fn hits_budget_limits_predicates() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let keywords = [
            kw("gambling", 1.0),
            kw("substance", 0.9),
            kw("peds", 0.8),
            kw("conduct", 0.7),
            kw("year", 0.6),
        ];
        let one = match_claim(&cat, &keywords, 1);
        assert_eq!(one.scored_predicates().len(), 1);
        let many = match_claim(&cat, &keywords, 20);
        assert!(many.scored_predicates().len() > 1);
    }

    #[test]
    fn numeric_literal_keywords_match_year_predicates() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scores = match_claim(&cat, &[kw("2014", 1.0)], 20);
        let ranked = scores.scored_predicates();
        assert!(ranked.iter().any(|(c, l, _)| {
            db.short_column_name(cat.predicate_columns[*c]) == "year"
                && cat.literals[*c][*l] == Value::Int(2014)
        }));
    }

    #[test]
    fn empty_keywords_yield_floor_scores_only() {
        let db = nfl_db();
        let cat = FragmentCatalog::build(&db, &CatalogConfig::default());
        let scores = match_claim(&cat, &[], 20);
        assert!(scores.scored_predicates().is_empty());
        assert!(scores.functions.iter().all(|s| *s == 1.0));
        assert_eq!(scores.max_predicate_score, 0.0);
    }
}
