//! Rendering verification results — the visual markup of Figure 3.
//!
//! Claims are colored by verdict: correct claims green, suspected errors
//! red, unverifiable claims yellow. Two renderers are provided: ANSI
//! (terminal) and HTML (the original tool's medium).

use crate::pipeline::{CheckedClaim, Verdict, VerificationReport};
use agg_nlp::structure::Document;
use std::fmt::Write as _;

/// Render the document with ANSI-colored claim markup plus a per-claim
/// explanation block (most likely query, its result, the verdict).
pub fn render_ansi(doc: &Document, report: &VerificationReport) -> String {
    let mut out = String::new();
    if let Some(title) = &doc.title {
        let _ = writeln!(out, "\x1b[1m{}\x1b[0m\n", title.text);
    }
    let mut claim_idx = 0usize;
    doc.for_each_paragraph(|path, para_idx, paragraph| {
        for (si, sentence) in paragraph.sentences.iter().enumerate() {
            let sentence_claims: Vec<&CheckedClaim> = report
                .claims
                .iter()
                .filter(|c| {
                    c.mention.section == *path
                        && c.mention.paragraph == para_idx
                        && c.mention.sentence == si
                })
                .collect();
            if sentence_claims.is_empty() {
                let _ = writeln!(out, "{}", sentence.text);
                continue;
            }
            let _ = writeln!(out, "{}", colorize_sentence(sentence, &sentence_claims));
            for claim in sentence_claims {
                claim_idx += 1;
                let marker = match claim.verdict {
                    Verdict::Correct => "\x1b[32m✓\x1b[0m",
                    Verdict::Erroneous => "\x1b[31m✗\x1b[0m",
                    Verdict::Unverifiable => "\x1b[33m?\x1b[0m",
                    Verdict::Unverified => "\x1b[90m-\x1b[0m",
                };
                let _ = write!(
                    out,
                    "  {marker} claim #{claim_idx} «{}» (P(correct) = {:.3})",
                    claim.claimed_value, claim.correctness_probability
                );
                if let Some(ml) = claim.ml_query() {
                    let result = ml
                        .result
                        .map(|r| format!("{r:.4}"))
                        .unwrap_or_else(|| "NULL".to_string());
                    let _ = write!(out, "\n      → {} = {result}", ml.description);
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(out);
    });
    out
}

/// Render the document as standalone HTML with claim spans colored by
/// verdict and hover titles describing the most likely query.
pub fn render_html(doc: &Document, report: &VerificationReport) -> String {
    let mut out = String::from(
        "<!doctype html><meta charset=\"utf-8\">\n<style>\n\
         .claim-correct { background: #c8f7c5; }\n\
         .claim-erroneous { background: #f7c5c5; }\n\
         .claim-unverifiable { background: #f7f3c5; }\n\
         .claim-unverified { background: #e0e0e0; }\n\
         </style>\n",
    );
    if let Some(title) = &doc.title {
        let _ = writeln!(out, "<h1>{}</h1>", escape(&title.text));
    }
    doc.for_each_paragraph(|path, para_idx, paragraph| {
        out.push_str("<p>");
        for (si, sentence) in paragraph.sentences.iter().enumerate() {
            let sentence_claims: Vec<&CheckedClaim> = report
                .claims
                .iter()
                .filter(|c| {
                    c.mention.section == *path
                        && c.mention.paragraph == para_idx
                        && c.mention.sentence == si
                })
                .collect();
            out.push_str(&html_sentence(sentence, &sentence_claims));
            out.push(' ');
        }
        out.push_str("</p>\n");
    });
    out
}

/// A short plain-text summary: one line per claim (plus a leading status
/// line when the report is partial — complete reports stay one line per
/// claim, which downstream line-counting consumers rely on).
pub fn render_summary(report: &VerificationReport) -> String {
    let mut out = String::new();
    if report.status.is_partial() {
        let _ = writeln!(
            out,
            "[PARTIAL: {:?}] unevaluated claims are marked '-'",
            report.status
        );
    }
    for (i, claim) in report.claims.iter().enumerate() {
        let verdict = match claim.verdict {
            Verdict::Correct => "OK ",
            Verdict::Erroneous => "ERR",
            Verdict::Unverifiable => "???",
            Verdict::Unverified => "-- ",
        };
        let ml = claim
            .ml_query()
            .map(|q| {
                format!(
                    "{} = {}",
                    q.description,
                    q.result
                        .map(|r| format!("{r:.4}"))
                        .unwrap_or_else(|| "NULL".into())
                )
            })
            .unwrap_or_else(|| "no candidate query".into());
        let _ = writeln!(
            out,
            "[{verdict}] #{i} claimed {} | P(correct)={:.3} | {ml}",
            claim.claimed_value, claim.correctness_probability
        );
    }
    out
}

fn colorize_sentence(sentence: &agg_nlp::structure::Sentence, claims: &[&CheckedClaim]) -> String {
    // Color each claim's token span within the sentence text.
    let mut spans: Vec<(usize, usize, &str)> = claims
        .iter()
        .filter_map(|c| {
            let start = sentence.tokens.get(c.mention.number.token_start)?.start;
            let end = sentence
                .tokens
                .get(c.mention.number.token_end.saturating_sub(1))?
                .end;
            let color = match c.verdict {
                Verdict::Correct => "\x1b[42;30m",
                Verdict::Erroneous => "\x1b[41;37m",
                Verdict::Unverifiable => "\x1b[43;30m",
                Verdict::Unverified => "\x1b[100;37m",
            };
            Some((start, end, color))
        })
        .collect();
    spans.sort_by_key(|(s, _, _)| *s);
    let mut out = String::new();
    let mut pos = 0;
    for (start, end, color) in spans {
        if start < pos {
            continue;
        }
        out.push_str(&sentence.text[pos..start]);
        let _ = write!(out, "{color}{}\x1b[0m", &sentence.text[start..end]);
        pos = end;
    }
    out.push_str(&sentence.text[pos..]);
    out
}

fn html_sentence(sentence: &agg_nlp::structure::Sentence, claims: &[&CheckedClaim]) -> String {
    let mut spans: Vec<(usize, usize, String)> = claims
        .iter()
        .filter_map(|c| {
            let start = sentence.tokens.get(c.mention.number.token_start)?.start;
            let end = sentence
                .tokens
                .get(c.mention.number.token_end.saturating_sub(1))?
                .end;
            let class = match c.verdict {
                Verdict::Correct => "claim-correct",
                Verdict::Erroneous => "claim-erroneous",
                Verdict::Unverifiable => "claim-unverifiable",
                Verdict::Unverified => "claim-unverified",
            };
            let title = c
                .ml_query()
                .map(|q| {
                    format!(
                        "{} = {}",
                        q.description,
                        q.result
                            .map(|r| format!("{r:.4}"))
                            .unwrap_or_else(|| "NULL".into())
                    )
                })
                .unwrap_or_default();
            Some((
                start,
                end,
                format!("<span class=\"{class}\" title=\"{}\">", escape(&title)),
            ))
        })
        .collect();
    spans.sort_by_key(|(s, _, _)| *s);
    let mut out = String::new();
    let mut pos = 0;
    for (start, end, open) in spans {
        if start < pos {
            continue;
        }
        out.push_str(&escape(&sentence.text[pos..start]));
        out.push_str(&open);
        out.push_str(&escape(&sentence.text[start..end]));
        out.push_str("</span>");
        pos = end;
    }
    out.push_str(&escape(&sentence.text[pos..]));
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckerConfig;
    use crate::pipeline::AggChecker;
    use agg_nlp::structure::parse_document;
    use agg_relational::{Database, Table};

    fn setup() -> (AggChecker, Document, VerificationReport) {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        let checker = AggChecker::new(db, CheckerConfig::default()).unwrap();
        let text = "<h1>Lifetime bans</h1><p>There were four previous lifetime bans. One was for gambling.</p>";
        let doc = parse_document(text);
        let report = checker.check_document(&doc).unwrap();
        (checker, doc, report)
    }

    #[test]
    fn ansi_rendering_marks_claims() {
        let (_, doc, report) = setup();
        let out = render_ansi(&doc, &report);
        assert!(
            out.contains("\x1b[42;30m") || out.contains("\x1b[41;37m"),
            "{out}"
        );
        assert!(out.contains("P(correct)"));
        assert!(out.contains("→"), "most likely query shown");
    }

    #[test]
    fn html_rendering_is_well_formed() {
        let (_, doc, report) = setup();
        let out = render_html(&doc, &report);
        assert_eq!(out.matches("<span").count(), out.matches("</span>").count());
        assert!(out.contains("claim-"));
        assert!(out.contains("title="));
    }

    #[test]
    fn summary_lists_every_claim() {
        let (_, doc, report) = setup();
        let _ = doc;
        let out = render_summary(&report);
        assert_eq!(out.lines().count(), report.claims.len());
    }

    #[test]
    fn html_escapes_content() {
        assert_eq!(escape("a<b&c\"d"), "a&lt;b&amp;c&quot;d");
    }
}
