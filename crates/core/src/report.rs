//! Rendering verification results — the visual markup of Figure 3.
//!
//! Claims are colored by verdict: correct claims green, suspected errors
//! red, unverifiable claims yellow. Two renderers are provided: ANSI
//! (terminal) and HTML (the original tool's medium).

use crate::pipeline::{CheckedClaim, Verdict, VerificationReport};
use agg_nlp::structure::Document;
use std::fmt::Write as _;

/// Render the document with ANSI-colored claim markup plus a per-claim
/// explanation block (most likely query, its result, the verdict).
pub fn render_ansi(doc: &Document, report: &VerificationReport) -> String {
    let mut out = String::new();
    if let Some(title) = &doc.title {
        let _ = writeln!(out, "\x1b[1m{}\x1b[0m\n", title.text);
    }
    let mut claim_idx = 0usize;
    doc.for_each_paragraph(|path, para_idx, paragraph| {
        for (si, sentence) in paragraph.sentences.iter().enumerate() {
            let sentence_claims: Vec<&CheckedClaim> = report
                .claims
                .iter()
                .filter(|c| {
                    c.mention.section == *path
                        && c.mention.paragraph == para_idx
                        && c.mention.sentence == si
                })
                .collect();
            if sentence_claims.is_empty() {
                let _ = writeln!(out, "{}", sentence.text);
                continue;
            }
            let _ = writeln!(out, "{}", colorize_sentence(sentence, &sentence_claims));
            for claim in sentence_claims {
                claim_idx += 1;
                let marker = match claim.verdict {
                    Verdict::Correct => "\x1b[32m✓\x1b[0m",
                    Verdict::Erroneous => "\x1b[31m✗\x1b[0m",
                    Verdict::Unverifiable => "\x1b[33m?\x1b[0m",
                    Verdict::Unverified => "\x1b[90m-\x1b[0m",
                };
                let _ = write!(
                    out,
                    "  {marker} claim #{claim_idx} «{}» (P(correct) = {:.3})",
                    claim.claimed_value, claim.correctness_probability
                );
                if let Some(ml) = claim.ml_query() {
                    let result = ml
                        .result
                        .map(|r| format!("{r:.4}"))
                        .unwrap_or_else(|| "NULL".to_string());
                    let _ = write!(out, "\n      → {} = {result}", ml.description);
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(out);
    });
    out
}

/// Render the document as standalone HTML with claim spans colored by
/// verdict and hover titles describing the most likely query.
pub fn render_html(doc: &Document, report: &VerificationReport) -> String {
    let mut out = String::from(
        "<!doctype html><meta charset=\"utf-8\">\n<style>\n\
         .claim-correct { background: #c8f7c5; }\n\
         .claim-erroneous { background: #f7c5c5; }\n\
         .claim-unverifiable { background: #f7f3c5; }\n\
         .claim-unverified { background: #e0e0e0; }\n\
         </style>\n",
    );
    if let Some(title) = &doc.title {
        let _ = writeln!(out, "<h1>{}</h1>", escape(&title.text));
    }
    doc.for_each_paragraph(|path, para_idx, paragraph| {
        out.push_str("<p>");
        for (si, sentence) in paragraph.sentences.iter().enumerate() {
            let sentence_claims: Vec<&CheckedClaim> = report
                .claims
                .iter()
                .filter(|c| {
                    c.mention.section == *path
                        && c.mention.paragraph == para_idx
                        && c.mention.sentence == si
                })
                .collect();
            out.push_str(&html_sentence(sentence, &sentence_claims));
            out.push(' ');
        }
        out.push_str("</p>\n");
    });
    out
}

/// A short plain-text summary: one line per claim (plus a leading status
/// line when the report is partial — complete reports stay one line per
/// claim, which downstream line-counting consumers rely on).
pub fn render_summary(report: &VerificationReport) -> String {
    let mut out = String::new();
    if report.status.is_partial() {
        let _ = writeln!(
            out,
            "[PARTIAL: {:?}] unevaluated claims are marked '-'",
            report.status
        );
    }
    for (i, claim) in report.claims.iter().enumerate() {
        let verdict = match claim.verdict {
            Verdict::Correct => "OK ",
            Verdict::Erroneous => "ERR",
            Verdict::Unverifiable => "???",
            Verdict::Unverified => "-- ",
        };
        let ml = claim
            .ml_query()
            .map(|q| {
                format!(
                    "{} = {}",
                    q.description,
                    q.result
                        .map(|r| format!("{r:.4}"))
                        .unwrap_or_else(|| "NULL".into())
                )
            })
            .unwrap_or_else(|| "no candidate query".into());
        let _ = writeln!(
            out,
            "[{verdict}] #{i} claimed {} | P(correct)={:.3} | {ml}",
            claim.claimed_value, claim.correctness_probability
        );
    }
    out
}

fn colorize_sentence(sentence: &agg_nlp::structure::Sentence, claims: &[&CheckedClaim]) -> String {
    // Color each claim's token span within the sentence text.
    let mut spans: Vec<(usize, usize, &str)> = claims
        .iter()
        .filter_map(|c| {
            let start = sentence.tokens.get(c.mention.number.token_start)?.start;
            let end = sentence
                .tokens
                .get(c.mention.number.token_end.saturating_sub(1))?
                .end;
            let color = match c.verdict {
                Verdict::Correct => "\x1b[42;30m",
                Verdict::Erroneous => "\x1b[41;37m",
                Verdict::Unverifiable => "\x1b[43;30m",
                Verdict::Unverified => "\x1b[100;37m",
            };
            Some((start, end, color))
        })
        .collect();
    spans.sort_by_key(|(s, _, _)| *s);
    let mut out = String::new();
    let mut pos = 0;
    for (start, end, color) in spans {
        if start < pos {
            continue;
        }
        out.push_str(&sentence.text[pos..start]);
        let _ = write!(out, "{color}{}\x1b[0m", &sentence.text[start..end]);
        pos = end;
    }
    out.push_str(&sentence.text[pos..]);
    out
}

fn html_sentence(sentence: &agg_nlp::structure::Sentence, claims: &[&CheckedClaim]) -> String {
    let mut spans: Vec<(usize, usize, String)> = claims
        .iter()
        .filter_map(|c| {
            let start = sentence.tokens.get(c.mention.number.token_start)?.start;
            let end = sentence
                .tokens
                .get(c.mention.number.token_end.saturating_sub(1))?
                .end;
            let class = match c.verdict {
                Verdict::Correct => "claim-correct",
                Verdict::Erroneous => "claim-erroneous",
                Verdict::Unverifiable => "claim-unverifiable",
                Verdict::Unverified => "claim-unverified",
            };
            let title = c
                .ml_query()
                .map(|q| {
                    format!(
                        "{} = {}",
                        q.description,
                        q.result
                            .map(|r| format!("{r:.4}"))
                            .unwrap_or_else(|| "NULL".into())
                    )
                })
                .unwrap_or_default();
            Some((
                start,
                end,
                format!("<span class=\"{class}\" title=\"{}\">", escape(&title)),
            ))
        })
        .collect();
    spans.sort_by_key(|(s, _, _)| *s);
    let mut out = String::new();
    let mut pos = 0;
    for (start, end, open) in spans {
        if start < pos {
            continue;
        }
        out.push_str(&escape(&sentence.text[pos..start]));
        out.push_str(&open);
        out.push_str(&escape(&sentence.text[start..end]));
        out.push_str("</span>");
        pos = end;
    }
    out.push_str(&escape(&sentence.text[pos..]));
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Exact binary round-trip encoding of verification results — the payload
/// layer of the server's verdict frames (`crates/server` wraps these in
/// length-prefixed frames; `docs/protocol.md` is the normative spec).
///
/// The contract is **bit-exactness**: a [`CheckedClaim`] decoded on the
/// client compares equal (field by field, including every `f64` bit
/// pattern — floats travel as IEEE-754 bits, never as text) to the one
/// the server encoded, so a report reassembled from streamed claim frames
/// reproduces [`VerificationReport::content_fingerprint`] exactly. The
/// loopback test suite and the `server_loopback` bench variant hold this
/// against solo `check_document` runs.
///
/// Primitive layer (all integers little-endian):
/// `u8` | `u32` | `u64` (also carries `usize`) | `f64` as `to_bits` |
/// `bool` as one byte 0/1 | strings and sequences as a `u32` count
/// followed by the elements.
pub mod wire {
    use crate::pipeline::{
        CheckedClaim, RankedQuery, ReportStatus, RunStats, Verdict, VerificationReport,
    };
    use agg_nlp::claims::ClaimMention;
    use agg_nlp::numbers::NumberMention;
    use agg_relational::{
        AggColumn, AggFunction, ColumnRef, Predicate, SimpleAggregateQuery, Value,
    };
    use std::fmt;

    /// A malformed or truncated wire payload.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WireError(pub String);

    impl fmt::Display for WireError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "wire decode error: {}", self.0)
        }
    }

    impl std::error::Error for WireError {}

    fn err(what: &str) -> WireError {
        WireError(format!("truncated or invalid {what}"))
    }

    // --- primitive writers ---

    pub fn put_u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }

    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(out: &mut Vec<u8>, v: usize) {
        put_u64(out, v as u64);
    }

    pub fn put_f64(out: &mut Vec<u8>, v: f64) {
        put_u64(out, v.to_bits());
    }

    pub fn put_bool(out: &mut Vec<u8>, v: bool) {
        put_u8(out, v as u8);
    }

    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_u32(out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }

    // --- primitive readers (cursor style: the slice advances) ---

    pub fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
        let (&b, rest) = buf.split_first().ok_or_else(|| err("u8"))?;
        *buf = rest;
        Ok(b)
    }

    pub fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
        if buf.len() < 4 {
            return Err(err("u32"));
        }
        let (head, rest) = buf.split_at(4);
        *buf = rest;
        Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    pub fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
        if buf.len() < 8 {
            return Err(err("u64"));
        }
        let (head, rest) = buf.split_at(8);
        *buf = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    pub fn get_usize(buf: &mut &[u8]) -> Result<usize, WireError> {
        Ok(get_u64(buf)? as usize)
    }

    pub fn get_f64(buf: &mut &[u8]) -> Result<f64, WireError> {
        Ok(f64::from_bits(get_u64(buf)?))
    }

    pub fn get_bool(buf: &mut &[u8]) -> Result<bool, WireError> {
        match get_u8(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(err("bool")),
        }
    }

    pub fn get_str(buf: &mut &[u8]) -> Result<String, WireError> {
        let len = get_u32(buf)? as usize;
        if buf.len() < len {
            return Err(err("string body"));
        }
        let (head, rest) = buf.split_at(len);
        *buf = rest;
        String::from_utf8(head.to_vec()).map_err(|_| err("string utf-8"))
    }

    // --- enum codes (the numbers docs/protocol.md tabulates) ---

    /// Stable one-byte code of a [`Verdict`].
    pub fn verdict_code(v: Verdict) -> u8 {
        match v {
            Verdict::Correct => 0,
            Verdict::Erroneous => 1,
            Verdict::Unverifiable => 2,
            Verdict::Unverified => 3,
        }
    }

    /// Inverse of [`verdict_code`].
    pub fn verdict_from(code: u8) -> Result<Verdict, WireError> {
        Ok(match code {
            0 => Verdict::Correct,
            1 => Verdict::Erroneous,
            2 => Verdict::Unverifiable,
            3 => Verdict::Unverified,
            _ => return Err(err("verdict code")),
        })
    }

    /// Stable one-byte code of a [`ReportStatus`].
    pub fn status_code(s: ReportStatus) -> u8 {
        match s {
            ReportStatus::Complete => 0,
            ReportStatus::TimedOut => 1,
            ReportStatus::Cancelled => 2,
        }
    }

    /// Inverse of [`status_code`].
    pub fn status_from(code: u8) -> Result<ReportStatus, WireError> {
        Ok(match code {
            0 => ReportStatus::Complete,
            1 => ReportStatus::TimedOut,
            2 => ReportStatus::Cancelled,
            _ => return Err(err("report status code")),
        })
    }

    fn function_code(f: AggFunction) -> u8 {
        match f {
            AggFunction::Count => 0,
            AggFunction::CountDistinct => 1,
            AggFunction::Sum => 2,
            AggFunction::Avg => 3,
            AggFunction::Min => 4,
            AggFunction::Max => 5,
            AggFunction::Percentage => 6,
            AggFunction::ConditionalProbability => 7,
            AggFunction::Median => 8,
        }
    }

    fn function_from(code: u8) -> Result<AggFunction, WireError> {
        Ok(match code {
            0 => AggFunction::Count,
            1 => AggFunction::CountDistinct,
            2 => AggFunction::Sum,
            3 => AggFunction::Avg,
            4 => AggFunction::Min,
            5 => AggFunction::Max,
            6 => AggFunction::Percentage,
            7 => AggFunction::ConditionalProbability,
            8 => AggFunction::Median,
            _ => return Err(err("aggregate function code")),
        })
    }

    // --- composite encoders/decoders ---

    fn put_column_ref(out: &mut Vec<u8>, c: ColumnRef) {
        put_usize(out, c.table);
        put_usize(out, c.column);
    }

    fn get_column_ref(buf: &mut &[u8]) -> Result<ColumnRef, WireError> {
        Ok(ColumnRef {
            table: get_usize(buf)?,
            column: get_usize(buf)?,
        })
    }

    fn put_value(out: &mut Vec<u8>, v: &Value) {
        match v {
            Value::Null => put_u8(out, 0),
            Value::Int(i) => {
                put_u8(out, 1);
                put_u64(out, *i as u64);
            }
            Value::Float(f) => {
                put_u8(out, 2);
                put_f64(out, *f);
            }
            Value::Str(s) => {
                put_u8(out, 3);
                put_str(out, s);
            }
        }
    }

    fn get_value(buf: &mut &[u8]) -> Result<Value, WireError> {
        Ok(match get_u8(buf)? {
            0 => Value::Null,
            1 => Value::Int(get_u64(buf)? as i64),
            2 => Value::Float(get_f64(buf)?),
            3 => Value::Str(get_str(buf)?),
            _ => return Err(err("value tag")),
        })
    }

    /// Encode a [`SimpleAggregateQuery`] (function code, column, predicates).
    pub fn put_query(out: &mut Vec<u8>, q: &SimpleAggregateQuery) {
        put_u8(out, function_code(q.function));
        match q.column {
            AggColumn::Star => put_u8(out, 0),
            AggColumn::Column(c) => {
                put_u8(out, 1);
                put_column_ref(out, c);
            }
        }
        put_u32(out, q.predicates.len() as u32);
        for p in &q.predicates {
            put_column_ref(out, p.column);
            put_value(out, &p.value);
        }
    }

    /// Inverse of [`put_query`].
    pub fn get_query(buf: &mut &[u8]) -> Result<SimpleAggregateQuery, WireError> {
        let function = function_from(get_u8(buf)?)?;
        let column = match get_u8(buf)? {
            0 => AggColumn::Star,
            1 => AggColumn::Column(get_column_ref(buf)?),
            _ => return Err(err("aggregate column tag")),
        };
        let n = get_u32(buf)? as usize;
        let mut predicates = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            predicates.push(Predicate {
                column: get_column_ref(buf)?,
                value: get_value(buf)?,
            });
        }
        Ok(SimpleAggregateQuery {
            function,
            column,
            predicates,
        })
    }

    fn put_mention(out: &mut Vec<u8>, m: &ClaimMention) {
        put_u32(out, m.section.len() as u32);
        for step in &m.section {
            put_usize(out, *step);
        }
        put_usize(out, m.paragraph);
        put_usize(out, m.sentence);
        let n = &m.number;
        put_f64(out, n.value);
        put_usize(out, n.token_start);
        put_usize(out, n.token_end);
        put_u32(out, n.significant_digits);
        put_u32(out, n.decimal_places);
        let flags =
            (n.is_percentage as u8) | (n.spelled_out as u8) << 1 | (n.had_separator as u8) << 2;
        put_u8(out, flags);
        put_usize(out, m.id);
    }

    fn get_mention(buf: &mut &[u8]) -> Result<ClaimMention, WireError> {
        let depth = get_u32(buf)? as usize;
        let mut section = Vec::with_capacity(depth.min(1024));
        for _ in 0..depth {
            section.push(get_usize(buf)?);
        }
        let paragraph = get_usize(buf)?;
        let sentence = get_usize(buf)?;
        let value = get_f64(buf)?;
        let token_start = get_usize(buf)?;
        let token_end = get_usize(buf)?;
        let significant_digits = get_u32(buf)?;
        let decimal_places = get_u32(buf)?;
        let flags = get_u8(buf)?;
        if flags & !0b111 != 0 {
            return Err(err("number-mention flags"));
        }
        let id = get_usize(buf)?;
        Ok(ClaimMention {
            section,
            paragraph,
            sentence,
            number: NumberMention {
                value,
                token_start,
                token_end,
                significant_digits,
                decimal_places,
                is_percentage: flags & 1 != 0,
                spelled_out: flags & 2 != 0,
                had_separator: flags & 4 != 0,
            },
            id,
        })
    }

    /// Encode one settled claim, every field exactly.
    pub fn put_claim(out: &mut Vec<u8>, c: &CheckedClaim) {
        put_mention(out, &c.mention);
        put_str(out, &c.sentence);
        put_f64(out, c.claimed_value);
        put_u32(out, c.top_queries.len() as u32);
        for rq in &c.top_queries {
            put_query(out, &rq.query);
            put_f64(out, rq.probability);
            match rq.result {
                None => put_u8(out, 0),
                Some(r) => {
                    put_u8(out, 1);
                    put_f64(out, r);
                }
            }
            put_bool(out, rq.matches);
            put_str(out, &rq.description);
        }
        put_f64(out, c.correctness_probability);
        put_u8(out, verdict_code(c.verdict));
    }

    /// Inverse of [`put_claim`].
    pub fn get_claim(buf: &mut &[u8]) -> Result<CheckedClaim, WireError> {
        let mention = get_mention(buf)?;
        let sentence = get_str(buf)?;
        let claimed_value = get_f64(buf)?;
        let k = get_u32(buf)? as usize;
        let mut top_queries = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            let query = get_query(buf)?;
            let probability = get_f64(buf)?;
            let result = match get_u8(buf)? {
                0 => None,
                1 => Some(get_f64(buf)?),
                _ => return Err(err("result tag")),
            };
            let matches = get_bool(buf)?;
            let description = get_str(buf)?;
            top_queries.push(RankedQuery {
                query,
                probability,
                result,
                matches,
                description,
            });
        }
        let correctness_probability = get_f64(buf)?;
        let verdict = verdict_from(get_u8(buf)?)?;
        Ok(CheckedClaim {
            mention,
            sentence,
            claimed_value,
            top_queries,
            correctness_probability,
            verdict,
        })
    }

    /// Encode the scheduling-independent [`RunStats`] counters (wall-clock
    /// durations are not wire-visible: they are excluded from
    /// [`VerificationReport::content_fingerprint`] and decode as zero).
    pub fn put_stats(out: &mut Vec<u8>, s: &RunStats) {
        put_usize(out, s.claims);
        put_usize(out, s.em_iterations);
        put_u64(out, s.candidates_evaluated);
        put_u64(out, s.cubes_executed);
        put_u64(out, s.cubes_cached);
        put_u64(out, s.rows_scanned);
        put_u64(out, s.tasks_executed);
        put_u64(out, s.tasks_deduped);
        put_u64(out, s.singleflight_waits);
        put_u64(out, s.scan_passes);
        put_u64(out, s.poison_retries);
        put_u64(out, s.blocks_scanned);
        put_u64(out, s.blocks_skipped);
        put_u64(out, s.bytes_scanned);
        put_u64(out, s.partitions_scanned);
        put_u64(out, s.partition_merges);
        put_u32(out, s.partition_parallelism);
        put_u64(out, s.grids_patched);
        put_u64(out, s.delta_rows_scanned);
        put_f64(out, s.candidate_space_log10);
    }

    /// Inverse of [`put_stats`].
    pub fn get_stats(buf: &mut &[u8]) -> Result<RunStats, WireError> {
        Ok(RunStats {
            claims: get_usize(buf)?,
            em_iterations: get_usize(buf)?,
            candidates_evaluated: get_u64(buf)?,
            cubes_executed: get_u64(buf)?,
            cubes_cached: get_u64(buf)?,
            rows_scanned: get_u64(buf)?,
            tasks_executed: get_u64(buf)?,
            tasks_deduped: get_u64(buf)?,
            singleflight_waits: get_u64(buf)?,
            scan_passes: get_u64(buf)?,
            poison_retries: get_u64(buf)?,
            blocks_scanned: get_u64(buf)?,
            blocks_skipped: get_u64(buf)?,
            bytes_scanned: get_u64(buf)?,
            partitions_scanned: get_u64(buf)?,
            partition_merges: get_u64(buf)?,
            partition_parallelism: get_u32(buf)?,
            grids_patched: get_u64(buf)?,
            delta_rows_scanned: get_u64(buf)?,
            elapsed: std::time::Duration::ZERO,
            query_time: std::time::Duration::ZERO,
            candidate_space_log10: get_f64(buf)?,
        })
    }

    /// Reassemble a [`VerificationReport`] from decoded parts — what a
    /// binary client does after its last claim frame.
    pub fn assemble_report(
        claims: Vec<CheckedClaim>,
        stats: RunStats,
        status: ReportStatus,
    ) -> VerificationReport {
        VerificationReport {
            claims,
            stats,
            status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckerConfig;
    use crate::pipeline::AggChecker;
    use agg_nlp::structure::parse_document;
    use agg_relational::{Database, Table};

    fn setup() -> (AggChecker, Document, VerificationReport) {
        let t = Table::from_columns(
            "nflsuspensions",
            vec![
                (
                    "games",
                    vec![
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "indef".into(),
                        "10".into(),
                    ],
                ),
                (
                    "category",
                    vec![
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "substance abuse, repeated offense".into(),
                        "gambling".into(),
                        "peds".into(),
                    ],
                ),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        let checker = AggChecker::new(db, CheckerConfig::default()).unwrap();
        let text = "<h1>Lifetime bans</h1><p>There were four previous lifetime bans. One was for gambling.</p>";
        let doc = parse_document(text);
        let report = checker.check_document(&doc).unwrap();
        (checker, doc, report)
    }

    #[test]
    fn ansi_rendering_marks_claims() {
        let (_, doc, report) = setup();
        let out = render_ansi(&doc, &report);
        assert!(
            out.contains("\x1b[42;30m") || out.contains("\x1b[41;37m"),
            "{out}"
        );
        assert!(out.contains("P(correct)"));
        assert!(out.contains("→"), "most likely query shown");
    }

    #[test]
    fn html_rendering_is_well_formed() {
        let (_, doc, report) = setup();
        let out = render_html(&doc, &report);
        assert_eq!(out.matches("<span").count(), out.matches("</span>").count());
        assert!(out.contains("claim-"));
        assert!(out.contains("title="));
    }

    #[test]
    fn summary_lists_every_claim() {
        let (_, doc, report) = setup();
        let _ = doc;
        let out = render_summary(&report);
        assert_eq!(out.lines().count(), report.claims.len());
    }

    #[test]
    fn html_escapes_content() {
        assert_eq!(escape("a<b&c\"d"), "a&lt;b&amp;c&quot;d");
    }

    /// The wire contract at its core: claims and stats decoded from their
    /// binary encoding reproduce the report's `content_fingerprint`
    /// bit-exactly (f64s travel as IEEE-754 bits, never as text).
    #[test]
    fn wire_round_trip_preserves_fingerprint() {
        let (_, _, report) = setup();
        assert!(!report.claims.is_empty());
        let mut decoded_claims = Vec::new();
        for claim in &report.claims {
            let mut buf = Vec::new();
            wire::put_claim(&mut buf, claim);
            let mut cursor = &buf[..];
            let decoded = wire::get_claim(&mut cursor).unwrap();
            assert!(cursor.is_empty(), "decode must consume the payload");
            assert_eq!(format!("{claim:?}"), format!("{decoded:?}"));
            decoded_claims.push(decoded);
        }
        let mut buf = Vec::new();
        wire::put_stats(&mut buf, &report.stats);
        let stats = wire::get_stats(&mut &buf[..]).unwrap();
        let reassembled = wire::assemble_report(decoded_claims, stats, report.status);
        assert_eq!(
            reassembled.content_fingerprint(),
            report.content_fingerprint()
        );
    }

    /// Truncated payloads and bad tags decode to errors, never panics.
    #[test]
    fn wire_rejects_malformed_payloads() {
        let (_, _, report) = setup();
        let mut buf = Vec::new();
        wire::put_claim(&mut buf, &report.claims[0]);
        for cut in 0..buf.len() {
            assert!(
                wire::get_claim(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        assert!(wire::verdict_from(200).is_err());
        assert!(wire::status_from(9).is_err());
        assert!(wire::get_str(&mut &[255u8, 255, 255, 255][..]).is_err());
    }

    /// The enum codes are part of the written protocol (docs/protocol.md)
    /// and must never drift.
    #[test]
    fn wire_enum_codes_are_stable() {
        use crate::pipeline::{ReportStatus, Verdict};
        assert_eq!(wire::verdict_code(Verdict::Correct), 0);
        assert_eq!(wire::verdict_code(Verdict::Erroneous), 1);
        assert_eq!(wire::verdict_code(Verdict::Unverifiable), 2);
        assert_eq!(wire::verdict_code(Verdict::Unverified), 3);
        assert_eq!(wire::status_code(ReportStatus::Complete), 0);
        assert_eq!(wire::status_code(ReportStatus::TimedOut), 1);
        assert_eq!(wire::status_code(ReportStatus::Cancelled), 2);
        for v in [
            Verdict::Correct,
            Verdict::Erroneous,
            Verdict::Unverifiable,
            Verdict::Unverified,
        ] {
            assert_eq!(wire::verdict_from(wire::verdict_code(v)).unwrap(), v);
        }
    }
}
