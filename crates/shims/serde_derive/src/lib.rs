//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace's `serde` shim defines `Serialize` / `Deserialize` as empty
//! marker traits and nothing calls serialization methods at runtime, so the
//! derives can legally expand to nothing: `#[derive(Serialize)]` merely has
//! to be *accepted* on any struct or enum shape. Expanding to an empty token
//! stream is the one expansion that is correct for every input.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
