//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard library's locks behind parking_lot's non-poisoning
//! API: `lock()`, `read()`, and `write()` return guards directly. A panic
//! while a lock is held does not poison it for other threads — the inner
//! value is recovered, matching parking_lot semantics closely enough for
//! this workspace's cache layer.

use std::sync::{self, LockResult};

/// Recover the guard whether or not the lock was poisoned.
fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(sync::PoisonError::into_inner)
}

#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let mutex = Mutex::new(vec![1]);
        mutex.lock().push(2);
        assert_eq!(mutex.into_inner(), vec![1, 2]);
    }

    #[test]
    fn panicking_writer_does_not_poison() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let cloned = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = cloned.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0, "read after panicked writer still works");
    }
}
