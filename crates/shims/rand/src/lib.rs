//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, dependency-free implementation of the `rand 0.8` API surface it
//! actually uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_bool`, `gen_range`), and
//! [`seq::SliceRandom::choose`].
//!
//! The generator is SplitMix64 feeding xoshiro256++ — not cryptographic, but
//! statistically solid and deterministic across platforms, which is all the
//! corpus generator and benches need.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value range via
/// [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample(rng);
                *self.start() + unit * (*self.end() - *self.start())
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// The user-facing extension trait, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 (the reference seeding
    /// procedure recommended by the xoshiro authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2..=3u32);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(0.0..10.0);
            assert!((0.0..10.0).contains(&f));
            let n: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
