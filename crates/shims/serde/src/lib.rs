//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access. Nothing in this workspace
//! currently serializes through serde at runtime (JSON artifacts are written
//! by hand in the bench crate), but many types carry
//! `#[derive(Serialize, Deserialize)]` so they are ready for a real serde
//! once the dependency can be vendored. This shim keeps those derives
//! compiling: the traits are empty markers and the derive macros expand to
//! marker impls.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

// The derive macros share the trait names, exactly like real serde's
// `derive` feature re-exports.
pub use serde_derive::{Deserialize, Serialize};
