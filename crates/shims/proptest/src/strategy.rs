//! The [`Strategy`] trait and the built-in strategies the workspace uses:
//! numeric ranges, regex-like string patterns, and tuples.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values. Unlike real proptest there is no value
/// tree and no shrinking: `generate` directly produces one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Generate with `self`, then generate from the strategy `f` derives
    /// from that value (proptest's dependent-generation combinator).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Generate with `self`, then apply a pure function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Numeric ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Size bounds for collection strategies
// ---------------------------------------------------------------------------

/// Values accepted as the size argument of `prop::collection::vec`.
pub trait SizeBounds {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeBounds for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

// ---------------------------------------------------------------------------
// Regex-like string patterns
// ---------------------------------------------------------------------------

/// `&str` patterns of the form `[class]{m,n}` or `\PC{m,n}` generate strings,
/// mirroring how this workspace's tests use proptest's regex strategies. The
/// character class supports ranges (`a-z`), literal characters, and the
/// escapes `\n`, `\t`, `\\`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern strategy: {self:?}"));
        let len = rng.uniform_usize(pattern.min, pattern.max);
        (0..len)
            .map(|_| pattern.chars[rng.uniform_usize(0, pattern.chars.len() - 1)])
            .collect()
    }
}

struct Pattern {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Option<Pattern> {
    let (chars, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        (not_control_pool(), rest)
    } else if let Some(body) = pattern.strip_prefix('[') {
        let close = find_class_end(body)?;
        (parse_class(&body[..close])?, &body[close + 1..])
    } else {
        return None;
    };
    let (min, max) = parse_repetition(rest)?;
    if chars.is_empty() {
        return None;
    }
    Some(Pattern { chars, min, max })
}

/// Index of the unescaped `]` closing the class body.
fn find_class_end(body: &str) -> Option<usize> {
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn parse_class(body: &str) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        let lo = if c == '\\' {
            match chars.next()? {
                'n' => '\n',
                't' => '\t',
                other => other,
            }
        } else {
            c
        };
        // A `-` between two characters denotes a range; elsewhere a literal.
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next(); // consume '-'
            if let Some(hi) = lookahead.next() {
                let hi = if hi == '\\' {
                    match lookahead.next()? {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    }
                } else {
                    hi
                };
                chars = lookahead;
                if (lo as u32) > (hi as u32) {
                    return None;
                }
                out.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                continue;
            }
        }
        out.push(lo);
    }
    Some(out)
}

fn parse_repetition(rest: &str) -> Option<(usize, usize)> {
    let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = inner.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    if min > max {
        return None;
    }
    Some((min, max))
}

/// Pool for `\PC` (any non-control char): printable ASCII plus a sprinkle of
/// multi-byte characters so Unicode handling gets exercised.
fn not_control_pool() -> Vec<char> {
    let mut pool: Vec<char> = (' '..='~').collect();
    pool.extend(['é', 'ß', 'λ', 'Ж', '中', '文', '🦀', '—', '\u{00a0}', 'Ω']);
    pool
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
