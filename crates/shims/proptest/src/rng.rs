//! Deterministic generation source for the proptest stand-in.

/// SplitMix64 seeded from a test-name hash: every test gets its own
/// reproducible stream, independent of execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream keyed by `name` (typically `module_path!()::test_name`).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name selects the stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[min, max]` (inclusive).
    pub fn uniform_usize(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        min + (self.next_u64() as usize) % (max - min + 1)
    }
}
