//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! dependency-free subset of proptest: the [`Strategy`] trait over ranges,
//! regex-like string patterns, tuples, [`prop::collection::vec`],
//! [`prop::option::of`] and [`arbitrary::any`]; the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` and `prop_assume!` macros; and
//! [`ProptestConfig`]. There is **no shrinking** — a failing case reports its
//! generated inputs via the assertion message instead. Generation is
//! deterministic per test name, so failures reproduce exactly.

pub mod rng;
pub mod strategy;

pub use strategy::Strategy;

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`: generate a fresh one.
    Reject(String),
}

/// Subset of proptest's runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for an [`Arbitrary`] type.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace mirrored from real proptest.
pub mod prop {
    pub mod collection {
        use crate::rng::TestRng;
        use crate::strategy::{SizeBounds, Strategy};

        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// A vector whose length is drawn from `size` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.uniform_usize(self.min, self.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;

        pub struct OptionStrategy<S>(S);

        /// `None` roughly a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests. Supports the `#![proptest_config(..)]` header and
/// any number of `#[test] fn name(pat in strategy, ...) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $pat = ($strat).generate(&mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(32).max(1024),
                            "{}: too many prop_assume! rejections",
                            stringify!($name)
                        );
                    }
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "{} failed after {} passing case(s): {}",
                            stringify!($name),
                            passed,
                            message
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..9, y in -5i64..5, z in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..1.5).contains(&z));
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_and_option_compose(v in prop::collection::vec(prop::option::of(0u8..4), 0..6)) {
            prop_assert!(v.len() < 6);
            for item in v.iter().flatten() {
                prop_assert!(*item < 4);
            }
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..5).prop_flat_map(|n| (n..n + 1, 0u8..2))) {
            let (n, _bit) = pair;
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn assume_rejects_cases(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::rng::TestRng::deterministic("t");
        let mut b = crate::rng::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn printable_pattern_is_printable() {
        let mut rng = crate::rng::TestRng::deterministic("printable");
        for _ in 0..50 {
            let s = Strategy::generate(&"[ -~]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn not_control_pattern_excludes_controls() {
        let mut rng = crate::rng::TestRng::deterministic("pc");
        for _ in 0..50 {
            let s = Strategy::generate(&"\\PC{0,60}", &mut rng);
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
