//! Offline stand-in for the `criterion` crate.
//!
//! No crates.io access in the build environment, so this workspace ships a
//! minimal wall-clock benchmark harness with criterion's API shape:
//! benchmark groups, `bench_function` / `bench_with_input`, `sample_size`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up, then timed over `sample_size`
//! samples; each sample runs enough iterations to cover a minimum window so
//! short benchmarks are not dominated by timer resolution. The median
//! nanoseconds per iteration is printed in a stable `bench:` line format
//! that scripts can scrape.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported opaque value barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, e.g. `cube_once/10000`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`: either a plain name or a [`BenchmarkId`].
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median ns/iter of the last `iter` call.
    last_median_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: find an iteration count covering ≥ 2 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.last_median_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// this harness uses a leaner default suited to CI smoke runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median_ns: f64::NAN,
        };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &label, bencher.last_median_ns);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 12,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        self
    }

    fn report(&mut self, group: &str, label: &str, median_ns: f64) {
        println!("bench: {group}/{label} median {median_ns:.1} ns/iter");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("cube", 10_000).into_label(), "cube/10000");
        assert_eq!(BenchmarkId::from_parameter(7).into_label(), "7");
    }
}
