//! Inverted index with weighted terms and top-k search.

use crate::score::Scorer;
use std::collections::HashMap;

/// Document identifier (caller-assigned meaning, e.g. a fragment id).
pub type DocId = u32;

/// One search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    pub doc: DocId,
    pub score: f32,
}

#[derive(Debug, Clone, Copy)]
struct Posting {
    doc: DocId,
    /// Term weight within the document (≈ term frequency).
    tf: f32,
}

/// Builds an [`Index`] incrementally.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    term_ids: HashMap<String, usize>,
    postings: Vec<Vec<Posting>>,
    doc_len: Vec<f32>,
}

impl IndexBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a document as a bag of `(term, weight)` pairs. Duplicate terms
    /// accumulate weight. Returns the document's id (sequential).
    pub fn add_document<'a>(&mut self, terms: impl IntoIterator<Item = (&'a str, f32)>) -> DocId {
        let doc = self.doc_len.len() as DocId;
        let mut len = 0.0f32;
        let mut local: HashMap<usize, f32> = HashMap::new();
        for (term, weight) in terms {
            if term.is_empty() || weight <= 0.0 {
                continue;
            }
            let next_id = self.term_ids.len();
            let id = *self.term_ids.entry(term.to_string()).or_insert(next_id);
            if id == self.postings.len() {
                self.postings.push(Vec::new());
            }
            *local.entry(id).or_insert(0.0) += weight;
            len += weight;
        }
        let mut ids: Vec<(usize, f32)> = local.into_iter().collect();
        ids.sort_unstable_by_key(|(id, _)| *id);
        for (id, tf) in ids {
            self.postings[id].push(Posting { doc, tf });
        }
        self.doc_len.push(len);
        doc
    }

    /// Finalize into a searchable index.
    pub fn build(self) -> Index {
        let n_docs = self.doc_len.len() as u32;
        let avg_len = if n_docs == 0 {
            0.0
        } else {
            self.doc_len.iter().sum::<f32>() / n_docs as f32
        };
        Index {
            term_ids: self.term_ids,
            postings: self.postings,
            doc_len: self.doc_len,
            avg_len,
            n_docs,
        }
    }
}

/// An immutable inverted index.
#[derive(Debug, Clone)]
pub struct Index {
    term_ids: HashMap<String, usize>,
    postings: Vec<Vec<Posting>>,
    doc_len: Vec<f32>,
    avg_len: f32,
    n_docs: u32,
}

impl Index {
    pub fn doc_count(&self) -> u32 {
        self.n_docs
    }

    pub fn term_count(&self) -> usize {
        self.term_ids.len()
    }

    /// Document frequency of a term.
    pub fn df(&self, term: &str) -> u32 {
        self.term_ids
            .get(term)
            .map(|&id| self.postings[id].len() as u32)
            .unwrap_or(0)
    }

    /// Score all documents against a weighted query and return the top `k`
    /// hits, highest score first (ties broken by doc id for determinism).
    ///
    /// Unknown query terms are ignored, mirroring Lucene.
    pub fn search<'a>(
        &self,
        query: impl IntoIterator<Item = (&'a str, f32)>,
        k: usize,
        scorer: Scorer,
    ) -> Vec<Hit> {
        if self.n_docs == 0 || k == 0 {
            return Vec::new();
        }
        // Merge duplicate query terms.
        let mut weights: HashMap<usize, f32> = HashMap::new();
        for (term, w) in query {
            if w <= 0.0 {
                continue;
            }
            if let Some(&id) = self.term_ids.get(term) {
                let entry = weights.entry(id).or_insert(0.0);
                *entry = entry.max(w); // repeated terms keep their max weight
            }
        }
        let mut acc: HashMap<DocId, f32> = HashMap::new();
        let mut term_ids: Vec<(usize, f32)> = weights.into_iter().collect();
        term_ids.sort_unstable_by_key(|(id, _)| *id);
        for (id, qw) in term_ids {
            let df = self.postings[id].len() as u32;
            for p in &self.postings[id] {
                let s = scorer.term_score(
                    p.tf,
                    self.doc_len[p.doc as usize],
                    self.avg_len,
                    df,
                    self.n_docs,
                );
                *acc.entry(p.doc).or_insert(0.0) += qw * s;
            }
        }
        let mut hits: Vec<Hit> = acc
            .into_iter()
            .map(|(doc, score)| Hit { doc, score })
            .collect();
        hits.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fragment_index() -> Index {
        let mut b = IndexBuilder::new();
        // doc 0: predicate games = 'indef'
        b.add_document([
            ("games", 1.0),
            ("indefinite", 1.0),
            ("lifetime", 1.0),
            ("ban", 1.0),
        ]);
        // doc 1: predicate category = 'gambling'
        b.add_document([("category", 1.0), ("reason", 1.0), ("gambling", 1.0)]);
        // doc 2: predicate category = 'substance abuse'
        b.add_document([
            ("category", 1.0),
            ("reason", 1.0),
            ("substance", 1.0),
            ("abuse", 1.0),
        ]);
        // doc 3: aggregation column year
        b.add_document([("year", 1.0), ("season", 1.0)]);
        b.build()
    }

    #[test]
    fn exact_keyword_match_ranks_first() {
        let idx = fragment_index();
        let hits = idx.search([("gambling", 1.0)], 10, Scorer::default());
        assert_eq!(hits[0].doc, 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn shared_terms_rank_both_but_specific_wins() {
        let idx = fragment_index();
        let hits = idx.search(
            [("category", 1.0), ("gambling", 1.0)],
            10,
            Scorer::default(),
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc, 1, "doc with both terms first");
        assert_eq!(hits[1].doc, 2);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn query_weights_shift_ranking() {
        let idx = fragment_index();
        // Heavy weight on "lifetime" pulls doc 0 over doc 1 despite
        // "gambling" also matching.
        let hits = idx.search(
            [("lifetime", 5.0), ("gambling", 0.2)],
            10,
            Scorer::default(),
        );
        assert_eq!(hits[0].doc, 0);
    }

    #[test]
    fn unknown_terms_are_ignored() {
        let idx = fragment_index();
        let hits = idx.search([("flibbertigibbet", 1.0)], 10, Scorer::default());
        assert!(hits.is_empty());
        let hits = idx.search(
            [("flibbertigibbet", 9.0), ("year", 1.0)],
            10,
            Scorer::default(),
        );
        assert_eq!(hits[0].doc, 3);
    }

    #[test]
    fn k_limits_results_deterministically() {
        let idx = fragment_index();
        let hits = idx.search([("category", 1.0)], 1, Scorer::default());
        assert_eq!(hits.len(), 1);
        // Tie between docs 1 and 2 (same tf/len): lower doc id wins.
        assert_eq!(hits[0].doc, 1);
    }

    #[test]
    fn duplicate_query_terms_do_not_double_count() {
        let idx = fragment_index();
        let once = idx.search([("gambling", 1.0)], 10, Scorer::default());
        let twice = idx.search(
            [("gambling", 1.0), ("gambling", 1.0)],
            10,
            Scorer::default(),
        );
        assert_eq!(once[0].score, twice[0].score);
    }

    #[test]
    fn document_term_weights_accumulate() {
        let mut b = IndexBuilder::new();
        b.add_document([("word", 1.0), ("word", 1.0)]); // tf 2
        b.add_document([("word", 1.0)]); // tf 1
        let idx = b.build();
        let hits = idx.search([("word", 1.0)], 10, Scorer::default());
        assert_eq!(hits[0].doc, 0, "higher tf ranks first");
    }

    #[test]
    fn empty_index_and_empty_query() {
        let idx = IndexBuilder::new().build();
        assert!(idx.search([("x", 1.0)], 5, Scorer::default()).is_empty());
        let idx = fragment_index();
        assert!(idx
            .search(std::iter::empty::<(&str, f32)>(), 5, Scorer::default())
            .is_empty());
        assert!(idx
            .search([("games", 1.0)], 0, Scorer::default())
            .is_empty());
    }

    #[test]
    fn df_and_counts() {
        let idx = fragment_index();
        assert_eq!(idx.doc_count(), 4);
        assert_eq!(idx.df("category"), 2);
        assert_eq!(idx.df("nothere"), 0);
        assert!(idx.term_count() >= 10);
    }

    #[test]
    fn zero_weight_terms_are_dropped() {
        let mut b = IndexBuilder::new();
        b.add_document([("a", 0.0), ("b", 1.0)]);
        let idx = b.build();
        assert_eq!(idx.df("a"), 0);
        assert_eq!(idx.df("b"), 1);
    }

    #[test]
    fn tfidf_scorer_also_ranks_exact_matches_first() {
        let idx = fragment_index();
        let hits = idx.search([("gambling", 1.0), ("category", 0.5)], 10, Scorer::TfIdf);
        assert_eq!(hits[0].doc, 1);
    }
}
