//! # agg-ir
//!
//! A compact information-retrieval engine — the Apache Lucene substitute of
//! the AggChecker reproduction. The checker indexes the keyword bags of
//! query fragments and queries them with weighted claim keywords (§4 of the
//! paper); all this crate needs to provide is:
//!
//! * an inverted index over weighted term bags ([`IndexBuilder`], [`Index`]),
//! * TF-IDF / BM25 scoring with *weighted query terms* ([`Scorer`]), and
//! * top-k retrieval ([`Index::search`]).
//!
//! Terms are opaque strings: callers tokenize, stem, and expand synonyms
//! before indexing (that pipeline lives in `agg-nlp`/`agg-core`).

pub mod index;
pub mod score;

pub use index::{DocId, Hit, Index, IndexBuilder};
pub use score::Scorer;
