//! Scoring functions.
//!
//! Two scorers are provided: Okapi BM25 (default — this is what Lucene uses
//! since 6.0, matching the paper's setup) and classic TF-IDF with cosine
//! length normalization (for ablations). Query terms carry weights: claim
//! keywords are weighted by tree distance and document structure
//! (Algorithm 2), and the weight multiplies the term's score contribution.

/// Scoring model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scorer {
    /// Okapi BM25 with parameters `k1` and `b`.
    Bm25 { k1: f32, b: f32 },
    /// TF-IDF: `tf · idf² / sqrt(doc_len)` per term (Lucene-classic style).
    TfIdf,
}

impl Default for Scorer {
    fn default() -> Self {
        // Lucene's defaults.
        Scorer::Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl Scorer {
    /// Score contribution of one matched term.
    ///
    /// * `tf` — the term's weight in the document (term frequency; fragment
    ///   keyword bags may weight keywords, so this is a float).
    /// * `doc_len` — total term weight of the document.
    /// * `avg_doc_len` — average document length in the index.
    /// * `df` — number of documents containing the term.
    /// * `n_docs` — total number of documents.
    #[inline]
    pub fn term_score(&self, tf: f32, doc_len: f32, avg_doc_len: f32, df: u32, n_docs: u32) -> f32 {
        match *self {
            Scorer::Bm25 { k1, b } => {
                let idf = bm25_idf(df, n_docs);
                let denom = tf + k1 * (1.0 - b + b * doc_len / avg_doc_len.max(1e-6));
                idf * (tf * (k1 + 1.0)) / denom.max(1e-6)
            }
            Scorer::TfIdf => {
                let idf = tfidf_idf(df, n_docs);
                tf.sqrt() * idf * idf / doc_len.max(1.0).sqrt()
            }
        }
    }
}

/// BM25 IDF with the +1 smoothing Lucene applies (keeps scores positive for
/// terms occurring in more than half the documents).
#[inline]
fn bm25_idf(df: u32, n_docs: u32) -> f32 {
    let n = n_docs as f32;
    let d = df as f32;
    ((n - d + 0.5) / (d + 0.5) + 1.0).ln()
}

#[inline]
fn tfidf_idf(df: u32, n_docs: u32) -> f32 {
    let n = n_docs as f32;
    let d = df as f32;
    1.0 + (n / (d + 1.0)).ln().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_terms_score_higher_than_common_terms() {
        let s = Scorer::default();
        let rare = s.term_score(1.0, 10.0, 10.0, 1, 1000);
        let common = s.term_score(1.0, 10.0, 10.0, 900, 1000);
        assert!(rare > common);
    }

    #[test]
    fn bm25_tf_saturates() {
        let s = Scorer::default();
        let tf1 = s.term_score(1.0, 10.0, 10.0, 5, 100);
        let tf2 = s.term_score(2.0, 10.0, 10.0, 5, 100);
        let tf10 = s.term_score(10.0, 10.0, 10.0, 5, 100);
        assert!(tf2 > tf1);
        assert!(tf10 > tf2);
        // Diminishing returns: the jump 1→2 exceeds the jump 2→10 per unit.
        assert!((tf2 - tf1) > (tf10 - tf2) / 8.0);
    }

    #[test]
    fn longer_documents_are_penalized() {
        let s = Scorer::default();
        let short = s.term_score(1.0, 5.0, 10.0, 5, 100);
        let long = s.term_score(1.0, 50.0, 10.0, 5, 100);
        assert!(short > long);
    }

    #[test]
    fn scores_stay_positive_for_ubiquitous_terms() {
        let s = Scorer::default();
        assert!(s.term_score(1.0, 10.0, 10.0, 100, 100) > 0.0);
        let t = Scorer::TfIdf;
        assert!(t.term_score(1.0, 10.0, 10.0, 100, 100) > 0.0);
    }

    #[test]
    fn tfidf_orders_like_bm25_on_rarity() {
        let t = Scorer::TfIdf;
        let rare = t.term_score(1.0, 10.0, 10.0, 1, 1000);
        let common = t.term_score(1.0, 10.0, 10.0, 900, 1000);
        assert!(rare > common);
    }

    #[test]
    fn degenerate_inputs_do_not_blow_up() {
        let s = Scorer::default();
        for v in [
            s.term_score(0.0, 0.0, 0.0, 0, 0),
            s.term_score(1.0, 0.0, 0.0, 1, 1),
            Scorer::TfIdf.term_score(0.0, 0.0, 0.0, 0, 0),
        ] {
            assert!(v.is_finite(), "{v}");
        }
    }
}
