//! User-study simulation (§7.2, Appendix A and D of the paper).
//!
//! Live user studies cannot ship inside a library, so the studies are
//! reproduced with a seeded behavioural model (DESIGN.md §2, substitution
//! 6). Users verify claims one by one under a time budget:
//!
//! * **AggChecker users** review the tentative markup; when the right query
//!   is the top suggestion they confirm with one click, within the top-5
//!   with two clicks, within the top-10 with three; otherwise they assemble
//!   the query from high-probability fragments (slower, occasionally
//!   failing). Action latencies follow the paper's interface design
//!   (Figure 3).
//! * **SQL users** compose each query by hand: slow, with a skill-dependent
//!   success rate — the paper's participants were mostly CS majors and
//!   still verified at one sixth of the AggChecker rate.
//! * **Crowd workers** (Appendix D) are slower and less skilled; the
//!   spreadsheet (G-Sheet) condition at document scope almost never
//!   identifies an erroneous claim.

use crate::metrics::Confusion;
use crate::runner::ClaimOutcome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Verification tool under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    AggChecker,
    Sql,
    /// Spreadsheet condition of the crowd study (Table 11).
    Spreadsheet,
}

/// How a claim got verified in the AggChecker interface (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Confirmed the top suggestion (1 click).
    Top1,
    /// Picked from the top-5 list (2 clicks).
    Top5,
    /// Picked from the top-10 list (3 clicks).
    Top10,
    /// Assembled a custom query from fragments.
    Custom,
    /// Composed a query by hand (SQL / spreadsheet formula).
    Manual,
}

/// One verified claim in a session.
#[derive(Debug, Clone)]
pub struct VerifyEvent {
    /// Seconds from session start at which verification completed.
    pub at: f64,
    /// Index of the claim in the article's ground truth.
    pub claim: usize,
    pub action: Action,
}

/// One user × article × tool session.
#[derive(Debug, Clone)]
pub struct Session {
    pub events: Vec<VerifyEvent>,
    /// Per ground-truth claim: the final verdict "flagged erroneous" after
    /// user interaction (claims never reached keep the tool's tentative
    /// verdict for AggChecker, and no flag for manual tools).
    pub flagged: Vec<bool>,
    pub budget: f64,
}

impl Session {
    /// Number of correctly verified claims at time `t` (for Figure 6).
    pub fn verified_at(&self, t: f64) -> usize {
        self.events.iter().filter(|e| e.at <= t).count()
    }

    /// Claims verified per minute (Figure 7).
    pub fn throughput(&self) -> f64 {
        let end = self
            .events
            .last()
            .map(|e| e.at)
            .unwrap_or(self.budget)
            .max(1.0);
        self.events.len() as f64 / (end / 60.0)
    }
}

/// A simulated participant.
#[derive(Debug, Clone, Copy)]
pub struct User {
    /// Latency multiplier (1.0 = nominal; higher = slower).
    pub pace: f64,
    /// Probability of successfully composing a manual query.
    pub sql_skill: f64,
    /// Probability of successfully assembling a custom query in the
    /// AggChecker UI.
    pub custom_skill: f64,
    /// Probability that a manually composed query is subtly wrong, so the
    /// user reaches a wrong verdict without noticing (§7.2: SQL users'
    /// precision was only 56.7%).
    pub misjudge: f64,
}

impl User {
    /// The on-site panel: eight participants, seven CS majors (§7.2).
    pub fn onsite_panel(seed: u64) -> Vec<User> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..8)
            .map(|i| User {
                pace: 0.8 + 0.5 * rng.gen::<f64>(),
                // One participant (the non-CS major) is markedly weaker.
                sql_skill: if i == 7 {
                    0.25
                } else {
                    0.55 + 0.25 * rng.gen::<f64>()
                },
                custom_skill: 0.9,
                misjudge: 0.2 + 0.15 * rng.gen::<f64>(),
            })
            .collect()
    }

    /// Crowd workers: no IT background assumed, no training (Appendix D).
    pub fn crowd_panel(seed: u64, n: usize) -> Vec<User> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FD);
        (0..n)
            .map(|_| User {
                pace: 1.3 + 1.2 * rng.gen::<f64>(),
                sql_skill: 0.02 + 0.08 * rng.gen::<f64>(),
                custom_skill: 0.6,
                misjudge: 0.4,
            })
            .collect()
    }
}

/// Simulate one session.
///
/// `outcomes` are the aligned automated results for the article's claims
/// (from [`crate::runner::run_corpus`]); `budget` in seconds.
pub fn simulate_session(
    outcomes: &[ClaimOutcome],
    user: &User,
    tool: Tool,
    budget: f64,
    rng: &mut StdRng,
) -> Session {
    let mut t = 0.0f64;
    let mut events = Vec::new();
    // Tentative flags from the automated stage (AggChecker only).
    let mut flagged: Vec<bool> = outcomes
        .iter()
        .map(|o| tool == Tool::AggChecker && o.detected && o.flagged_erroneous)
        .collect();

    for (i, outcome) in outcomes.iter().enumerate() {
        if t >= budget {
            break;
        }
        match tool {
            Tool::AggChecker => {
                // Review the tentative result.
                t += user.pace * (6.0 + 6.0 * rng.gen::<f64>());
                let (action, extra, success) = match outcome.truth_rank {
                    Some(0) => (Action::Top1, 2.0 + 2.0 * rng.gen::<f64>(), true),
                    Some(r) if r < 5 => (Action::Top5, 8.0 + 6.0 * rng.gen::<f64>(), true),
                    Some(r) if r < 10 => (Action::Top10, 14.0 + 8.0 * rng.gen::<f64>(), true),
                    _ => (
                        Action::Custom,
                        45.0 + 45.0 * rng.gen::<f64>(),
                        rng.gen_bool(user.custom_skill),
                    ),
                };
                t += user.pace * extra;
                if t > budget {
                    break;
                }
                if success {
                    events.push(VerifyEvent {
                        at: t,
                        claim: i,
                        action,
                    });
                    // Picking from the suggestion list shows the true
                    // query's result, so the verdict is exact; a custom
                    // assembly can still go subtly wrong.
                    let wrong = action == Action::Custom && rng.gen_bool(user.misjudge * 0.25);
                    flagged[i] = (!outcome.truly_correct) ^ wrong;
                }
            }
            Tool::Sql | Tool::Spreadsheet => {
                let base = if tool == Tool::Sql { 60.0 } else { 75.0 };
                t += user.pace * (base + 60.0 * rng.gen::<f64>());
                if t > budget {
                    break;
                }
                let mut success = rng.gen_bool(user.sql_skill);
                if !success && t + user.pace * 60.0 <= budget {
                    // One retry.
                    t += user.pace * 60.0;
                    success = rng.gen_bool(user.sql_skill * 0.6);
                }
                if success {
                    events.push(VerifyEvent {
                        at: t,
                        claim: i,
                        action: Action::Manual,
                    });
                    // A hand-written query may be subtly wrong (wrong
                    // predicate, wrong aggregate) without the user
                    // noticing — the verdict flips.
                    let wrong = rng.gen_bool(user.misjudge);
                    flagged[i] = (!outcome.truly_correct) ^ wrong;
                }
            }
        }
    }
    Session {
        events,
        flagged,
        budget,
    }
}

/// Confusion matrix of a session's final verdicts against ground truth.
pub fn session_confusion(session: &Session, outcomes: &[ClaimOutcome]) -> Confusion {
    let mut c = Confusion::default();
    for (o, flag) in outcomes.iter().zip(&session.flagged) {
        c.record(!o.truly_correct, *flag);
    }
    c
}

/// Tally of verification actions across sessions (Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct ActionTally {
    pub top1: usize,
    pub top5: usize,
    pub top10: usize,
    pub custom: usize,
}

impl ActionTally {
    pub fn add(&mut self, session: &Session) {
        for e in &session.events {
            match e.action {
                Action::Top1 => self.top1 += 1,
                Action::Top5 => self.top5 += 1,
                Action::Top10 => self.top10 += 1,
                Action::Custom => self.custom += 1,
                Action::Manual => {}
            }
        }
    }

    pub fn total(&self) -> usize {
        self.top1 + self.top5 + self.top10 + self.custom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes(ranks: &[Option<usize>], correct: &[bool]) -> Vec<ClaimOutcome> {
        ranks
            .iter()
            .zip(correct)
            .map(|(r, c)| ClaimOutcome {
                truly_correct: *c,
                detected: true,
                flagged_erroneous: !*c, // perfect automated stage for tests
                truth_rank: *r,
                correctness_probability: if *c { 0.9 } else { 0.1 },
            })
            .collect()
    }

    #[test]
    fn aggchecker_user_is_faster_than_sql_user() {
        let os = outcomes(
            &[Some(0), Some(0), Some(2), Some(0), Some(7), Some(0)],
            &[true, true, true, false, true, true],
        );
        let user = User {
            pace: 1.0,
            sql_skill: 0.6,
            custom_skill: 0.9,
            misjudge: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let ac = simulate_session(&os, &user, Tool::AggChecker, 1200.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let sql = simulate_session(&os, &user, Tool::Sql, 1200.0, &mut rng);
        assert!(ac.events.len() >= sql.events.len());
        assert!(ac.throughput() > sql.throughput());
    }

    #[test]
    fn budget_cuts_sessions_short() {
        let os = outcomes(&[Some(0); 30], &[true; 30]);
        let user = User {
            pace: 1.0,
            sql_skill: 0.6,
            custom_skill: 0.9,
            misjudge: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let s = simulate_session(&os, &user, Tool::AggChecker, 60.0, &mut rng);
        assert!(s.events.len() < 30);
        assert!(s.events.iter().all(|e| e.at <= 60.0));
    }

    #[test]
    fn processed_claims_get_perfect_verdicts() {
        let os = outcomes(&[Some(0), Some(0)], &[false, true]);
        let user = User {
            pace: 0.5,
            sql_skill: 0.9,
            custom_skill: 0.9,
            misjudge: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let s = simulate_session(&os, &user, Tool::AggChecker, 3600.0, &mut rng);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.flagged, vec![true, false]);
        let c = session_confusion(&s, &os);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.precision(), 1.0);
    }

    #[test]
    fn action_tally_tracks_click_depth() {
        let os = outcomes(&[Some(0), Some(3), Some(8), None], &[true; 4]);
        let user = User {
            pace: 0.2,
            sql_skill: 0.9,
            custom_skill: 1.0,
            misjudge: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let s = simulate_session(&os, &user, Tool::AggChecker, 3600.0, &mut rng);
        let mut tally = ActionTally::default();
        tally.add(&s);
        assert_eq!(tally.top1, 1);
        assert_eq!(tally.top5, 1);
        assert_eq!(tally.top10, 1);
        assert_eq!(tally.custom, 1);
        assert_eq!(tally.total(), 4);
    }

    #[test]
    fn crowd_spreadsheet_users_rarely_succeed() {
        let os = outcomes(&[Some(0); 8], &[false; 8]);
        let users = User::crowd_panel(7, 10);
        let mut verified = 0usize;
        for (i, u) in users.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            let s = simulate_session(&os, u, Tool::Spreadsheet, 600.0, &mut rng);
            verified += s.events.len();
        }
        // 10 workers × 8 claims: spreadsheet success stays in single digits.
        assert!(verified < 8, "spreadsheet verified {verified}");
    }

    #[test]
    fn panels_are_deterministic() {
        let a = User::onsite_panel(5);
        let b = User::onsite_panel(5);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pace, y.pace);
            assert_eq!(x.sql_skill, y.sql_skill);
        }
    }
}
