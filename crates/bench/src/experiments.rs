//! One module per table/figure of the paper, plus the shared experiment
//! context. See DESIGN.md §3 for the experiment index.
//!
//! Every experiment is a function `fn(&ExpContext) -> String` returning the
//! formatted table; the `experiments` binary dispatches by name and the
//! integration tests assert on the shapes.

pub mod ablations;
pub mod accuracy;
pub mod corpusfigs;
pub mod study;
pub mod table6;

use crate::runner::{run_corpus, CorpusRun};
use agg_core::CheckerConfig;
use agg_corpus::{generate_corpus, CorpusSpec, TestCase};
use std::sync::OnceLock;

/// Corpus scale for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's scale: 53 articles.
    Full,
    /// A fast smoke-scale corpus for CI and iteration.
    Quick,
}

/// Shared state across experiments: the corpus and the default checker run.
pub struct ExpContext {
    pub spec: CorpusSpec,
    pub corpus: Vec<TestCase>,
    pub scale: Scale,
    default_run: OnceLock<CorpusRun>,
}

impl ExpContext {
    pub fn new(scale: Scale, seed: u64) -> ExpContext {
        let mut spec = CorpusSpec {
            seed,
            ..CorpusSpec::default()
        };
        if scale == Scale::Quick {
            spec.n_articles = 10;
            spec.max_claims = 8;
            spec.max_rows = 200;
        }
        let corpus = generate_corpus(&spec);
        ExpContext {
            spec,
            corpus,
            scale,
            default_run: OnceLock::new(),
        }
    }

    /// The run with the paper's default configuration (cached).
    pub fn default_run(&self) -> &CorpusRun {
        self.default_run
            .get_or_init(|| run_corpus(&self.corpus, &CheckerConfig::default()))
    }

    /// Total ground-truth claims.
    pub fn total_claims(&self) -> usize {
        self.corpus.iter().map(|t| t.ground_truth.len()).sum()
    }
}

/// An experiment entry point: renders one paper artifact as text.
pub type Experiment = fn(&ExpContext) -> String;

/// All experiments, by paper artifact id.
pub const EXPERIMENTS: &[(&str, Experiment)] = &[
    ("table3", study::table3),
    ("table4", study::table4),
    ("table5", accuracy::table5),
    ("table6", table6::table6),
    ("table8", study::table8),
    ("table10", accuracy::table10),
    ("table11", study::table11),
    ("fig6", study::fig6),
    ("fig7", study::fig7),
    ("fig8", corpusfigs::fig8),
    ("fig9a", corpusfigs::fig9a),
    ("fig9b", corpusfigs::fig9b),
    ("fig9c", corpusfigs::fig9c),
    ("fig10", accuracy::fig10),
    ("fig11", accuracy::fig11),
    ("fig12", accuracy::fig12),
    ("fig13", accuracy::fig13),
    ("ablations", ablations::ablations),
];

/// Run one experiment by name.
pub fn run_experiment(name: &str, ctx: &ExpContext) -> Option<String> {
    EXPERIMENTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f(ctx))
}

/// Names of all experiments, in paper order.
pub fn experiment_names() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|(n, _)| *n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let names = experiment_names();
        assert!(names.len() >= 17, "all tables and figures registered");
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn unknown_experiment_is_none() {
        let ctx = ExpContext::new(Scale::Quick, 3);
        assert!(run_experiment("table99", &ctx).is_none());
    }
}
