//! Shared corpus runner: verify every article of a corpus and align the
//! results with ground truth.

use crate::metrics::{Confusion, Coverage};
use agg_core::{AggChecker, CheckerConfig, Verdict};
use agg_corpus::stats::align_claims;
use agg_corpus::TestCase;
use agg_nlp::synonyms::SynonymDict;
use std::time::Duration;

/// The aligned outcome for one ground-truth claim.
#[derive(Debug, Clone)]
pub struct ClaimOutcome {
    /// Ground-truth label: is the claim actually correct?
    pub truly_correct: bool,
    /// Was the claim detected at all?
    pub detected: bool,
    /// Checker verdict (detected claims only).
    pub flagged_erroneous: bool,
    /// Rank of the ground-truth query among the claim's top candidates
    /// (0-based; `None` = absent).
    pub truth_rank: Option<usize>,
    /// The checker's correctness probability for the claim.
    pub correctness_probability: f64,
}

/// Results of running the checker over a corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusRun {
    pub outcomes: Vec<ClaimOutcome>,
    /// Summed evaluation statistics.
    pub candidates_evaluated: u64,
    pub cubes_executed: u64,
    pub cubes_cached: u64,
    pub elapsed: Duration,
    pub query_time: Duration,
}

impl CorpusRun {
    /// Confusion matrix for fully automated erroneous-claim detection.
    /// Undetected claims count as "not flagged".
    pub fn confusion(&self) -> Confusion {
        let mut c = Confusion::default();
        for o in &self.outcomes {
            c.record(!o.truly_correct, o.detected && o.flagged_erroneous);
        }
        c
    }

    /// Top-k coverage over all claims (undetected claims = miss).
    pub fn coverage(&self) -> Coverage {
        let mut cov = Coverage::default();
        for o in &self.outcomes {
            cov.record(if o.detected { o.truth_rank } else { None });
        }
        cov
    }

    /// Coverage split: (correct claims, incorrect claims) — Figure 10.
    pub fn coverage_split(&self) -> (Coverage, Coverage) {
        let mut correct = Coverage::default();
        let mut incorrect = Coverage::default();
        for o in &self.outcomes {
            let rank = if o.detected { o.truth_rank } else { None };
            if o.truly_correct {
                correct.record(rank);
            } else {
                incorrect.record(rank);
            }
        }
        (correct, incorrect)
    }
}

/// Run the checker over a corpus with the given configuration. A fresh
/// checker (fresh cache) is built per article — articles have distinct
/// databases.
pub fn run_corpus(corpus: &[TestCase], cfg: &CheckerConfig) -> CorpusRun {
    run_corpus_with(corpus, cfg, None)
}

/// Like [`run_corpus`], with an optional synonym-dictionary override
/// (`Some(SynonymDict::empty())` disables the WordNet substitute).
pub fn run_corpus_with(
    corpus: &[TestCase],
    cfg: &CheckerConfig,
    synonyms: Option<SynonymDict>,
) -> CorpusRun {
    let mut run = CorpusRun::default();
    for tc in corpus {
        let mut checker =
            AggChecker::new(tc.db.clone(), cfg.clone()).expect("valid checker configuration");
        if let Some(s) = &synonyms {
            checker = checker.with_synonyms(s.clone());
        }
        let report = checker
            .check_text(&tc.article_html)
            .expect("verification succeeds");

        run.candidates_evaluated += report.stats.candidates_evaluated;
        run.cubes_executed += report.stats.cubes_executed;
        run.cubes_cached += report.stats.cubes_cached;
        run.elapsed += report.stats.elapsed;
        run.query_time += report.stats.query_time;

        let detected_values: Vec<f64> = report.claims.iter().map(|c| c.claimed_value).collect();
        let aligned = align_claims(&detected_values, &tc.ground_truth);
        for (g, slot) in tc.ground_truth.iter().zip(aligned) {
            match slot {
                None => run.outcomes.push(ClaimOutcome {
                    truly_correct: g.is_correct,
                    detected: false,
                    flagged_erroneous: false,
                    truth_rank: None,
                    correctness_probability: 0.0,
                }),
                Some(idx) => {
                    let claim = &report.claims[idx];
                    let truth_rank = claim
                        .top_queries
                        .iter()
                        .position(|rq| rq.query.semantically_equal(&g.query));
                    run.outcomes.push(ClaimOutcome {
                        truly_correct: g.is_correct,
                        detected: true,
                        flagged_erroneous: claim.verdict == Verdict::Erroneous,
                        truth_rank,
                        correctness_probability: claim.correctness_probability,
                    });
                }
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_corpus::builtin::all_builtin;
    use agg_corpus::{generate_corpus, CorpusSpec};

    #[test]
    fn builtin_cases_run_and_align() {
        let corpus = all_builtin();
        let run = run_corpus(&corpus, &CheckerConfig::default());
        assert_eq!(
            run.outcomes.len(),
            corpus.iter().map(|t| t.ground_truth.len()).sum::<usize>()
        );
        assert!(run.outcomes.iter().all(|o| o.detected));
        assert!(run.candidates_evaluated > 0);
    }

    #[test]
    fn synthetic_corpus_has_reasonable_accuracy() {
        let corpus = generate_corpus(&CorpusSpec::small(4, 33));
        let run = run_corpus(&corpus, &CheckerConfig::default());
        let cov = run.coverage();
        assert!(cov.total() > 0);
        // The checker must beat random guessing by a wide margin: the
        // candidate space is in the thousands, so even modest top-10
        // coverage demonstrates the pipeline works end to end.
        assert!(
            cov.at(10) > 0.3,
            "top-10 coverage {:.3} suspiciously low",
            cov.at(10)
        );
    }
}
