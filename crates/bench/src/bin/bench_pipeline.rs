//! Machine-readable end-to-end pipeline benchmark: emits
//! `BENCH_pipeline.json`.
//!
//! ```text
//! cargo run --release -p agg-bench --bin bench_pipeline
//! cargo run --release -p agg-bench --bin bench_pipeline -- --docs 12 --out path.json
//! ```
//!
//! Where `bench_cube` times the cube kernel in isolation, this bin times the
//! **whole verification pipeline** (parse → match → EM with cube evaluation
//! → report) over a batch of documents summarizing one shared database —
//! the workload `BatchVerifier` exists for. Variants:
//!
//! * `sequential_fresh` — per-document verification: a fresh checker (cold
//!   cache, cold catalog) per document. The paper's single-document
//!   deployment, repeated.
//! * `sequential_shared` — one checker reused document-after-document
//!   (warm sharded cache, no batching layer).
//! * `batch_1w` / `batch_4w` — `BatchVerifier` with 1 and 4 workers: one
//!   shared cube-task scheduler, shared sharded cache with single-flight,
//!   per-worker dense-grid arenas.
//! * `stream_1w` / `stream_2w` / `stream_4w` / `stream_8w` —
//!   `StreamingVerifier` with a persistent worker pool: documents
//!   submitted one by one (fixed arrival order = input order) to the
//!   bounded intake, verified by whatever workers are free, tickets
//!   awaited. Measures the dynamic-admission front-end over the same
//!   substrate.
//! * `stream_deadline` — `StreamingVerifier` with 8 workers under
//!   per-document deadlines: each corpus document is submitted twice,
//!   once with a generous deadline and once already expired. Expired
//!   documents settle as partial reports without ever scanning a row
//!   (`partial_rate` is exactly 0.5 by construction), so the completed
//!   half's `rows_scanned_per_run`/`scan_passes` stay bit-equal to the
//!   deadline-free streaming variants — the CI dedup gates include this
//!   variant to pin that.
//! * `server_loopback` — the same corpus submitted over real TCP on
//!   127.0.0.1: `VerifyServer` (4 workers) in front of the service, one
//!   `BinaryClient` submitting every document then awaiting each, reports
//!   reassembled from the streamed verdict frames. One client = one
//!   intake lane = the same fixed arrival order as the in-process
//!   streaming variants, so the dedup gates hold over the wire too.
//!
//! * `partitioned_1t` / `partitioned_2t` / `partitioned_4t` — one checker
//!   with 1/2/4 **scan** threads verifying a second, much larger corpus
//!   (`--partition-rows`, default 1M rows — big enough that every fused
//!   pass spans multiple fixed 64-block partitions). Where the families
//!   above parallelize *documents*, these parallelize the *scan itself*:
//!   partition boundaries are a pure function of row count (never worker
//!   count) and partition grids merge in ascending order, so all three
//!   thread counts — and a partition-span-1 control run — must produce
//!   bit-identical `content_fingerprint()`s and identical
//!   `rows_scanned`/`scan_passes`/`partitions_scanned`. `threads_used`
//!   (from `partition_parallelism`) and `effective_parallelism` are
//!   reported honestly: on a 1-core runner they stay 1/0.25 rather than
//!   faking a speedup, and multi-core CI shows the real one. The
//!   top-level `partition_*` fields feed `xtask partition-gate`.
//!
//! * `append_1w` / `append_2w` / `append_4w` / `append_8w` — incremental
//!   re-verification over the same large corpus: verify cold, append ~1%
//!   more rows (cloned from the biggest table's tail), re-verify. The
//!   watermark/checkpoint machinery must *patch* the stale cached grids
//!   over just the appended tail — `delta_rows_scanned` stays a small
//!   fraction of a cold run's `rows_scanned`, patched reports are
//!   bit-identical to a fresh checker over the grown corpus, and the
//!   patch work (`grids_patched`, `delta_rows_scanned`) is identical at
//!   every worker count. Only the re-verification is timed. The
//!   `append_reverify` variants and top-level `append_*` fields feed
//!   `xtask delta-gate`.
//!
//! All variants are checked to produce identical reports before timing.
//! Each variant reports `rows_scanned_per_run` (real rows read by its
//! fused scan passes over one full batch), `scan_passes` and
//! `fused_tasks_per_pass` (the fusion factor: cube tasks per physical
//! table scan), plus the scheduler's dedup counters. Single-flight plus
//! atomic wave probes make `batch_4w` rows *and* passes *exactly* equal
//! `batch_1w` — `xtask dedup-gate` enforces both in CI, deterministically,
//! unlike any timing gate — and the fused pass count must not exceed
//! `sequential_shared`'s. The same exact equality holds across all four
//! streaming worker counts for the fixed arrival order (the streaming
//! dedup gates).

use agg_bench::metrics::median_timed_ns;
use agg_core::{
    AggChecker, BatchVerifier, CheckerConfig, EvalStats, ReportStatus, StreamConfig,
    StreamingVerifier, VerificationReport,
};
use agg_corpus::{generate_multi_doc_case, CorpusSpec};
use agg_server::client::BinaryClient;
use agg_server::{ServerConfig, VerifyServer};
use std::time::{Duration, Instant};

/// Scheduling-relevant stats summed over one run's reports. The tuple is
/// `Ord`, so `median_timed_ns` can pair it with the median-time sample.
type RunCounters = (u64, u64, u64, u64, u64); // rows, tasks, deduped, waits, passes

fn counters(reports: &[VerificationReport]) -> RunCounters {
    let mut c = (0, 0, 0, 0, 0);
    for r in reports {
        c.0 += r.stats.rows_scanned;
        c.1 += r.stats.tasks_executed;
        c.2 += r.stats.tasks_deduped;
        c.3 += r.stats.singleflight_waits;
        c.4 += r.stats.scan_passes;
    }
    c
}

struct Variant {
    name: &'static str,
    workers: u32,
    median_ns: u64,
    docs_per_sec: f64,
    /// Rows scanned by this variant's cube executions in one full run
    /// (caching and single-flight make this differ across variants), per
    /// second.
    rows_scanned_per_run: u64,
    rows_scanned_per_sec: f64,
    /// Cube tasks executed in one full run.
    tasks_executed: u64,
    /// Cube requests resolved without a new execution (cross-claim merge
    /// or single-flight).
    tasks_deduped: u64,
    /// Requests that blocked on another worker's in-flight cube.
    singleflight_waits: u64,
    /// Fused row passes executed in one full run (same-scope tasks share
    /// one pass; `rows_scanned_per_run` is the rows those passes read).
    scan_passes: u64,
    /// Average member tasks per fused pass.
    fused_tasks_per_pass: f64,
}

/// One streaming run: spin up the service, submit every document in input
/// order (the fixed arrival order the dedup gates assume), await every
/// ticket, shut down. Service startup/teardown is deliberately inside the
/// measured region — a docs/sec figure for the front-end should include
/// what a deployment pays.
fn run_streaming(
    db: &agg_relational::Database,
    cfg: &CheckerConfig,
    texts: &[&str],
    workers: usize,
) -> Vec<VerificationReport> {
    let service = StreamingVerifier::new(
        db.clone(),
        cfg.clone(),
        StreamConfig {
            workers,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    let tickets: Vec<_> = texts
        .iter()
        .map(|t| service.submit_text(t).unwrap())
        .collect();
    let reports = tickets
        .into_iter()
        .map(|t| t.wait().unwrap())
        .collect::<Vec<_>>();
    drop(service.into_checker());
    reports
}

/// The deadline-pressure run: every document submitted twice — once with a
/// deadline far past any realistic run time, once already expired. The
/// expired copy must settle as a partial report without scanning a row
/// (the worker's pop-time deadline check fires before any evaluation), so
/// exactly half the accepted documents land in the `timed_out` bin and the
/// other half produce reports identical to the deadline-free service.
fn run_stream_deadline(
    db: &agg_relational::Database,
    cfg: &CheckerConfig,
    texts: &[&str],
    workers: usize,
) -> Vec<VerificationReport> {
    let service = StreamingVerifier::new(
        db.clone(),
        cfg.clone(),
        StreamConfig {
            workers,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    let mut tickets = Vec::with_capacity(texts.len() * 2);
    for t in texts {
        tickets.push(
            service
                .submit_text_with_deadline(t, Some(Instant::now() + Duration::from_secs(60)))
                .unwrap(),
        );
        tickets.push(
            service
                .submit_text_with_deadline(t, Some(Instant::now()))
                .unwrap(),
        );
    }
    let reports = tickets
        .into_iter()
        .map(|t| t.wait().unwrap())
        .collect::<Vec<_>>();
    drop(service.into_checker());
    reports
}

/// One networked run: a `VerifyServer` on an ephemeral loopback port, a
/// single `BinaryClient` submitting every document in input order and then
/// awaiting each, reports reassembled from the streamed verdict frames.
/// A single client means a single intake lane, so the service sees the
/// same fixed arrival order as `run_streaming` and the dedup gates apply
/// unchanged. Server startup/teardown and all framing/socket costs are
/// inside the measured region.
fn run_server_loopback(
    db: &agg_relational::Database,
    cfg: &CheckerConfig,
    texts: &[&str],
    workers: usize,
) -> Vec<VerificationReport> {
    let service = StreamingVerifier::new(
        db.clone(),
        cfg.clone(),
        StreamConfig {
            workers,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    let server = VerifyServer::start(
        "127.0.0.1:0",
        vec![("bench".to_string(), service)],
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = BinaryClient::connect(server.local_addr(), "bench").unwrap();
    let docs: Vec<u64> = texts
        .iter()
        .map(|t| client.submit(t, None).unwrap())
        .collect();
    let reports: Vec<VerificationReport> = docs
        .into_iter()
        .map(|d| client.await_report(d).unwrap())
        .collect();
    client.goodbye().unwrap();
    server.shutdown();
    reports
}

fn main() {
    let mut docs = 8usize;
    let mut samples = 5usize;
    let mut case_index = 1usize;
    let mut partition_rows = 1_000_000usize;
    let mut out = String::from("BENCH_pipeline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--docs" => docs = args.next().and_then(|v| v.parse().ok()).expect("--docs N"),
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples N")
            }
            "--case-index" => {
                case_index = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--case-index N")
            }
            "--partition-rows" => {
                partition_rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--partition-rows N")
            }
            "--out" => out = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_pipeline [--docs N] [--samples N] [--case-index N] [--partition-rows N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let case = generate_multi_doc_case(&CorpusSpec::default(), case_index, docs);
    let db_rows = case.db.total_rows();
    let cfg = CheckerConfig::default();
    let texts: Vec<&str> = case.articles.iter().map(String::as_str).collect();

    // --- Correctness gate: every variant must produce identical reports. --
    let reference: Vec<String> = texts
        .iter()
        .map(|t| {
            let checker = AggChecker::new(case.db.clone(), cfg.clone()).unwrap();
            checker.check_text(t).unwrap().content_fingerprint()
        })
        .collect();
    for workers in [1usize, 4] {
        let batch_cfg = CheckerConfig {
            threads: workers,
            ..cfg.clone()
        };
        let batch = BatchVerifier::new(case.db.clone(), batch_cfg).unwrap();
        let reports = batch.verify_texts(&texts).unwrap();
        for (i, (r, expected)) in reports.iter().zip(&reference).enumerate() {
            assert_eq!(
                &r.content_fingerprint(),
                expected,
                "batch({workers}w) disagrees with per-document verification on doc {i}"
            );
        }
    }
    for workers in [1usize, 2, 4, 8] {
        let reports = run_streaming(&case.db, &cfg, &texts, workers);
        for (i, (r, expected)) in reports.iter().zip(&reference).enumerate() {
            assert_eq!(
                &r.content_fingerprint(),
                expected,
                "stream({workers}w) disagrees with per-document verification on doc {i}"
            );
        }
    }
    // Wire correctness: a report reassembled from streamed verdict frames
    // must fingerprint identically to solo verification.
    {
        let reports = run_server_loopback(&case.db, &cfg, &texts, 4);
        for (i, (r, expected)) in reports.iter().zip(&reference).enumerate() {
            assert_eq!(
                &r.content_fingerprint(),
                expected,
                "server_loopback disagrees with per-document verification on doc {i}"
            );
        }
    }
    // Deadline-pressure correctness: exactly half the submissions expire
    // (partial, zero rows scanned), the surviving half is bit-identical to
    // per-document verification.
    let deadline_reports = run_stream_deadline(&case.db, &cfg, &texts, 8);
    let partial = deadline_reports
        .iter()
        .filter(|r| r.status.is_partial())
        .count();
    let partial_rate = partial as f64 / deadline_reports.len() as f64;
    assert_eq!(
        partial * 2,
        deadline_reports.len(),
        "every already-expired submission (and only those) must settle partial"
    );
    for (i, r) in deadline_reports.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(
                &r.content_fingerprint(),
                &reference[i / 2],
                "stream_deadline completed doc {} disagrees with per-document verification",
                i / 2
            );
        } else {
            assert_eq!(r.status, ReportStatus::TimedOut);
            assert_eq!(
                r.stats.rows_scanned, 0,
                "an expired document must never reach the scan substrate"
            );
        }
    }

    // --- Timed variants. ------------------------------------------------
    let run_sequential_fresh = || {
        let reports: Vec<VerificationReport> = texts
            .iter()
            .map(|t| {
                let checker = AggChecker::new(case.db.clone(), cfg.clone()).unwrap();
                checker.check_text(t).unwrap()
            })
            .collect();
        counters(&reports)
    };
    let run_sequential_shared = || {
        let checker = AggChecker::new(case.db.clone(), cfg.clone()).unwrap();
        let reports: Vec<VerificationReport> = texts
            .iter()
            .map(|t| checker.check_text(t).unwrap())
            .collect();
        counters(&reports)
    };
    let run_batch = |workers: usize| {
        let batch_cfg = CheckerConfig {
            threads: workers,
            ..cfg.clone()
        };
        let batch = BatchVerifier::new(case.db.clone(), batch_cfg).unwrap();
        counters(&batch.verify_texts(&texts).unwrap())
    };
    let run_stream = |workers: usize| counters(&run_streaming(&case.db, &cfg, &texts, workers));
    // Expired documents contribute zero to every scheduling counter, so
    // summing over all reports counts exactly the completed half.
    let run_deadline = || counters(&run_stream_deadline(&case.db, &cfg, &texts, 8));
    let run_loopback = || counters(&run_server_loopback(&case.db, &cfg, &texts, 4));

    let variant = |name, workers: u32, (median, c): (u64, RunCounters)| {
        let secs = median as f64 / 1e9;
        Variant {
            name,
            workers,
            median_ns: median,
            docs_per_sec: docs as f64 / secs,
            rows_scanned_per_run: c.0,
            rows_scanned_per_sec: c.0 as f64 / secs,
            tasks_executed: c.1,
            tasks_deduped: c.2,
            singleflight_waits: c.3,
            scan_passes: c.4,
            fused_tasks_per_pass: EvalStats {
                tasks_executed: c.1,
                scan_passes: c.4,
                ..EvalStats::default()
            }
            .fused_tasks_per_pass(),
        }
    };
    let variants = [
        variant(
            "sequential_fresh",
            1,
            median_timed_ns(samples, run_sequential_fresh),
        ),
        variant(
            "sequential_shared",
            1,
            median_timed_ns(samples, run_sequential_shared),
        ),
        variant("batch_1w", 1, median_timed_ns(samples, || run_batch(1))),
        variant("batch_4w", 4, median_timed_ns(samples, || run_batch(4))),
        variant("stream_1w", 1, median_timed_ns(samples, || run_stream(1))),
        variant("stream_2w", 2, median_timed_ns(samples, || run_stream(2))),
        variant("stream_4w", 4, median_timed_ns(samples, || run_stream(4))),
        variant("stream_8w", 8, median_timed_ns(samples, || run_stream(8))),
        variant("stream_deadline", 8, median_timed_ns(samples, run_deadline)),
        variant("server_loopback", 4, median_timed_ns(samples, run_loopback)),
    ];

    let sequential_ns = variants[0].median_ns as f64;
    let best_batch_ns = variants[2].median_ns.min(variants[3].median_ns) as f64;
    let speedup = sequential_ns / best_batch_ns;
    let dedup_exact = variants[2].rows_scanned_per_run == variants[3].rows_scanned_per_run;
    let passes_exact = variants[2].scan_passes == variants[3].scan_passes;
    let stream = &variants[4..8];
    let stream_rows_exact = stream
        .iter()
        .all(|v| v.rows_scanned_per_run == stream[0].rows_scanned_per_run);
    let stream_passes_exact = stream
        .iter()
        .all(|v| v.scan_passes == stream[0].scan_passes);
    let best_stream_ns = stream.iter().map(|v| v.median_ns).min().unwrap() as f64;
    let stream_speedup = sequential_ns / best_stream_ns;
    // The deadline variant's completed half must scan exactly what the
    // deadline-free streaming runs scan — expired docs change admission,
    // never the substrate (the CI dedup gates pin this too).
    let deadline_variant = &variants[8];
    assert_eq!(
        deadline_variant.rows_scanned_per_run, stream[0].rows_scanned_per_run,
        "stream_deadline's completed docs scanned different rows than the dedup-gated baseline"
    );
    assert_eq!(
        deadline_variant.scan_passes, stream[0].scan_passes,
        "stream_deadline's completed docs formed different passes than the dedup-gated baseline"
    );
    // The wire changes how documents arrive, never what the substrate
    // scans: one client = one lane = the in-process arrival order.
    let loopback_variant = &variants[9];
    assert_eq!(
        loopback_variant.rows_scanned_per_run, stream[0].rows_scanned_per_run,
        "server_loopback scanned different rows than the dedup-gated baseline"
    );
    assert_eq!(
        loopback_variant.scan_passes, stream[0].scan_passes,
        "server_loopback formed different passes than the dedup-gated baseline"
    );

    // --- Partition-parallel scans: a corpus big enough to split. ---------
    // The families above parallelize documents over a small database; this
    // one parallelizes the scan itself over a corpus whose every fused
    // pass spans multiple fixed 64-block partitions. The determinism
    // contract says worker count — and partition span, on the generator's
    // integer-valued columns — must never show up in a report.
    let part_docs = 2usize;
    let part_case = generate_multi_doc_case(
        &CorpusSpec {
            min_rows: partition_rows,
            max_rows: partition_rows,
            ..CorpusSpec::default()
        },
        case_index,
        part_docs,
    );
    let part_texts: Vec<&str> = part_case.articles.iter().map(String::as_str).collect();
    let part_rows = part_case.db.total_rows();
    // (rows, passes, partitions, merges, max parallelism gauge)
    type PartCounters = (u64, u64, u64, u64, u32);
    let part_run = |threads: usize, partition_blocks: Option<usize>| {
        let run_cfg = CheckerConfig {
            threads,
            partition_blocks: partition_blocks.unwrap_or(cfg.partition_blocks),
            ..cfg.clone()
        };
        let checker = AggChecker::new(part_case.db.clone(), run_cfg).unwrap();
        let mut fingerprints = Vec::with_capacity(part_texts.len());
        let mut c: PartCounters = (0, 0, 0, 0, 0);
        for t in &part_texts {
            let r = checker.check_text(t).unwrap();
            c.0 += r.stats.rows_scanned;
            c.1 += r.stats.scan_passes;
            c.2 += r.stats.partitions_scanned;
            c.3 += r.stats.partition_merges;
            c.4 = c.4.max(r.stats.partition_parallelism);
            fingerprints.push(r.content_fingerprint());
        }
        (fingerprints, c)
    };
    let (part_reference, part_ref_counters) = part_run(1, None);
    assert!(
        part_ref_counters.2 > 0,
        "the {part_rows}-row partition corpus must span multiple partitions"
    );
    let (size1_prints, size1_counters) = part_run(1, Some(1));
    assert_eq!(
        size1_prints, part_reference,
        "partition-span-1 control diverged from the default span — integer \
         corpus sums must merge associatively"
    );
    for threads in [2usize, 4] {
        let (prints, c) = part_run(threads, None);
        assert_eq!(
            prints, part_reference,
            "{threads}-thread partitioned run diverged from the 1-thread report"
        );
        assert_eq!(
            (c.0, c.1, c.2, c.3),
            (
                part_ref_counters.0,
                part_ref_counters.1,
                part_ref_counters.2,
                part_ref_counters.3
            ),
            "{threads}-thread partitioned counters diverged (only the parallelism gauge may)"
        );
    }

    struct PartitionVariant {
        name: &'static str,
        threads_requested: u32,
        threads_used: u32,
        median_ns: u64,
        docs_per_sec: f64,
        rows_scanned_per_run: u64,
        scan_passes: u64,
        partitions_scanned: u64,
        partition_merges: u64,
    }
    let part_variants: Vec<PartitionVariant> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let name: &'static str = match threads {
                1 => "partitioned_1t",
                2 => "partitioned_2t",
                _ => "partitioned_4t",
            };
            let (median_ns, c) = median_timed_ns(samples, || part_run(threads, None).1);
            PartitionVariant {
                name,
                threads_requested: threads as u32,
                // The parallelism gauge from the median run: distinct
                // workers that actually scanned partitions — 1 on a
                // hardware-clamped single-core runner, honestly reported
                // rather than echoing the request.
                threads_used: c.4.max(1),
                median_ns,
                docs_per_sec: part_docs as f64 / (median_ns as f64 / 1e9),
                rows_scanned_per_run: c.0,
                scan_passes: c.1,
                partitions_scanned: c.2,
                partition_merges: c.3,
            }
        })
        .collect();
    let partition_rows_equal = part_variants
        .iter()
        .all(|v| v.rows_scanned_per_run == part_variants[0].rows_scanned_per_run)
        && size1_counters.0 == part_variants[0].rows_scanned_per_run;
    let partition_passes_equal = part_variants
        .iter()
        .all(|v| v.scan_passes == part_variants[0].scan_passes)
        && size1_counters.1 == part_variants[0].scan_passes;

    // --- Incremental re-verification over appends. -----------------------
    // The watermark/checkpoint machinery's headline: verify the big corpus
    // cold, append ~1% more rows, and re-verify — the stale cached grids
    // must be *patched* over just the appended tail instead of rescanned.
    // A finer partition span than the partitioned family keeps the prefix
    // checkpoints near the corpus tail, so a 1% append costs ~1% of a full
    // rescan rather than most of a 64-block span. The `append_*` variants
    // and top-level `append_*` fields feed `xtask delta-gate`.
    let append_cfg = CheckerConfig {
        partition_blocks: 4,
        ..cfg.clone()
    };
    // The append batch: the last 1% of the biggest table's rows, cloned —
    // schema-valid by construction, and value-skewed exactly like the
    // corpus so patched aggregates move in every claim's scope.
    let (append_table, append_batch): (String, Vec<Vec<agg_relational::Value>>) = {
        let t = part_case
            .db
            .tables()
            .iter()
            .max_by_key(|t| t.row_count())
            .expect("partition corpus has tables");
        let n = t.row_count();
        let batch_len = (n / 100).max(1);
        let batch = (n - batch_len..n)
            .map(|r| (0..t.column_count()).map(|c| t.get(r, c)).collect())
            .collect();
        (t.name().to_string(), batch)
    };
    // The cold control: a fresh checker over the already-grown corpus.
    // Patched reports must be bit-identical to this, at every worker count.
    let grown_db = {
        let mut db = part_case.db.clone();
        db.append_rows(&append_table, &append_batch)
            .expect("append cloned rows");
        db
    };
    let grown_rows = grown_db.total_rows();
    let (append_reference, append_cold_rows) = {
        let checker = AggChecker::new(grown_db.clone(), append_cfg.clone()).unwrap();
        let mut prints = Vec::with_capacity(part_texts.len());
        let mut rows = 0u64;
        for t in &part_texts {
            let r = checker.check_text(t).unwrap();
            rows += r.stats.rows_scanned;
            prints.push(r.content_fingerprint());
        }
        (prints, rows)
    };
    // (delta rows, grids patched, total re-verify rows)
    type AppendCounters = (u64, u64, u64);
    let append_run = |threads: usize| -> (u64, AppendCounters) {
        let run_cfg = CheckerConfig {
            threads,
            ..append_cfg.clone()
        };
        let mut checker = AggChecker::new(part_case.db.clone(), run_cfg).unwrap();
        for t in &part_texts {
            checker.check_text(t).unwrap(); // cold pass warms cache + checkpoints
        }
        checker.append_rows(&append_table, &append_batch).unwrap();
        let start = Instant::now();
        let mut c: AppendCounters = (0, 0, 0);
        let mut prints = Vec::with_capacity(part_texts.len());
        for t in &part_texts {
            let r = checker.check_text(t).unwrap();
            c.0 += r.stats.delta_rows_scanned;
            c.1 += r.stats.grids_patched;
            c.2 += r.stats.rows_scanned;
            prints.push(r.content_fingerprint());
        }
        let reverify_ns = start.elapsed().as_nanos() as u64;
        assert_eq!(
            prints, append_reference,
            "{threads}-thread patched re-verification diverged from a cold checker \
             over the grown corpus"
        );
        (reverify_ns, c)
    };
    struct AppendVariant {
        name: &'static str,
        workers: u32,
        reverify_median_ns: u64,
        reverify_docs_per_sec: f64,
        delta_rows_scanned: u64,
        grids_patched: u64,
        rows_scanned_reverify: u64,
        rows_scanned_cold: u64,
    }
    let append_variants: Vec<AppendVariant> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let name: &'static str = match threads {
                1 => "append_1w",
                2 => "append_2w",
                4 => "append_4w",
                _ => "append_8w",
            };
            let mut runs: Vec<(u64, AppendCounters)> =
                (0..samples.max(1)).map(|_| append_run(threads)).collect();
            runs.sort_unstable();
            let (reverify_median_ns, c) = runs[runs.len() / 2];
            AppendVariant {
                name,
                workers: threads as u32,
                reverify_median_ns,
                reverify_docs_per_sec: part_docs as f64 / (reverify_median_ns as f64 / 1e9),
                delta_rows_scanned: c.0,
                grids_patched: c.1,
                rows_scanned_reverify: c.2,
                rows_scanned_cold: append_cold_rows,
            }
        })
        .collect();
    let first_append = &append_variants[0];
    assert!(
        first_append.grids_patched > 0,
        "the re-verification never patched a grid — checkpoint capture or the \
         delta path is dead"
    );
    let append_patch_equal = append_variants.iter().all(|v| {
        (v.delta_rows_scanned, v.grids_patched)
            == (first_append.delta_rows_scanned, first_append.grids_patched)
    });
    assert!(
        append_patch_equal,
        "patch work varied with the worker count — grids_patched/delta_rows_scanned \
         must be a pure function of the appended rows"
    );
    let append_delta_fraction =
        first_append.delta_rows_scanned as f64 / append_cold_rows.max(1) as f64;
    assert!(
        append_delta_fraction < 0.10,
        "re-verifying after a 1% append scanned {:.1}% of what a cold run scans — \
         the delta path is not saving work",
        append_delta_fraction * 100.0
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"docs\": {docs},\n"));
    json.push_str(&format!("  \"db_rows\": {db_rows},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"case\": \"{}\",\n", case.name));
    json.push_str("  \"reports_identical\": true,\n");
    json.push_str("  \"variants\": [\n");
    for (i, v) in variants.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"workers\": {}, \"median_ns\": {}, \"docs_per_sec\": {:.2}, \"rows_scanned_per_run\": {}, \"rows_scanned_per_sec\": {:.0}, \"tasks_executed\": {}, \"tasks_deduped\": {}, \"singleflight_waits\": {}, \"scan_passes\": {}, \"fused_tasks_per_pass\": {:.1}}}{}\n",
            v.name,
            v.workers,
            v.median_ns,
            v.docs_per_sec,
            v.rows_scanned_per_run,
            v.rows_scanned_per_sec,
            v.tasks_executed,
            v.tasks_deduped,
            v.singleflight_waits,
            v.scan_passes,
            v.fused_tasks_per_pass,
            if i + 1 < variants.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"rows_scanned_equal_across_workers\": {dedup_exact},\n"
    ));
    json.push_str(&format!(
        "  \"scan_passes_equal_across_workers\": {passes_exact},\n"
    ));
    json.push_str(&format!(
        "  \"stream_rows_scanned_equal_across_workers\": {stream_rows_exact},\n"
    ));
    json.push_str(&format!(
        "  \"stream_scan_passes_equal_across_workers\": {stream_passes_exact},\n"
    ));
    json.push_str("  \"partitioned\": [\n");
    for (i, v) in part_variants.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads_requested\": {}, \"threads_used\": {}, \"effective_parallelism\": {:.2}, \"median_ns\": {}, \"docs_per_sec\": {:.2}, \"rows_scanned_per_run\": {}, \"scan_passes\": {}, \"partitions_scanned\": {}, \"partition_merges\": {}}}{}\n",
            v.name,
            v.threads_requested,
            v.threads_used,
            v.threads_used as f64 / v.threads_requested as f64,
            v.median_ns,
            v.docs_per_sec,
            v.rows_scanned_per_run,
            v.scan_passes,
            v.partitions_scanned,
            v.partition_merges,
            if i + 1 < part_variants.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"partition_corpus_rows\": {part_rows},\n"));
    json.push_str(&format!("  \"partition_docs\": {part_docs},\n"));
    // Reaching this point means the fingerprint asserts above all passed.
    json.push_str("  \"partition_fingerprints_match\": 1,\n");
    json.push_str(&format!(
        "  \"partition_rows_scanned_equal\": {},\n",
        partition_rows_equal as u8
    ));
    json.push_str(&format!(
        "  \"partition_scan_passes_equal\": {},\n",
        partition_passes_equal as u8
    ));
    json.push_str("  \"append_reverify\": [\n");
    for (i, v) in append_variants.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"workers\": {}, \"reverify_median_ns\": {}, \"reverify_docs_per_sec\": {:.2}, \"delta_rows_scanned\": {}, \"grids_patched\": {}, \"rows_scanned_reverify\": {}, \"rows_scanned_cold\": {}}}{}\n",
            v.name,
            v.workers,
            v.reverify_median_ns,
            v.reverify_docs_per_sec,
            v.delta_rows_scanned,
            v.grids_patched,
            v.rows_scanned_reverify,
            v.rows_scanned_cold,
            if i + 1 < append_variants.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"append_corpus_rows\": {grown_rows},\n"));
    json.push_str(&format!(
        "  \"append_batch_rows\": {},\n",
        append_batch.len()
    ));
    // Reaching this point means the append fingerprint asserts passed.
    json.push_str("  \"append_fingerprints_match\": 1,\n");
    json.push_str(&format!(
        "  \"append_patch_work_equal\": {},\n",
        append_patch_equal as u8
    ));
    json.push_str(&format!(
        "  \"append_delta_fraction\": {append_delta_fraction:.4},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_stream_vs_sequential_fresh\": {stream_speedup:.2},\n"
    ));
    json.push_str(&format!("  \"partial_rate\": {partial_rate:.2},\n"));
    json.push_str(&format!(
        "  \"speedup_batch_vs_sequential_fresh\": {speedup:.2}\n"
    ));
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");
    print!("{json}");
    eprintln!(
        "wrote {out} (best batch variant is {speedup:.2}x sequential per-document verification)"
    );
}
