//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p agg-bench --bin experiments -- all
//! cargo run --release -p agg-bench --bin experiments -- table5 fig10
//! cargo run --release -p agg-bench --bin experiments -- --quick all
//! cargo run --release -p agg-bench --bin experiments -- --seed 7 table6
//! ```

use agg_bench::experiments::{experiment_names, run_experiment, ExpContext, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut seed = agg_corpus::CorpusSpec::default().seed;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        usage("no experiment selected");
    }
    if names.iter().any(|n| n == "all") {
        names = experiment_names().iter().map(|s| s.to_string()).collect();
    }

    let ctx = ExpContext::new(scale, seed);
    eprintln!(
        "# corpus: {} articles, {} claims (seed {seed}, {:?} scale)",
        ctx.corpus.len(),
        ctx.total_claims(),
        scale
    );
    for name in names {
        match run_experiment(&name, &ctx) {
            Some(output) => {
                println!("{:=<78}", format!("== {name} "));
                println!("{output}");
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}'; available: {}",
                    experiment_names().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: experiments [--quick] [--seed N] <name...|all>\n\
         experiments: {}",
        experiment_names().join(", ")
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
