//! Machine-readable cube-executor benchmark: emits `BENCH_cube.json`.
//!
//! ```text
//! cargo run --release -p agg-bench --bin bench_cube
//! cargo run --release -p agg-bench --bin bench_cube -- --rows 100000 --out path.json
//! ```
//!
//! Times four executor variants on the synthetic cube workload (the shape
//! behind Table 6's "+ Query Merging" row) and writes one JSON document so
//! the performance trajectory stays comparable across PRs:
//!
//! * `seed_hashmap_1t` — a faithful reimplementation of the seed executor
//!   (std `HashMap` grid keyed per row, exponential clone-heavy rollup),
//!   kept here as the fixed baseline;
//! * `hashed_1t` — the current executor forced onto its hashed fallback;
//! * `dense_1t` / `dense_4t` — the dense mixed-radix grid, sequential and
//!   with 4 scan workers.
//!
//! A second, larger corpus (`--block-rows`, default 1M rows, clustered by
//! category so storage blocks are constant-valued) exercises the
//! compressed block path and feeds `xtask skip-gate`:
//!
//! * `encoded_selective_1t` — count-only cube with one selective literal;
//!   zone maps let nearly every block bulk-apply (`blocks_skipped`).
//!   Because most rows are *never decoded*, this variant deliberately has
//!   no `rows_per_sec`: it reports `rows_considered` (corpus rows the scan
//!   logically covered) and `rows_decoded_per_sec` (throughput over the
//!   rows physically decoded) so skipping can't inflate a headline number;
//! * `encoded_full_1t` / `plain_full_1t` — the full count+sum workload on
//!   the sealed (block-decoding) vs unsealed (plain lookup) database, with
//!   a top-level `encoded_matches_plain` flag from an exhaustive
//!   cell-by-cell comparison of the two result grids.
//!
//! A third family, `partitioned_1t/2t/4t` (the `"partitioned"` array),
//! runs the full workload over the same 1M-row clustered corpus with the
//! default fixed-partition span (64 blocks ≈ 128k rows) and 1/2/4
//! requested scan workers. Partition boundaries are a pure function of row
//! count — never of worker count — and partition grids merge in ascending
//! order, so every variant's result grid is **bit-identical**; each entry
//! carries a `fingerprint` over every addressable cell, plus
//! `partitions_scanned`/`partition_merges`, and the run is cross-checked
//! against a partition-span-1 execution (`partition_size1_fingerprint`).
//! The top-level `partition_fingerprints_match` flag feeds
//! `xtask partition-gate`.
//!
//! Every timed variant carries `threads_requested`, `threads_used` (the
//! scan workers the executor actually ran — smaller on machines with fewer
//! cores), and their ratio `effective_parallelism`, so JSON readers can
//! tell a 4-worker measurement from a clamped single-core one rather than
//! seeing a faked speedup.

use agg_bench::metrics::median_timed_ns;
use agg_relational::{
    Accumulator, AggColumn, AggFunction, CubeOptions, CubeQuery, CubeResult, Database, DimSel,
    GridMode, JoinedRelation, Table, Value, BLOCK_ROWS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const CATS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];
const REGIONS: [&str; 4] = ["north", "south", "east", "west"];

fn synthetic_db(rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(42);
    let cat_col: Vec<Value> = (0..rows)
        .map(|_| Value::Str(CATS[rng.gen_range(0..CATS.len())].into()))
        .collect();
    let region_col: Vec<Value> = (0..rows)
        .map(|_| Value::Str(REGIONS[rng.gen_range(0..REGIONS.len())].into()))
        .collect();
    let amount: Vec<Value> = (0..rows)
        .map(|_| Value::Int(rng.gen_range(0..1000)))
        .collect();
    let t = Table::from_columns(
        "facts",
        vec![("cat", cat_col), ("region", region_col), ("amount", amount)],
    )
    .unwrap();
    let mut db = Database::new("bench");
    db.add_table(t);
    db
}

/// The block-scan corpus: rows **clustered by category** (each of the five
/// categories fills one contiguous fifth of the table), so nearly every
/// 2048-row storage block holds a single category code and its zone map
/// proves the block constant. Regions and amounts stay random — the
/// clustering mirrors data loaded in insertion order from per-category
/// sources, the best case zone maps are designed for.
fn clustered_db(rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(7);
    let cat_col: Vec<Value> = (0..rows)
        .map(|i| Value::Str(CATS[(i * CATS.len()) / rows].into()))
        .collect();
    let region_col: Vec<Value> = (0..rows)
        .map(|_| Value::Str(REGIONS[rng.gen_range(0..REGIONS.len())].into()))
        .collect();
    let amount: Vec<Value> = (0..rows)
        .map(|_| Value::Int(rng.gen_range(0..1000)))
        .collect();
    let t = Table::from_columns(
        "facts",
        vec![("cat", cat_col), ("region", region_col), ("amount", amount)],
    )
    .unwrap();
    let mut db = Database::new("bench");
    db.add_table(t);
    db
}

/// One selective literal, count-only aggregates: the shape where zone maps
/// pay — every constant block bulk-applies into a single cell without
/// decoding a row.
fn selective_workload(db: &Database) -> CubeQuery {
    let cat = db.resolve("facts", "cat").unwrap();
    CubeQuery {
        dims: vec![cat],
        relevant: vec![vec![Value::from("epsilon")]],
        aggregates: vec![(AggFunction::Count, AggColumn::Star)],
    }
}

fn workload(db: &Database) -> CubeQuery {
    let cat = db.resolve("facts", "cat").unwrap();
    let region = db.resolve("facts", "region").unwrap();
    let amount = db.resolve("facts", "amount").unwrap();
    CubeQuery {
        dims: vec![cat, region],
        relevant: vec![
            CATS.iter().map(|s| Value::from(*s)).collect(),
            REGIONS.iter().map(|s| Value::from(*s)).collect(),
        ],
        aggregates: vec![
            (AggFunction::Count, AggColumn::Star),
            (AggFunction::Sum, AggColumn::Column(amount)),
        ],
    }
}

/// The seed implementation of `CubeQuery::execute_on`, preserved verbatim in
/// spirit: per-row `HashMap<u64, u8>` literal lookups feeding a
/// `HashMap<key, Vec<Accumulator>>` grid, then a rollup that clones every
/// finest group for each of the `2^d − 1` coarser subsets.
fn seed_execute(query: &CubeQuery, db: &Database) -> HashMap<u64, Vec<Option<f64>>> {
    const OTHER: u8 = 254;
    const ALL: u8 = 255;
    const MAX_DIMS: usize = 8;
    let from_codes = |codes: &[u8]| -> u64 {
        let mut key = 0u64;
        for (i, &c) in codes.iter().enumerate() {
            key |= (c as u64) << (8 * i);
        }
        for i in codes.len()..MAX_DIMS {
            key |= (ALL as u64) << (8 * i);
        }
        key
    };

    let relation = JoinedRelation::for_tables(db, &query.tables_referenced()).unwrap();
    let d = query.dims.len();
    struct DimCtx<'a> {
        resolver: agg_relational::join::RowResolver<'a>,
        col: &'a agg_relational::ColumnData,
        literal_codes: HashMap<u64, u8>,
    }
    let mut dim_ctx = Vec::with_capacity(d);
    for (dim, lits) in query.dims.iter().zip(&query.relevant) {
        let col = db.column(*dim);
        let mut literal_codes = HashMap::with_capacity(lits.len());
        for (i, lit) in lits.iter().enumerate() {
            if let Some(code) = col.group_code_of(lit) {
                literal_codes.insert(code, i as u8);
            }
        }
        dim_ctx.push(DimCtx {
            resolver: relation.resolver(*dim),
            col,
            literal_codes,
        });
    }
    let agg_ctx: Vec<Option<_>> = query
        .aggregates
        .iter()
        .map(|(_, col)| {
            col.as_column()
                .map(|c| (relation.resolver(c), db.column(c)))
        })
        .collect();

    let mut finest: HashMap<u64, Vec<Accumulator>> = HashMap::new();
    let mut codes = vec![0u8; d];
    for row in 0..relation.len() {
        for (i, ctx) in dim_ctx.iter().enumerate() {
            let base = ctx.resolver.base_row(row);
            codes[i] = ctx
                .col
                .group_code(base)
                .and_then(|gc| ctx.literal_codes.get(&gc).copied())
                .unwrap_or(OTHER);
        }
        let key = from_codes(&codes);
        let accs = finest.entry(key).or_insert_with(|| {
            query
                .aggregates
                .iter()
                .map(|(f, _)| Accumulator::new(*f))
                .collect()
        });
        for (acc, ctx) in accs.iter_mut().zip(&agg_ctx) {
            match ctx {
                None => acc.update(None, None, true),
                Some((res, col)) => {
                    let base = res.base_row(row);
                    acc.update(col.get_f64(base), col.group_code(base), !col.is_null(base));
                }
            }
        }
    }

    let mut all_groups = finest;
    if d > 0 {
        let finest_keys: Vec<u64> = all_groups.keys().copied().collect();
        for mask in 0..(1u32 << d) - 1 {
            for &fk in &finest_keys {
                let mut key = fk;
                for i in 0..d {
                    if mask & (1 << i) == 0 {
                        key |= (ALL as u64) << (8 * i);
                    }
                }
                if key == fk {
                    continue;
                }
                let src = all_groups.get(&fk).expect("finest key present").clone();
                match all_groups.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        for (a, b) in e.get_mut().iter_mut().zip(&src) {
                            a.merge(b);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(src);
                    }
                }
            }
        }
    }
    all_groups
        .into_iter()
        .map(|(k, accs)| (k, accs.iter().map(Accumulator::finish).collect()))
        .collect()
}

struct Variant {
    name: &'static str,
    median_ns: u64,
    rows_per_sec: f64,
    mode: &'static str,
    threads_requested: u32,
    /// Scan workers the executor actually ran with (`CubeStats::scan_threads`)
    /// — on machines with fewer cores than requested, the hardware clamp
    /// makes this smaller than `threads_requested`.
    threads_used: u32,
}

/// A timed run of one cube over the clustered block corpus, carrying the
/// block counters from the same (median-time) execution.
struct BlockVariant {
    name: &'static str,
    mode: &'static str,
    median_ns: u64,
    /// Whole-corpus throughput. Only meaningful — and only emitted — when
    /// the scan actually visits every row (`full_scan`); for a selective
    /// scan that bulk-applies skipped blocks it would divide rows the
    /// executor never touched by the time it didn't spend on them.
    rows_per_sec: f64,
    /// Emit `rows_per_sec`; false for selective scans, where the honest
    /// figures are `rows_considered` + `rows_decoded_per_sec`.
    full_scan: bool,
    /// Corpus rows the scan logically covered (decoded or bulk-applied).
    rows_considered: usize,
    /// Rows physically decoded (≈ `blocks_scanned` × block rows, capped at
    /// the corpus; the whole corpus on the plain path, which reads every
    /// row but decodes no block).
    rows_decoded: u64,
    rows_decoded_per_sec: f64,
    blocks_scanned: u64,
    blocks_skipped: u64,
}

/// A timed partition-parallel run of the full workload over the clustered
/// corpus, carrying the partition counters and result fingerprint from the
/// same (median-time) execution.
struct PartVariant {
    name: &'static str,
    threads_requested: u32,
    threads_used: u32,
    median_ns: u64,
    rows_per_sec: f64,
    rows_scanned: u64,
    partitions_scanned: u64,
    partition_merges: u64,
    partition_parallelism: u32,
    fingerprint: u64,
}

/// FNV-1a over the bit patterns of every addressable cell of the full
/// workload's result grid (every selector combination × every aggregate).
/// Bit-identical grids — the partition determinism contract — hash equal;
/// any single-ULP drift in f64 accumulation order changes the digest.
fn grid_fingerprint(query: &CubeQuery, result: &CubeResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for ci in (0..CATS.len()).map(DimSel::Literal).chain([DimSel::Any]) {
        for ri in (0..REGIONS.len()).map(DimSel::Literal).chain([DimSel::Any]) {
            for (idx, (f, _)) in query.aggregates.iter().enumerate() {
                if matches!(f, AggFunction::Count | AggFunction::CountDistinct) {
                    mix(result.get_count(&[ci, ri], idx).to_bits());
                } else {
                    match result.get(&[ci, ri], idx) {
                        None => mix(u64::MAX),
                        Some(v) => mix(v.to_bits()),
                    }
                }
            }
        }
    }
    h
}

#[allow(clippy::too_many_arguments)]
fn time_block_variant(
    name: &'static str,
    mode: &'static str,
    full_scan: bool,
    query: &CubeQuery,
    db: &Database,
    rows: usize,
    samples: usize,
) -> BlockVariant {
    let (median_ns, (blocks_scanned, blocks_skipped)) = median_timed_ns(samples, || {
        let result = query.execute(db).unwrap();
        let counters = (result.stats.blocks_scanned, result.stats.blocks_skipped);
        std::hint::black_box(result);
        counters
    });
    let rows_decoded = if blocks_scanned + blocks_skipped == 0 {
        rows as u64 // plain path: every row read, no block decoding involved
    } else {
        (blocks_scanned * BLOCK_ROWS as u64).min(rows as u64)
    };
    let secs = median_ns as f64 / 1e9;
    BlockVariant {
        name,
        mode,
        median_ns,
        rows_per_sec: rows as f64 / secs,
        full_scan,
        rows_considered: rows,
        rows_decoded,
        rows_decoded_per_sec: rows_decoded as f64 / secs,
        blocks_scanned,
        blocks_skipped,
    }
}

fn main() {
    let mut rows = 10_000usize;
    let mut block_rows = 1_000_000usize;
    let mut out = String::from("BENCH_cube.json");
    let mut samples = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rows" => rows = args.next().and_then(|v| v.parse().ok()).expect("--rows N"),
            "--block-rows" => {
                block_rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--block-rows N")
            }
            "--out" => out = args.next().expect("--out PATH"),
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples N")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_cube [--rows N] [--block-rows N] [--samples N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let db = synthetic_db(rows);
    let query = workload(&db);

    // Cross-check all variants against the reference result before timing.
    let reference = query.execute(&db).unwrap();
    assert_eq!(reference.stats.grid_mode, GridMode::Dense);
    let hashed_opts = CubeOptions {
        dense_cell_cap: 0,
        ..CubeOptions::default()
    };
    let dense4_opts = CubeOptions {
        threads: 4,
        parallel_row_threshold: 1024,
        ..CubeOptions::default()
    };
    for opts in [&hashed_opts, &dense4_opts] {
        let r = query.execute_with(&db, opts).unwrap();
        for ci in (0..CATS.len()).map(DimSel::Literal).chain([DimSel::Any]) {
            for ri in (0..REGIONS.len()).map(DimSel::Literal).chain([DimSel::Any]) {
                for agg in 0..2 {
                    assert_eq!(
                        reference.get(&[ci, ri], agg),
                        r.get(&[ci, ri], agg),
                        "variant disagrees at {ci:?}/{ri:?}"
                    );
                }
            }
        }
    }

    let time_variant = |name, mode, threads_requested: u32, opts: Option<&CubeOptions>| {
        // The payload rides along from the median-time run itself: the
        // reported scan_threads comes from a measured execution, not an
        // extra untimed one.
        let (median, threads_used) = match opts {
            Some(opts) => median_timed_ns(samples, || {
                let result = query.execute_with(&db, opts).unwrap();
                let scan_threads = result.stats.scan_threads;
                std::hint::black_box(result);
                scan_threads
            }),
            None => median_timed_ns(samples, || {
                std::hint::black_box(seed_execute(&query, &db));
                1u32
            }),
        };
        Variant {
            name,
            median_ns: median,
            rows_per_sec: rows as f64 / (median as f64 / 1e9),
            mode,
            threads_requested,
            threads_used,
        }
    };

    let variants = [
        time_variant("seed_hashmap_1t", "seed-hashmap", 1, None),
        time_variant("hashed_1t", "hashed", 1, Some(&hashed_opts)),
        time_variant("dense_1t", "dense", 1, Some(&CubeOptions::default())),
        time_variant("dense_4t", "dense", 4, Some(&dense4_opts)),
    ];

    // --- the clustered block corpus: zone-map skipping + encoded≡plain ---
    let block_db = clustered_db(block_rows);
    let mut plain_db = block_db.clone();
    plain_db.unseal_tables();

    let selective = selective_workload(&block_db);
    let full = workload(&block_db);

    // Exhaustive cell-by-cell comparison of the encoded and plain result
    // grids over both workloads; any drift zeroes the flag and fails
    // `xtask skip-gate` in CI.
    let mut encoded_matches_plain = true;
    {
        let enc = full.execute(&block_db).unwrap();
        let pla = full.execute(&plain_db).unwrap();
        for ci in (0..CATS.len()).map(DimSel::Literal).chain([DimSel::Any]) {
            for ri in (0..REGIONS.len()).map(DimSel::Literal).chain([DimSel::Any]) {
                encoded_matches_plain &= enc.get_count(&[ci, ri], 0) == pla.get_count(&[ci, ri], 0)
                    && enc.get(&[ci, ri], 1) == pla.get(&[ci, ri], 1);
            }
        }
        let enc = selective.execute(&block_db).unwrap();
        let pla = selective.execute(&plain_db).unwrap();
        assert!(
            enc.stats.blocks_skipped > 0,
            "clustered selective scan skipped no blocks"
        );
        for ci in [DimSel::Literal(0), DimSel::Any] {
            encoded_matches_plain &= enc.get_count(&[ci], 0) == pla.get_count(&[ci], 0);
        }
    }

    let block_variants = [
        time_block_variant(
            "encoded_selective_1t",
            "dense-encoded",
            false,
            &selective,
            &block_db,
            block_rows,
            samples,
        ),
        time_block_variant(
            "encoded_full_1t",
            "dense-encoded",
            true,
            &full,
            &block_db,
            block_rows,
            samples,
        ),
        time_block_variant(
            "plain_full_1t",
            "dense-plain",
            true,
            &full,
            &plain_db,
            block_rows,
            samples,
        ),
    ];

    // --- partitioned scans over the same 1M-row corpus -------------------
    // The determinism contract under test: partition boundaries are a pure
    // function of row count and span (never worker count) and partition
    // grids merge in ascending order, so 1/2/4 workers — and a
    // partition-span-1 run with one partition per storage block — must all
    // produce bit-identical result grids.
    let part_opts = |threads: usize| CubeOptions {
        threads,
        parallel_row_threshold: 1024,
        ..CubeOptions::default()
    };
    let size1_fingerprint = {
        let r = full
            .execute_with(
                &block_db,
                &CubeOptions {
                    partition_blocks: 1,
                    ..part_opts(1)
                },
            )
            .unwrap();
        grid_fingerprint(&full, &r)
    };
    let part_variants: Vec<PartVariant> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let opts = part_opts(threads);
            let name: &'static str = match threads {
                1 => "partitioned_1t",
                2 => "partitioned_2t",
                _ => "partitioned_4t",
            };
            let (median_ns, payload) = median_timed_ns(samples, || {
                let r = full.execute_with(&block_db, &opts).unwrap();
                let payload = (
                    r.stats.scan_threads,
                    r.stats.rows_scanned,
                    r.stats.partitions_scanned,
                    r.stats.partition_merges,
                    r.stats.partition_parallelism,
                    grid_fingerprint(&full, &r),
                );
                std::hint::black_box(r);
                payload
            });
            let (threads_used, rows_scanned, partitions, merges, parallelism, fingerprint) =
                payload;
            PartVariant {
                name,
                threads_requested: threads as u32,
                threads_used,
                median_ns,
                rows_per_sec: block_rows as f64 / (median_ns as f64 / 1e9),
                rows_scanned,
                partitions_scanned: partitions,
                partition_merges: merges,
                partition_parallelism: parallelism,
                fingerprint,
            }
        })
        .collect();
    // 1M rows at the default 64-block span is 8 partitions; a corpus too
    // small to partition would quietly gut the whole family (and the
    // partition-gate checks the emitted counter again in CI).
    for v in &part_variants {
        assert!(
            v.partitions_scanned > 0,
            "{}: the 1M-row corpus must span multiple partitions",
            v.name
        );
        assert_eq!(
            v.rows_scanned, block_rows as u64,
            "{}: partitioned scan must cover the whole corpus",
            v.name
        );
    }
    let partition_fingerprints_match = part_variants
        .iter()
        .all(|v| v.fingerprint == size1_fingerprint);
    assert!(
        partition_fingerprints_match,
        "partitioned result grids diverged across worker counts or partition spans"
    );

    let seed_ns = variants[0].median_ns as f64;
    let dense4_ns = variants[3].median_ns as f64;
    let speedup = seed_ns / dense4_ns;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"block_corpus_rows\": {block_rows},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!(
        "  \"finest_groups\": {},\n  \"total_groups\": {},\n",
        reference.stats.finest_groups, reference.stats.total_groups
    ));
    json.push_str(&format!(
        "  \"dense_cells\": {},\n",
        reference.stats.dense_cells
    ));
    json.push_str(&format!(
        "  \"encoded_matches_plain\": {},\n",
        if encoded_matches_plain { 1 } else { 0 }
    ));
    json.push_str("  \"variants\": [\n");
    for v in variants.iter() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"threads_requested\": {}, \"threads_used\": {}, \"effective_parallelism\": {:.2}, \"median_ns\": {}, \"rows_per_sec\": {:.0}}},\n",
            v.name,
            v.mode,
            v.threads_requested,
            v.threads_used,
            v.threads_used as f64 / v.threads_requested as f64,
            v.median_ns,
            v.rows_per_sec,
        ));
    }
    for (i, v) in block_variants.iter().enumerate() {
        let total_blocks = v.blocks_scanned + v.blocks_skipped;
        // A full scan's corpus-rows-per-second is real throughput; a
        // selective scan's would be fiction (rows it never decoded over
        // time it never spent), so only the decode-denominated rate and
        // the coverage count are emitted there.
        let throughput = if v.full_scan {
            format!("\"rows_per_sec\": {:.0}, ", v.rows_per_sec)
        } else {
            String::new()
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"threads_requested\": 1, \"threads_used\": 1, \"effective_parallelism\": 1.00, \"median_ns\": {}, {}\"rows_considered\": {}, \"rows_decoded\": {}, \"rows_decoded_per_sec\": {:.0}, \"blocks_scanned\": {}, \"blocks_skipped\": {}, \"blocks_skipped_pct\": {:.1}}}{}\n",
            v.name,
            v.mode,
            v.median_ns,
            throughput,
            v.rows_considered,
            v.rows_decoded,
            v.rows_decoded_per_sec,
            v.blocks_scanned,
            v.blocks_skipped,
            if total_blocks == 0 {
                0.0
            } else {
                100.0 * v.blocks_skipped as f64 / total_blocks as f64
            },
            if i + 1 < block_variants.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"partitioned\": [\n");
    for (i, v) in part_variants.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads_requested\": {}, \"threads_used\": {}, \"effective_parallelism\": {:.2}, \"median_ns\": {}, \"rows_per_sec\": {:.0}, \"rows_scanned\": {}, \"partitions_scanned\": {}, \"partition_merges\": {}, \"partition_parallelism\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
            v.name,
            v.threads_requested,
            v.threads_used,
            v.threads_used as f64 / v.threads_requested as f64,
            v.median_ns,
            v.rows_per_sec,
            v.rows_scanned,
            v.partitions_scanned,
            v.partition_merges,
            v.partition_parallelism,
            v.fingerprint,
            if i + 1 < part_variants.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"partition_size1_fingerprint\": \"{size1_fingerprint:016x}\",\n"
    ));
    json.push_str(&format!(
        "  \"partition_fingerprints_match\": {},\n",
        if partition_fingerprints_match { 1 } else { 0 }
    ));
    // Renamed from `speedup_dense4_vs_seed`: "4t" is what was *requested*;
    // the companion field records the scan workers the measured run
    // actually used (the hardware clamp makes this 1 on single-core
    // runners, where the ratio is really a sequential-vs-seed speedup).
    json.push_str(&format!(
        "  \"speedup_dense4t_requested_vs_seed\": {speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_measured_at_threads\": {}\n",
        variants[3].threads_used
    ));
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write BENCH_cube.json");
    print!("{json}");
    eprintln!(
        "wrote {out} (dense@4t-requested is {speedup:.2}x the seed executor at {} effective worker(s); \
         selective scan skipped {}/{} blocks)",
        variants[3].threads_used,
        block_variants[0].blocks_skipped,
        block_variants[0].blocks_scanned + block_variants[0].blocks_skipped,
    );
}
