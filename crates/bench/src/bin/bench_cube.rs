//! Machine-readable cube-executor benchmark: emits `BENCH_cube.json`.
//!
//! ```text
//! cargo run --release -p agg-bench --bin bench_cube
//! cargo run --release -p agg-bench --bin bench_cube -- --rows 100000 --out path.json
//! ```
//!
//! Times four executor variants on the synthetic cube workload (the shape
//! behind Table 6's "+ Query Merging" row) and writes one JSON document so
//! the performance trajectory stays comparable across PRs:
//!
//! * `seed_hashmap_1t` — a faithful reimplementation of the seed executor
//!   (std `HashMap` grid keyed per row, exponential clone-heavy rollup),
//!   kept here as the fixed baseline;
//! * `hashed_1t` — the current executor forced onto its hashed fallback;
//! * `dense_1t` / `dense_4t` — the dense mixed-radix grid, sequential and
//!   with 4 scan workers.

use agg_bench::metrics::median_timed_ns;
use agg_relational::{
    Accumulator, AggColumn, AggFunction, CubeOptions, CubeQuery, Database, DimSel, GridMode,
    JoinedRelation, Table, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const CATS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];
const REGIONS: [&str; 4] = ["north", "south", "east", "west"];

fn synthetic_db(rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(42);
    let cat_col: Vec<Value> = (0..rows)
        .map(|_| Value::Str(CATS[rng.gen_range(0..CATS.len())].into()))
        .collect();
    let region_col: Vec<Value> = (0..rows)
        .map(|_| Value::Str(REGIONS[rng.gen_range(0..REGIONS.len())].into()))
        .collect();
    let amount: Vec<Value> = (0..rows)
        .map(|_| Value::Int(rng.gen_range(0..1000)))
        .collect();
    let t = Table::from_columns(
        "facts",
        vec![("cat", cat_col), ("region", region_col), ("amount", amount)],
    )
    .unwrap();
    let mut db = Database::new("bench");
    db.add_table(t);
    db
}

fn workload(db: &Database) -> CubeQuery {
    let cat = db.resolve("facts", "cat").unwrap();
    let region = db.resolve("facts", "region").unwrap();
    let amount = db.resolve("facts", "amount").unwrap();
    CubeQuery {
        dims: vec![cat, region],
        relevant: vec![
            CATS.iter().map(|s| Value::from(*s)).collect(),
            REGIONS.iter().map(|s| Value::from(*s)).collect(),
        ],
        aggregates: vec![
            (AggFunction::Count, AggColumn::Star),
            (AggFunction::Sum, AggColumn::Column(amount)),
        ],
    }
}

/// The seed implementation of `CubeQuery::execute_on`, preserved verbatim in
/// spirit: per-row `HashMap<u64, u8>` literal lookups feeding a
/// `HashMap<key, Vec<Accumulator>>` grid, then a rollup that clones every
/// finest group for each of the `2^d − 1` coarser subsets.
fn seed_execute(query: &CubeQuery, db: &Database) -> HashMap<u64, Vec<Option<f64>>> {
    const OTHER: u8 = 254;
    const ALL: u8 = 255;
    const MAX_DIMS: usize = 8;
    let from_codes = |codes: &[u8]| -> u64 {
        let mut key = 0u64;
        for (i, &c) in codes.iter().enumerate() {
            key |= (c as u64) << (8 * i);
        }
        for i in codes.len()..MAX_DIMS {
            key |= (ALL as u64) << (8 * i);
        }
        key
    };

    let relation = JoinedRelation::for_tables(db, &query.tables_referenced()).unwrap();
    let d = query.dims.len();
    struct DimCtx<'a> {
        resolver: agg_relational::join::RowResolver<'a>,
        col: &'a agg_relational::ColumnData,
        literal_codes: HashMap<u64, u8>,
    }
    let mut dim_ctx = Vec::with_capacity(d);
    for (dim, lits) in query.dims.iter().zip(&query.relevant) {
        let col = db.column(*dim);
        let mut literal_codes = HashMap::with_capacity(lits.len());
        for (i, lit) in lits.iter().enumerate() {
            if let Some(code) = col.group_code_of(lit) {
                literal_codes.insert(code, i as u8);
            }
        }
        dim_ctx.push(DimCtx {
            resolver: relation.resolver(*dim),
            col,
            literal_codes,
        });
    }
    let agg_ctx: Vec<Option<_>> = query
        .aggregates
        .iter()
        .map(|(_, col)| {
            col.as_column()
                .map(|c| (relation.resolver(c), db.column(c)))
        })
        .collect();

    let mut finest: HashMap<u64, Vec<Accumulator>> = HashMap::new();
    let mut codes = vec![0u8; d];
    for row in 0..relation.len() {
        for (i, ctx) in dim_ctx.iter().enumerate() {
            let base = ctx.resolver.base_row(row);
            codes[i] = ctx
                .col
                .group_code(base)
                .and_then(|gc| ctx.literal_codes.get(&gc).copied())
                .unwrap_or(OTHER);
        }
        let key = from_codes(&codes);
        let accs = finest.entry(key).or_insert_with(|| {
            query
                .aggregates
                .iter()
                .map(|(f, _)| Accumulator::new(*f))
                .collect()
        });
        for (acc, ctx) in accs.iter_mut().zip(&agg_ctx) {
            match ctx {
                None => acc.update(None, None, true),
                Some((res, col)) => {
                    let base = res.base_row(row);
                    acc.update(col.get_f64(base), col.group_code(base), !col.is_null(base));
                }
            }
        }
    }

    let mut all_groups = finest;
    if d > 0 {
        let finest_keys: Vec<u64> = all_groups.keys().copied().collect();
        for mask in 0..(1u32 << d) - 1 {
            for &fk in &finest_keys {
                let mut key = fk;
                for i in 0..d {
                    if mask & (1 << i) == 0 {
                        key |= (ALL as u64) << (8 * i);
                    }
                }
                if key == fk {
                    continue;
                }
                let src = all_groups.get(&fk).expect("finest key present").clone();
                match all_groups.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        for (a, b) in e.get_mut().iter_mut().zip(&src) {
                            a.merge(b);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(src);
                    }
                }
            }
        }
    }
    all_groups
        .into_iter()
        .map(|(k, accs)| (k, accs.iter().map(Accumulator::finish).collect()))
        .collect()
}

struct Variant {
    name: &'static str,
    median_ns: u64,
    rows_per_sec: f64,
    mode: &'static str,
    threads_requested: u32,
    /// Scan workers the executor actually ran with (`CubeStats::scan_threads`)
    /// — on machines with fewer cores than requested, the hardware clamp
    /// makes this smaller than `threads_requested`.
    threads_used: u32,
}

fn main() {
    let mut rows = 10_000usize;
    let mut out = String::from("BENCH_cube.json");
    let mut samples = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rows" => rows = args.next().and_then(|v| v.parse().ok()).expect("--rows N"),
            "--out" => out = args.next().expect("--out PATH"),
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples N")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_cube [--rows N] [--samples N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let db = synthetic_db(rows);
    let query = workload(&db);

    // Cross-check all variants against the reference result before timing.
    let reference = query.execute(&db).unwrap();
    assert_eq!(reference.stats.grid_mode, GridMode::Dense);
    let hashed_opts = CubeOptions {
        dense_cell_cap: 0,
        ..CubeOptions::default()
    };
    let dense4_opts = CubeOptions {
        threads: 4,
        parallel_row_threshold: 1024,
        ..CubeOptions::default()
    };
    for opts in [&hashed_opts, &dense4_opts] {
        let r = query.execute_with(&db, opts).unwrap();
        for ci in (0..CATS.len()).map(DimSel::Literal).chain([DimSel::Any]) {
            for ri in (0..REGIONS.len()).map(DimSel::Literal).chain([DimSel::Any]) {
                for agg in 0..2 {
                    assert_eq!(
                        reference.get(&[ci, ri], agg),
                        r.get(&[ci, ri], agg),
                        "variant disagrees at {ci:?}/{ri:?}"
                    );
                }
            }
        }
    }

    let time_variant = |name, mode, threads_requested: u32, opts: Option<&CubeOptions>| {
        // The payload rides along from the median-time run itself: the
        // reported scan_threads comes from a measured execution, not an
        // extra untimed one.
        let (median, threads_used) = match opts {
            Some(opts) => median_timed_ns(samples, || {
                let result = query.execute_with(&db, opts).unwrap();
                let scan_threads = result.stats.scan_threads;
                std::hint::black_box(result);
                scan_threads
            }),
            None => median_timed_ns(samples, || {
                std::hint::black_box(seed_execute(&query, &db));
                1u32
            }),
        };
        Variant {
            name,
            median_ns: median,
            rows_per_sec: rows as f64 / (median as f64 / 1e9),
            mode,
            threads_requested,
            threads_used,
        }
    };

    let variants = [
        time_variant("seed_hashmap_1t", "seed-hashmap", 1, None),
        time_variant("hashed_1t", "hashed", 1, Some(&hashed_opts)),
        time_variant("dense_1t", "dense", 1, Some(&CubeOptions::default())),
        time_variant("dense_4t", "dense", 4, Some(&dense4_opts)),
    ];

    let seed_ns = variants[0].median_ns as f64;
    let dense4_ns = variants[3].median_ns as f64;
    let speedup = seed_ns / dense4_ns;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!(
        "  \"finest_groups\": {},\n  \"total_groups\": {},\n",
        reference.stats.finest_groups, reference.stats.total_groups
    ));
    json.push_str(&format!(
        "  \"dense_cells\": {},\n",
        reference.stats.dense_cells
    ));
    json.push_str("  \"variants\": [\n");
    for (i, v) in variants.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"threads_requested\": {}, \"threads_used\": {}, \"median_ns\": {}, \"rows_per_sec\": {:.0}}}{}\n",
            v.name,
            v.mode,
            v.threads_requested,
            v.threads_used,
            v.median_ns,
            v.rows_per_sec,
            if i + 1 < variants.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_dense4_vs_seed\": {speedup:.2}\n"));
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write BENCH_cube.json");
    print!("{json}");
    eprintln!("wrote {out} (dense@4t is {speedup:.2}x the seed executor)");
}
