//! Ablation benches for the design choices DESIGN.md §4 calls out:
//! prior smoothing, the `(1 − p_r)` unrestricted-column factor, the
//! unrestricted pseudo-score factor, and EM iteration limits.

use super::ExpContext;
use crate::metrics::pct;
use crate::runner::run_corpus;
use agg_core::CheckerConfig;
use std::fmt::Write;

/// Run all ablations and report top-k coverage plus F1 for each variant.
pub fn ablations(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablations: design decisions beyond the paper's own ladders"
    );
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>8} {:>8} {:>8}",
        "Variant", "Top-1", "Top-5", "Recall", "F1"
    );

    let row = |label: &str, cfg: CheckerConfig, out: &mut String| {
        let run = run_corpus(&ctx.corpus, &cfg);
        let cov = run.coverage();
        let c = run.confusion();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>8} {:>8} {:>8}",
            label,
            pct(cov.at(1)),
            pct(cov.at(5)),
            pct(c.recall()),
            pct(c.f1())
        );
    };

    row("default configuration", CheckerConfig::default(), &mut out);

    // The (1 - p_r) factor the paper's Eq. (5) omits.
    let cfg = CheckerConfig {
        penalize_unrestricted: true,
        ..CheckerConfig::default()
    };
    row("+ penalize unrestricted columns (1 - p_r)", cfg, &mut out);

    // Prior smoothing sweep.
    for lambda in [0.0, 0.01, 0.2, 0.5] {
        let cfg = CheckerConfig {
            prior_smoothing: lambda,
            ..CheckerConfig::default()
        };
        row(&format!("prior smoothing lambda = {lambda}"), cfg, &mut out);
    }

    // Unrestricted pseudo-score factor.
    for factor in [0.4, 0.6, 1.0] {
        let cfg = CheckerConfig {
            unrestricted_factor: factor,
            ..CheckerConfig::default()
        };
        row(
            &format!("unrestricted score factor = {factor}"),
            cfg,
            &mut out,
        );
    }

    // EM iteration budget.
    for iters in [1usize, 2, 4] {
        let cfg = CheckerConfig {
            max_em_iterations: iters,
            ..CheckerConfig::default()
        };
        row(&format!("max EM iterations = {iters}"), cfg, &mut out);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn ablations_produce_a_row_per_variant() {
        let ctx = ExpContext::new(Scale::Quick, 37);
        let small = ExpContext {
            spec: ctx.spec.clone(),
            corpus: ctx.corpus.into_iter().take(3).collect(),
            scale: Scale::Quick,
            default_run: Default::default(),
        };
        let out = ablations(&small);
        // Header (2) + 1 default + 1 penalize + 4 lambda + 3 factor + 3 EM.
        assert_eq!(out.lines().count(), 2 + 1 + 1 + 4 + 3 + 3, "{out}");
    }
}
