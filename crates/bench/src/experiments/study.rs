//! User-study experiments: Tables 3, 4, 8, 11 and Figures 6, 7.
//!
//! The study set mirrors §7.2: six articles — two long (most claims) and
//! four shorter ones — verified by eight users who alternate between the
//! AggChecker and a generic SQL interface, with 20-minute budgets for long
//! articles and 5-minute budgets for short ones.

use super::ExpContext;
use crate::metrics::{pct, Confusion};
use crate::runner::{run_corpus, ClaimOutcome};
use crate::usersim::{session_confusion, simulate_session, ActionTally, Session, Tool, User};
use agg_core::CheckerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write;
use std::sync::OnceLock;

/// The prepared study: six articles with aligned automated outcomes.
pub struct Study {
    /// Indices into the corpus, longest-first.
    pub articles: Vec<usize>,
    /// Aligned automated outcomes per study article.
    pub outcomes: Vec<Vec<ClaimOutcome>>,
    /// Time budget per article (seconds).
    pub budgets: Vec<f64>,
}

static STUDY: OnceLock<Study> = OnceLock::new();

/// Build (once) the study set from the experiment corpus.
pub fn study(ctx: &ExpContext) -> &'static Study {
    STUDY.get_or_init(|| {
        // Two longest articles + four median-length ones.
        let mut by_len: Vec<usize> = (0..ctx.corpus.len()).collect();
        by_len.sort_by_key(|&i| std::cmp::Reverse(ctx.corpus[i].ground_truth.len()));
        let mut articles = vec![by_len[0], by_len[1]];
        let mid = by_len.len() / 2;
        articles.extend(by_len[mid..].iter().take(4).copied());

        let mut outcomes = Vec::new();
        let mut budgets = Vec::new();
        for (pos, &i) in articles.iter().enumerate() {
            let single = std::slice::from_ref(&ctx.corpus[i]);
            let run = run_corpus(single, &CheckerConfig::default());
            outcomes.push(run.outcomes);
            budgets.push(if pos < 2 { 1200.0 } else { 300.0 });
        }
        Study {
            articles,
            outcomes,
            budgets,
        }
    })
}

/// All sessions of the on-site study: users alternate tools per article
/// (never verifying the same document twice with both tools).
fn onsite_sessions(ctx: &ExpContext) -> Vec<(usize, usize, Tool, Session)> {
    let s = study(ctx);
    let users = User::onsite_panel(ctx.spec.seed);
    let mut sessions = Vec::new();
    for (ui, user) in users.iter().enumerate() {
        for (ai, outcomes) in s.outcomes.iter().enumerate() {
            // Alternate: user ui starts with AggChecker on even articles.
            let tool = if (ui + ai) % 2 == 0 {
                Tool::AggChecker
            } else {
                Tool::Sql
            };
            let mut rng =
                StdRng::seed_from_u64(ctx.spec.seed ^ ((ui as u64) << 32) ^ (ai as u64) ^ 0x57D);
            let session = simulate_session(outcomes, user, tool, s.budgets[ai], &mut rng);
            sessions.push((ui, ai, tool, session));
        }
    }
    sessions
}

/// Table 3: verification by used AggChecker feature.
pub fn table3(ctx: &ExpContext) -> String {
    let mut tally = ActionTally::default();
    for (_, _, tool, session) in onsite_sessions(ctx) {
        if tool == Tool::AggChecker {
            tally.add(&session);
        }
    }
    let total = tally.total().max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: Verification by used AggChecker features");
    let _ = writeln!(
        out,
        "{:>14} {:>14} {:>14} {:>10}",
        "Top-1", "Top-5", "Top-10", "Custom"
    );
    let _ = writeln!(
        out,
        "{:>14} {:>14} {:>14} {:>10}",
        "(1 click)", "(2 clicks)", "(3 clicks)", ""
    );
    let _ = writeln!(
        out,
        "{:>14} {:>14} {:>14} {:>10}",
        pct(tally.top1 as f64 / total),
        pct(tally.top5 as f64 / total),
        pct(tally.top10 as f64 / total),
        pct(tally.custom as f64 / total)
    );
    out
}

/// Table 4: results of the on-site user study.
pub fn table4(ctx: &ExpContext) -> String {
    let s = study(ctx);
    let mut ac = Confusion::default();
    let mut sql = Confusion::default();
    for (_, ai, tool, session) in onsite_sessions(ctx) {
        let c = session_confusion(&session, &s.outcomes[ai]);
        match tool {
            Tool::AggChecker => merge_confusion(&mut ac, &c),
            _ => merge_confusion(&mut sql, &c),
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: Results of on-site user study");
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>10} {:>9}",
        "Tool", "Recall", "Precision", "F1 Score"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>10} {:>9}",
        "AggChecker + User",
        pct(ac.recall()),
        pct(ac.precision()),
        pct(ac.f1())
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>10} {:>9}",
        "SQL + User",
        pct(sql.recall()),
        pct(sql.precision()),
        pct(sql.f1())
    );
    out
}

/// Figure 6: correctly verified claims over time, per article and tool.
pub fn fig6(ctx: &ExpContext) -> String {
    let s = study(ctx);
    let sessions = onsite_sessions(ctx);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: Number of correctly verified claims as a function of time"
    );
    for (ai, &article) in s.articles.iter().enumerate() {
        let name = &ctx.corpus[article].name;
        let budget = s.budgets[ai];
        let _ = writeln!(out, "-- article {name} (budget {budget:.0}s)");
        let _ = writeln!(
            out,
            "{:>8} {:>16} {:>10}",
            "time(s)", "AggChecker(avg)", "SQL(avg)"
        );
        let steps = 6usize;
        for step in 1..=steps {
            let t = budget * step as f64 / steps as f64;
            let avg = |tool: Tool| -> f64 {
                let (sum, n) = sessions
                    .iter()
                    .filter(|(_, a, tl, _)| *a == ai && *tl == tool)
                    .fold((0usize, 0usize), |(sum, n), (_, _, _, sess)| {
                        (sum + sess.verified_at(t), n + 1)
                    });
                sum as f64 / n.max(1) as f64
            };
            let _ = writeln!(
                out,
                "{:>8.0} {:>16.2} {:>10.2}",
                t,
                avg(Tool::AggChecker),
                avg(Tool::Sql)
            );
        }
    }
    out
}

/// Figure 7: verification throughput by user and by article.
pub fn fig7(ctx: &ExpContext) -> String {
    let s = study(ctx);
    let sessions = onsite_sessions(ctx);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 7: Claims verified per minute");
    let _ = writeln!(out, "-- grouped by user");
    let _ = writeln!(out, "{:>6} {:>12} {:>8}", "user", "AggChecker", "SQL");
    let mut ac_total = 0.0f64;
    let mut sql_total = 0.0f64;
    for ui in 0..8 {
        let thr = |tool: Tool| -> f64 {
            let (sum, n) = sessions
                .iter()
                .filter(|(u, _, tl, _)| *u == ui && *tl == tool)
                .fold((0.0, 0usize), |(sum, n), (_, _, _, sess)| {
                    (sum + sess.throughput(), n + 1)
                });
            sum / n.max(1) as f64
        };
        let a = thr(Tool::AggChecker);
        let q = thr(Tool::Sql);
        ac_total += a;
        sql_total += q;
        let _ = writeln!(out, "{:>6} {:>12.2} {:>8.2}", ui + 1, a, q);
    }
    let _ = writeln!(out, "-- grouped by article");
    let _ = writeln!(out, "{:>14} {:>12} {:>8}", "article", "AggChecker", "SQL");
    for (ai, &article) in s.articles.iter().enumerate() {
        let thr = |tool: Tool| -> f64 {
            let (sum, n) = sessions
                .iter()
                .filter(|(_, a, tl, _)| *a == ai && *tl == tool)
                .fold((0.0, 0usize), |(sum, n), (_, _, _, sess)| {
                    (sum + sess.throughput(), n + 1)
                });
            sum / n.max(1) as f64
        };
        let _ = writeln!(
            out,
            "{:>14} {:>12.2} {:>8.2}",
            ctx.corpus[article].name,
            thr(Tool::AggChecker),
            thr(Tool::Sql)
        );
    }
    let speedup = ac_total / sql_total.max(1e-9);
    let _ = writeln!(
        out,
        "average speedup: AggChecker users verify {speedup:.1}x more claims per minute"
    );
    out
}

/// Table 8: the user survey — preferences derived from each user's own
/// throughput experience (strong preference when AggChecker is ≥4× faster
/// for them, moderate when ≥1.5×).
pub fn table8(ctx: &ExpContext) -> String {
    let sessions = onsite_sessions(ctx);
    let mut out = String::new();
    let _ = writeln!(out, "Table 8: Results of user survey");
    let _ = writeln!(
        out,
        "{:<18} {:>7} {:>6} {:>9} {:>5} {:>6}",
        "Criterion", "SQL++", "SQL+", "SQL~AC", "AC+", "AC++"
    );
    // Per-criterion speed thresholds: learning and incorrect-claim work
    // amplify the difference, correct claims less so.
    for (criterion, factor) in [
        ("Overall", 1.0),
        ("Learning", 1.3),
        ("Correct Claims", 0.8),
        ("Incorrect Claims", 1.15),
    ] {
        let mut counts = [0usize; 5];
        for ui in 0..8 {
            let thr = |tool: Tool| -> f64 {
                let (sum, n) = sessions
                    .iter()
                    .filter(|(u, _, tl, _)| *u == ui && *tl == tool)
                    .fold((0.0, 0usize), |(sum, n), (_, _, _, sess)| {
                        (sum + sess.throughput(), n + 1)
                    });
                sum / n.max(1) as f64
            };
            let ratio = factor * thr(Tool::AggChecker) / thr(Tool::Sql).max(1e-9);
            let bucket = if ratio >= 9.0 {
                4 // AC++
            } else if ratio >= 2.5 {
                3 // AC+
            } else if ratio >= 0.8 {
                2 // equal
            } else if ratio >= 0.4 {
                1
            } else {
                0
            };
            counts[bucket] += 1;
        }
        let _ = writeln!(
            out,
            "{:<18} {:>7} {:>6} {:>9} {:>5} {:>6}",
            criterion, counts[0], counts[1], counts[2], counts[3], counts[4]
        );
    }
    out
}

/// Table 11: the crowd-worker study (Appendix D): document scope versus a
/// narrowed two-sentence (paragraph) scope, AggChecker versus spreadsheet.
pub fn table11(ctx: &ExpContext) -> String {
    let s = study(ctx);
    // Pick the study article with the most erroneous claims (the paper
    // chose a 538 article whose errors were known).
    let article = (0..s.outcomes.len())
        .max_by_key(|&i| s.outcomes[i].iter().filter(|o| !o.truly_correct).count())
        .unwrap_or(0);
    let outcomes = &s.outcomes[article];
    let workers = User::crowd_panel(ctx.spec.seed, 19);
    let sheet_workers = User::crowd_panel(ctx.spec.seed ^ 1, 13);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 11: Crowd-worker study (Amazon Mechanical Turk simulation)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:<10} {:>8} {:>10} {:>9}",
        "Tool", "Scope", "Recall", "Precision", "F1 Score"
    );

    // Document scope: the full long article under a 10-minute budget.
    let row = |tool: Tool,
               scope: &str,
               outcomes: &[ClaimOutcome],
               panel: &[User],
               budget: f64,
               out: &mut String| {
        let mut c = Confusion::default();
        for (wi, w) in panel.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(ctx.spec.seed ^ 0xA37 ^ (wi as u64));
            let sess = simulate_session(outcomes, w, tool, budget, &mut rng);
            merge_confusion(&mut c, &session_confusion(&sess, outcomes));
        }
        let name = match tool {
            Tool::AggChecker => "AggChecker",
            Tool::Spreadsheet => "G-Sheet",
            Tool::Sql => "SQL",
        };
        let _ = writeln!(
            out,
            "{:<12} {:<10} {:>8} {:>10} {:>9}",
            name,
            scope,
            pct(c.recall()),
            pct(c.precision()),
            pct(c.f1())
        );
    };

    row(
        Tool::AggChecker,
        "Document",
        outcomes,
        &workers,
        600.0,
        &mut out,
    );
    row(
        Tool::Spreadsheet,
        "Document",
        outcomes,
        &sheet_workers,
        600.0,
        &mut out,
    );

    // Paragraph scope: two claims over a deliberately tiny data set that
    // can be verified by counting entries by hand (the paper doubled the
    // pay and "selected an article with a very small data set") — crowd
    // spreadsheet skill rises accordingly.
    let narrow: Vec<ClaimOutcome> = outcomes.iter().take(2).cloned().collect();
    let hand_countable: Vec<User> = sheet_workers
        .iter()
        .map(|u| User {
            sql_skill: (u.sql_skill * 8.0).min(0.6),
            misjudge: 0.05,
            ..*u
        })
        .collect();
    row(
        Tool::AggChecker,
        "Paragraph",
        &narrow,
        &workers,
        300.0,
        &mut out,
    );
    row(
        Tool::Spreadsheet,
        "Paragraph",
        &narrow,
        &hand_countable,
        300.0,
        &mut out,
    );
    out
}

fn merge_confusion(into: &mut Confusion, from: &Confusion) {
    into.true_positives += from.true_positives;
    into.false_positives += from.false_positives;
    into.false_negatives += from.false_negatives;
    into.true_negatives += from.true_negatives;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    fn quick_ctx() -> ExpContext {
        ExpContext::new(Scale::Quick, 23)
    }

    #[test]
    fn study_picks_six_articles_longest_first() {
        let ctx = quick_ctx();
        let s = study(&ctx);
        assert_eq!(s.articles.len(), 6);
        let len = |i: usize| ctx.corpus[s.articles[i]].ground_truth.len();
        assert!(len(0) >= len(2));
        assert_eq!(s.budgets[0], 1200.0);
        assert_eq!(s.budgets[5], 300.0);
    }

    #[test]
    fn table3_shares_sum_to_one() {
        let ctx = quick_ctx();
        let out = table3(&ctx);
        let row = out.lines().last().unwrap();
        let sum: f64 = row
            .split_whitespace()
            .map(|x| x.trim_end_matches('%').parse::<f64>().unwrap())
            .sum();
        assert!((sum - 100.0).abs() < 0.5, "{row}");
    }

    #[test]
    fn table4_aggchecker_beats_sql() {
        let ctx = quick_ctx();
        let out = table4(&ctx);
        let f1_of = |needle: &str| -> f64 {
            out.lines()
                .find(|l| l.contains(needle))
                .and_then(|l| l.split_whitespace().last())
                .map(|x| x.trim_end_matches('%').parse::<f64>().unwrap())
                .unwrap()
        };
        assert!(f1_of("AggChecker + User") >= f1_of("SQL + User"), "{out}");
    }

    #[test]
    fn fig7_reports_speedup_over_one() {
        let ctx = quick_ctx();
        let out = fig7(&ctx);
        let speedup: f64 = out
            .lines()
            .last()
            .unwrap()
            .split("verify ")
            .nth(1)
            .unwrap()
            .split('x')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(speedup > 1.5, "AggChecker speedup {speedup} too small");
    }

    #[test]
    fn table11_has_four_rows() {
        let ctx = quick_ctx();
        let out = table11(&ctx);
        assert_eq!(out.lines().count(), 2 + 4, "{out}");
        assert!(out.contains("G-Sheet"));
    }
}
