//! Automated-checking accuracy experiments: Table 5, Table 10, Figures
//! 10–13.

use super::ExpContext;
use crate::metrics::{pct, Confusion};
use crate::runner::{run_corpus, run_corpus_with};
use agg_baselines::{check_with_fm, check_with_kb, FactRepository, FmMode};
use agg_core::{CheckerConfig, ContextConfig, ModelConfig};
use agg_corpus::stats::align_claims;
use agg_corpus::TestCase;
use agg_nlp::claims::{detect_claims, ClaimDetectorConfig};
use agg_nlp::structure::parse_document;
use agg_nlp::synonyms::SynonymDict;
use std::fmt::Write;
use std::time::Instant;

/// Table 5: AggChecker variants versus the baselines.
pub fn table5(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5: Comparison of AggChecker with baselines");
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>10} {:>8} {:>8}",
        "Tool", "Recall", "Precision", "F1", "Time"
    );

    // --- Keyword-context ablation (also Figure 11's data) ----------------
    let _ = writeln!(out, "-- AggChecker - Keyword Context (Figure 11)");
    for (label, ctx_cfg, synonyms) in context_ladder() {
        let cfg = CheckerConfig {
            context: ctx_cfg,
            ..CheckerConfig::default()
        };
        let t0 = Instant::now();
        let run = run_corpus_with(&ctx.corpus, &cfg, synonyms);
        let c = run.confusion();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>8} {:>7.1}s",
            label,
            pct(c.recall()),
            pct(c.precision()),
            pct(c.f1()),
            t0.elapsed().as_secs_f64()
        );
    }

    // --- Probabilistic-model ablation (also Table 10's data) -------------
    let _ = writeln!(out, "-- AggChecker - Probabilistic Model (Table 10)");
    for (label, model) in model_ladder() {
        let cfg = CheckerConfig {
            model,
            ..CheckerConfig::default()
        };
        let t0 = Instant::now();
        let run = run_corpus(&ctx.corpus, &cfg);
        let c = run.confusion();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>8} {:>7.1}s",
            label,
            pct(c.recall()),
            pct(c.precision()),
            pct(c.f1()),
            t0.elapsed().as_secs_f64()
        );
    }

    // --- Time budget by retrieval hits (also Figure 13's data) -----------
    let _ = writeln!(out, "-- AggChecker - Time Budget by IR Hits (Figure 13)");
    for hits in [1usize, 10, 20, 30] {
        let cfg = CheckerConfig {
            lucene_hits: hits,
            ..CheckerConfig::default()
        };
        let t0 = Instant::now();
        let run = run_corpus(&ctx.corpus, &cfg);
        let c = run.confusion();
        let marker = if hits == 20 { " (current version)" } else { "" };
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>8} {:>7.1}s",
            format!("# Hits = {hits}{marker}"),
            pct(c.recall()),
            pct(c.precision()),
            pct(c.f1()),
            t0.elapsed().as_secs_f64()
        );
    }

    // --- Baselines --------------------------------------------------------
    let _ = writeln!(out, "-- Baselines");
    for (label, mode) in [
        ("ClaimBuster-FM (Max)", FmMode::Max),
        ("ClaimBuster-FM (MV)", FmMode::MajorityVote),
    ] {
        let t0 = Instant::now();
        let c = run_claimbuster_fm(&ctx.corpus, mode);
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>8} {:>7.1}s",
            label,
            pct(c.recall()),
            pct(c.precision()),
            pct(c.f1()),
            t0.elapsed().as_secs_f64()
        );
    }
    {
        let t0 = Instant::now();
        let (c, translated, total) = run_claimbuster_kb(&ctx.corpus);
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>8} {:>7.1}s   (translated {}/{} claims)",
            "ClaimBuster-KB + NaLIR",
            pct(c.recall()),
            pct(c.precision()),
            pct(c.f1()),
            t0.elapsed().as_secs_f64(),
            translated,
            total
        );
    }
    {
        let run = ctx.default_run();
        let c = run.confusion();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>8} {:>7.1}s",
            "AggChecker Automatic",
            pct(c.recall()),
            pct(c.precision()),
            pct(c.f1()),
            run.elapsed.as_secs_f64()
        );
    }
    out
}

/// Table 10: top-k coverage versus probabilistic-model variant.
pub fn table10(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 10: Top-k coverage versus probabilistic model");
    let _ = writeln!(
        out,
        "{:<36} {:>8} {:>8} {:>8}",
        "Version", "Top-1", "Top-5", "Top-10"
    );
    for (label, model) in model_ladder() {
        let cfg = CheckerConfig {
            model,
            ..CheckerConfig::default()
        };
        let run = run_corpus(&ctx.corpus, &cfg);
        let cov = run.coverage();
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>8} {:>8}",
            label,
            pct(cov.at(1)),
            pct(cov.at(5)),
            pct(cov.at(10))
        );
    }
    out
}

/// Figure 10: top-k coverage, total and split by claim correctness.
pub fn fig10(ctx: &ExpContext) -> String {
    let run = ctx.default_run();
    let cov = run.coverage();
    let (correct, incorrect) = run.coverage_split();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 10: Top-k coverage (total / correct / incorrect claims)"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>9} {:>9} {:>10}",
        "k", "Total", "Correct", "Incorrect"
    );
    for k in [1usize, 2, 3, 5, 10, 15, 20] {
        let _ = writeln!(
            out,
            "{:>5} {:>9} {:>9} {:>10}",
            k,
            pct(cov.at(k)),
            pct(correct.at(k)),
            pct(incorrect.at(k))
        );
    }
    out
}

/// Figure 11: top-k coverage as a function of keyword context.
pub fn fig11(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 11: Top-k coverage versus keyword context");
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>8} {:>8}",
        "Context", "Top-1", "Top-5", "Top-10"
    );
    for (label, ctx_cfg, synonyms) in context_ladder() {
        let cfg = CheckerConfig {
            context: ctx_cfg,
            ..CheckerConfig::default()
        };
        let run = run_corpus_with(&ctx.corpus, &cfg, synonyms);
        let cov = run.coverage();
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>8}",
            label,
            pct(cov.at(1)),
            pct(cov.at(5)),
            pct(cov.at(10))
        );
    }
    out
}

/// Figure 12: parameter p_T versus recall / precision / F1.
pub fn fig12(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 12: p_T versus recall and precision");
    let _ = writeln!(
        out,
        "{:>9} {:>8} {:>10} {:>8}",
        "p_T", "Recall", "Precision", "F1"
    );
    for p_t in [0.6, 0.8, 0.9, 0.99, 0.999, 0.9999] {
        let cfg = CheckerConfig {
            p_true: p_t,
            ..CheckerConfig::default()
        };
        let run = run_corpus(&ctx.corpus, &cfg);
        let c = run.confusion();
        let _ = writeln!(
            out,
            "{:>9} {:>8} {:>10} {:>8}",
            p_t,
            pct(c.recall()),
            pct(c.precision()),
            pct(c.f1())
        );
    }
    out
}

/// Figure 13: top-k coverage versus processing overheads (IR hits budget
/// and aggregation-column budget).
pub fn fig13(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 13: Top-k coverage versus processing overheads");
    let _ = writeln!(out, "-- varying the IR hit budget");
    let _ = writeln!(
        out,
        "{:>7} {:>9} {:>8} {:>8} {:>12}",
        "# Hits", "Time", "Top-1", "Top-10", "#Candidates"
    );
    for hits in [1usize, 10, 20, 30] {
        let cfg = CheckerConfig {
            lucene_hits: hits,
            ..CheckerConfig::default()
        };
        let t0 = Instant::now();
        let run = run_corpus(&ctx.corpus, &cfg);
        let cov = run.coverage();
        let _ = writeln!(
            out,
            "{:>7} {:>8.1}s {:>8} {:>8} {:>12}",
            hits,
            t0.elapsed().as_secs_f64(),
            pct(cov.at(1)),
            pct(cov.at(10)),
            run.candidates_evaluated
        );
    }
    let _ = writeln!(out, "-- varying the aggregation-column budget");
    let _ = writeln!(
        out,
        "{:>7} {:>9} {:>8} {:>8} {:>12}",
        "# Aggs", "Time", "Top-1", "Top-10", "#Candidates"
    );
    for max_aggs in [1usize, 2, 4, 8] {
        let mut cfg = CheckerConfig::default();
        cfg.scope.max_agg_columns = max_aggs;
        let t0 = Instant::now();
        let run = run_corpus(&ctx.corpus, &cfg);
        let cov = run.coverage();
        let _ = writeln!(
            out,
            "{:>7} {:>8.1}s {:>8} {:>8} {:>12}",
            max_aggs,
            t0.elapsed().as_secs_f64(),
            pct(cov.at(1)),
            pct(cov.at(10)),
            run.candidates_evaluated
        );
    }
    out
}

/// The keyword-context ladder of Table 5 / Figure 11: each row adds one
/// context source. Synonyms are toggled via the dictionary override.
fn context_ladder() -> Vec<(&'static str, ContextConfig, Option<SynonymDict>)> {
    let empty = Some(SynonymDict::empty());
    vec![
        (
            "Claim sentence",
            ContextConfig {
                use_previous_sentence: false,
                use_paragraph_start: false,
                use_synonyms: false,
                use_headlines: false,
            },
            empty.clone(),
        ),
        (
            "+ Previous sentence",
            ContextConfig {
                use_previous_sentence: true,
                use_paragraph_start: false,
                use_synonyms: false,
                use_headlines: false,
            },
            empty.clone(),
        ),
        (
            "+ Paragraph start",
            ContextConfig {
                use_previous_sentence: true,
                use_paragraph_start: true,
                use_synonyms: false,
                use_headlines: false,
            },
            empty,
        ),
        (
            "+ Synonyms",
            ContextConfig {
                use_previous_sentence: true,
                use_paragraph_start: true,
                use_synonyms: true,
                use_headlines: false,
            },
            None,
        ),
        (
            "+ Headlines (current version)",
            ContextConfig::default(),
            None,
        ),
    ]
}

/// The model ladder of Table 5 / Table 10.
fn model_ladder() -> Vec<(&'static str, ModelConfig)> {
    vec![
        (
            "Relevance scores S_c",
            ModelConfig {
                use_evaluation: false,
                use_priors: false,
            },
        ),
        (
            "+ Evaluation results E_c",
            ModelConfig {
                use_evaluation: true,
                use_priors: false,
            },
        ),
        (
            "+ Learning priors Theta (current)",
            ModelConfig {
                use_evaluation: true,
                use_priors: true,
            },
        ),
    ]
}

/// Claim sentences per test case, aligned with ground truth (for the
/// text-only baselines).
fn claim_sentences(tc: &TestCase) -> Vec<Option<(String, agg_nlp::numbers::NumberMention)>> {
    let doc = parse_document(&tc.article_html);
    let detected = detect_claims(&doc, &ClaimDetectorConfig::default());
    let values: Vec<f64> = detected.iter().map(|c| c.number.value).collect();
    let aligned = align_claims(&values, &tc.ground_truth);
    aligned
        .into_iter()
        .map(|slot| {
            slot.map(|idx| {
                let claim = &detected[idx];
                let sentence = doc
                    .section(&claim.section)
                    .and_then(|s| s.paragraphs.get(claim.paragraph))
                    .and_then(|p| p.sentences.get(claim.sentence))
                    .map(|s| s.text.clone())
                    .unwrap_or_default();
                (sentence, claim.number.clone())
            })
        })
        .collect()
}

/// ClaimBuster-FM over the corpus: repository = popular claims + the
/// claims of every *other* article (with their ground-truth labels).
fn run_claimbuster_fm(corpus: &[TestCase], mode: FmMode) -> Confusion {
    // Pre-compute claim sentences per article.
    let sentences: Vec<Vec<Option<(String, agg_nlp::numbers::NumberMention)>>> =
        corpus.iter().map(claim_sentences).collect();
    let mut confusion = Confusion::default();
    for (i, tc) in corpus.iter().enumerate() {
        // Repository: popular claims + other articles' claims.
        let mut entries: Vec<(String, bool)> = Vec::new();
        for (j, others) in sentences.iter().enumerate() {
            if i == j {
                continue;
            }
            for (slot, g) in others.iter().zip(&corpus[j].ground_truth) {
                if let Some((sentence, _)) = slot {
                    entries.push((sentence.clone(), g.is_correct));
                }
            }
        }
        let mut all = entries;
        all.extend(FactRepository::popular_entries());
        let repo = FactRepository::build(all);
        for (slot, g) in sentences[i].iter().zip(&tc.ground_truth) {
            let flagged = match slot {
                None => false,
                Some((sentence, _)) => match check_with_fm(&repo, sentence, mode, 5, 0.1) {
                    Some(verdict_correct) => !verdict_correct,
                    None => false,
                },
            };
            confusion.record(!g.is_correct, flagged);
        }
    }
    confusion
}

/// ClaimBuster-KB + NaLIR over the corpus. Returns the confusion matrix,
/// the number of claims with at least one translated query, and the total.
fn run_claimbuster_kb(corpus: &[TestCase]) -> (Confusion, usize, usize) {
    let mut confusion = Confusion::default();
    let mut translated = 0usize;
    let mut total = 0usize;
    for tc in corpus {
        for (slot, g) in claim_sentences(tc).iter().zip(&tc.ground_truth) {
            total += 1;
            let flagged = match slot {
                None => false,
                Some((sentence, mention)) => match check_with_kb(&tc.db, sentence, mention) {
                    agg_baselines::claimbuster_kb::KbOutcome::VerifiedCorrect => {
                        translated += 1;
                        false
                    }
                    agg_baselines::claimbuster_kb::KbOutcome::VerifiedWrong => {
                        translated += 1;
                        true
                    }
                    agg_baselines::claimbuster_kb::KbOutcome::NotTranslated => false,
                },
            };
            confusion.record(!g.is_correct, flagged);
        }
    }
    (confusion, translated, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    fn quick_ctx() -> ExpContext {
        ExpContext::new(Scale::Quick, 17)
    }

    #[test]
    fn table10_shows_model_ladder_improvement() {
        let ctx = quick_ctx();
        let out = table10(&ctx);
        assert!(out.contains("Relevance scores"));
        assert!(out.contains("current"));
        // Three data rows.
        assert_eq!(out.lines().count(), 2 + 3);
    }

    #[test]
    fn fig10_is_monotone_in_k() {
        let ctx = quick_ctx();
        let out = fig10(&ctx);
        let rows: Vec<f64> = out
            .lines()
            .skip(2)
            .map(|l| {
                let total = l.split_whitespace().nth(1).unwrap();
                total.trim_end_matches('%').parse::<f64>().unwrap()
            })
            .collect();
        for pair in rows.windows(2) {
            assert!(
                pair[0] <= pair[1] + 1e-9,
                "coverage must grow with k: {rows:?}"
            );
        }
    }

    #[test]
    fn claimbuster_kb_translates_some_but_not_all() {
        let ctx = quick_ctx();
        let (_, translated, total) = run_claimbuster_kb(&ctx.corpus);
        assert!(total > 0);
        assert!(translated < total, "NaLIR must fail on some claims");
    }

    #[test]
    fn claim_sentences_align() {
        let ctx = quick_ctx();
        for tc in &ctx.corpus {
            let sentences = claim_sentences(tc);
            assert_eq!(sentences.len(), tc.ground_truth.len());
            assert!(sentences.iter().all(|s| s.is_some()));
        }
    }
}
