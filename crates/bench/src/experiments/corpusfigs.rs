//! Corpus-analysis figures: Figure 8 (candidate-space sizes) and
//! Figure 9 (claim distribution, theme coverage, predicate breakdown).

use super::ExpContext;
use crate::metrics::pct;
use agg_core::{CatalogConfig, FragmentCatalog};
use agg_corpus::corpus_stats;
use std::fmt::Write;

/// Figure 8: number of possible query candidates per data set.
pub fn fig8(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8: Number of possible query candidates per data set"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>14}",
        "test case", "rows", "log10(#queries)"
    );
    let mut logs: Vec<(String, usize, f64)> = ctx
        .corpus
        .iter()
        .map(|tc| {
            let catalog = FragmentCatalog::build(&tc.db, &CatalogConfig::default());
            (
                tc.name.clone(),
                tc.db.total_rows(),
                catalog.candidate_space_log10(),
            )
        })
        .collect();
    logs.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
    for (name, rows, log) in &logs {
        let _ = writeln!(out, "{:<16} {:>8} {:>14.1}", name, rows, log);
    }
    let max = logs.last().map(|(_, _, l)| *l).unwrap_or(0.0);
    let min = logs.first().map(|(_, _, l)| *l).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "candidate spaces span 10^{min:.1} to 10^{max:.1} queries (paper: up to >10^12)"
    );
    out
}

/// Figure 9(a): distribution of claims over test cases, total and
/// erroneous.
pub fn fig9a(ctx: &ExpContext) -> String {
    let stats = corpus_stats(&ctx.corpus, 5);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9(a): Distribution of claims over test cases");
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>10}",
        "test case", "claims", "incorrect"
    );
    let mut rows: Vec<(&str, usize, usize)> = ctx
        .corpus
        .iter()
        .map(|tc| {
            (
                tc.name.as_str(),
                tc.ground_truth.len(),
                tc.erroneous_count(),
            )
        })
        .collect();
    rows.sort_by_key(|(_, claims, _)| std::cmp::Reverse(*claims));
    for (name, claims, wrong) in &rows {
        let _ = writeln!(out, "{:<16} {:>8} {:>10}", name, claims, wrong);
    }
    let _ = writeln!(
        out,
        "total: {} claims, {} erroneous ({}); {}/{} articles contain at least one error",
        stats.claims,
        stats.erroneous_claims,
        pct(stats.erroneous_claims as f64 / stats.claims.max(1) as f64),
        stats.articles_with_errors,
        stats.articles
    );
    let _ = writeln!(
        out,
        "(paper: 12% of claims erroneous; 17 of 53 articles with at least one error)"
    );
    out
}

/// Figure 9(b): per-document coverage of the N most frequent query
/// characteristics.
pub fn fig9b(ctx: &ExpContext) -> String {
    let stats = corpus_stats(&ctx.corpus, 5);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9(b): Claims covered per document by the top-N query characteristics"
    );
    let _ = writeln!(out, "{:>5} {:>10}", "N", "coverage");
    for (i, cov) in stats.topn_coverage.iter().enumerate() {
        let _ = writeln!(out, "{:>5} {:>10}", i + 1, pct(*cov));
    }
    let _ = writeln!(
        out,
        "(paper: the top-3 characteristics cover 90.8% of claims in average)"
    );
    out
}

/// Figure 9(c): breakdown of claim queries by predicate count.
pub fn fig9c(ctx: &ExpContext) -> String {
    let stats = corpus_stats(&ctx.corpus, 3);
    let total: usize = stats.by_predicate_count.iter().sum();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9(c): Claim queries by number of predicates");
    for (n, label) in [(0usize, "Zero"), (1, "One"), (2, "Two"), (3, "Three+")] {
        let share = stats.by_predicate_count[n] as f64 / total.max(1) as f64;
        let _ = writeln!(
            out,
            "{:<7} {:>6} claims {:>7}",
            label,
            stats.by_predicate_count[n],
            pct(share)
        );
    }
    let _ = writeln!(out, "(paper: 17% zero, 61% one, 23% two)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    fn quick_ctx() -> ExpContext {
        ExpContext::new(Scale::Quick, 31)
    }

    #[test]
    fn fig8_lists_every_test_case() {
        let ctx = quick_ctx();
        let out = fig8(&ctx);
        for tc in &ctx.corpus {
            assert!(out.contains(&tc.name), "missing {}", tc.name);
        }
    }

    #[test]
    fn fig9a_totals_are_consistent() {
        let ctx = quick_ctx();
        let out = fig9a(&ctx);
        let expected: usize = ctx.corpus.iter().map(|t| t.ground_truth.len()).sum();
        assert!(out.contains(&format!("total: {expected} claims")));
    }

    #[test]
    fn fig9b_coverage_is_monotone() {
        let ctx = quick_ctx();
        let out = fig9b(&ctx);
        let values: Vec<f64> = out
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .map(|l| {
                l.split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches('%')
                    .parse::<f64>()
                    .unwrap()
            })
            .collect();
        for pair in values.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-9);
        }
    }

    #[test]
    fn fig9c_shares_sum_to_one() {
        let ctx = quick_ctx();
        let out = fig9c(&ctx);
        let sum: f64 = out
            .lines()
            .filter(|l| l.contains("claims"))
            .map(|l| {
                l.split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches('%')
                    .parse::<f64>()
                    .unwrap()
            })
            .sum();
        assert!((sum - 100.0).abs() < 0.5, "{out}");
    }
}
