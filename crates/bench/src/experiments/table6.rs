//! Table 6: run time by evaluation strategy — naive per-candidate
//! execution, cube merging, and merging plus the shared result cache.

use super::{ExpContext, Scale};
use crate::runner::run_corpus;
use agg_core::{CheckerConfig, EvalStrategy};
use std::fmt::Write;

/// Table 6. The naive strategy executes every candidate separately; on the
/// full corpus that is millions of scans, so the naive row runs on a
/// subset and is scaled up (reported explicitly), exactly because that is
/// the point of the experiment.
pub fn table6(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6: Run time for all test cases by evaluation strategy"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>10} {:>10} {:>9}  notes",
        "Version", "Total (s)", "Query (s)", "Speedup"
    );

    // Naive: subset of articles when at full scale.
    let naive_subset = if ctx.scale == Scale::Full {
        8.min(ctx.corpus.len())
    } else {
        ctx.corpus.len()
    };
    let scale_factor = ctx.corpus.len() as f64 / naive_subset as f64;
    let cfg = CheckerConfig {
        strategy: EvalStrategy::Naive,
        ..CheckerConfig::default()
    };
    let naive_run = run_corpus(&ctx.corpus[..naive_subset], &cfg);
    let naive_total = naive_run.elapsed.as_secs_f64() * scale_factor;
    let naive_query = naive_run.query_time.as_secs_f64() * scale_factor;
    let note = if scale_factor > 1.0 {
        format!(
            "(measured on {naive_subset}/{} articles, scaled)",
            ctx.corpus.len()
        )
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{:<18} {:>10.1} {:>10.1} {:>9}  {note}",
        "Naive", naive_total, naive_query, "-"
    );

    let cfg = CheckerConfig {
        strategy: EvalStrategy::Merged,
        ..CheckerConfig::default()
    };
    let merged_run = run_corpus(&ctx.corpus, &cfg);
    let merged_query = merged_run.query_time.as_secs_f64();
    let _ = writeln!(
        out,
        "{:<18} {:>10.1} {:>10.1} {:>8.1}x",
        "+Merging",
        merged_run.elapsed.as_secs_f64(),
        merged_query,
        naive_query / merged_query.max(1e-9)
    );

    let cfg = CheckerConfig {
        strategy: EvalStrategy::MergedCached,
        ..CheckerConfig::default()
    };
    let cached_run = run_corpus(&ctx.corpus, &cfg);
    let cached_query = cached_run.query_time.as_secs_f64();
    let _ = writeln!(
        out,
        "{:<18} {:>10.1} {:>10.1} {:>8.1}x",
        "+Caching",
        cached_run.elapsed.as_secs_f64(),
        cached_query,
        merged_query / cached_query.max(1e-9)
    );
    let _ = writeln!(
        out,
        "accumulated query-time speedup: {:.1}x (paper: 129.9x over its testbed)",
        naive_query / cached_query.max(1e-9)
    );
    let _ = writeln!(
        out,
        "cubes executed {} / served from cache {}",
        cached_run.cubes_executed, cached_run.cubes_cached
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_rank_as_in_the_paper() {
        // A tiny corpus keeps the naive run affordable in tests.
        let ctx = ExpContext::new(Scale::Quick, 29);
        let small = ExpContext {
            spec: ctx.spec.clone(),
            corpus: ctx.corpus.into_iter().take(3).collect(),
            scale: Scale::Quick,
            default_run: Default::default(),
        };
        let out = table6(&small);
        // Extract query seconds per row.
        let secs: Vec<f64> = out
            .lines()
            .skip(2)
            .take(3)
            .map(|l| l.split_whitespace().nth(2).unwrap_or("x"))
            .filter_map(|x| x.parse::<f64>().ok())
            .collect();
        assert_eq!(secs.len(), 3, "{out}");
        assert!(
            secs[0] > secs[1],
            "merging must beat naive: {secs:?}\n{out}"
        );
        assert!(
            secs[1] >= secs[2] * 0.8,
            "caching should not be much slower than merging: {secs:?}"
        );
    }
}
