//! # agg-bench
//!
//! Benchmark harness for the AggChecker reproduction: shared corpus
//! runners and metrics ([`runner`], [`metrics`]), the user-study simulator
//! ([`usersim`]), and one module per table/figure of the paper
//! ([`experiments`]). The `experiments` binary regenerates every table and
//! figure; the Criterion benches cover the timing-sensitive results.

pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod usersim;
