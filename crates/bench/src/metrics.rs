//! Evaluation metrics: precision/recall/F1 on erroneous-claim detection
//! (Definitions 4 and 5 of the paper) and top-k coverage (Definition 6).

/// Confusion counts for erroneous-claim detection. "Positive" means
/// *flagged as erroneous*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
    pub true_negatives: usize,
}

impl Confusion {
    /// Record one claim: `truly_erroneous` from ground truth, `flagged`
    /// from the system under test.
    pub fn record(&mut self, truly_erroneous: bool, flagged: bool) {
        match (truly_erroneous, flagged) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Fraction of flagged claims that are truly erroneous (Definition 4).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Fraction of truly erroneous claims that were flagged (Definition 5).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }
}

/// Top-k coverage accumulator (Definition 6): for how many claims is the
/// ground-truth query among the k most likely candidates?
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// `ranks[i]` — number of claims whose ground-truth query ranked at
    /// position i (0-based).
    ranks: Vec<usize>,
    /// Claims whose ground-truth query appeared at no rank.
    missed: usize,
}

impl Coverage {
    /// Record one claim's ground-truth rank (`None` = not in the top list).
    pub fn record(&mut self, rank: Option<usize>) {
        match rank {
            Some(r) => {
                if self.ranks.len() <= r {
                    self.ranks.resize(r + 1, 0);
                }
                self.ranks[r] += 1;
            }
            None => self.missed += 1,
        }
    }

    /// Total claims recorded.
    pub fn total(&self) -> usize {
        self.ranks.iter().sum::<usize>() + self.missed
    }

    /// Top-k coverage in [0, 1].
    pub fn at(&self, k: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let hits: usize = self.ranks.iter().take(k).sum();
        hits as f64 / total as f64
    }

    /// Merge another accumulator in.
    pub fn merge(&mut self, other: &Coverage) {
        if self.ranks.len() < other.ranks.len() {
            self.ranks.resize(other.ranks.len(), 0);
        }
        for (i, c) in other.ranks.iter().enumerate() {
            self.ranks[i] += c;
        }
        self.missed += other.missed;
    }
}

/// Format a ratio as the paper prints them ("70.8%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Median wall-clock sample over `samples` timed runs of `f`, after one
/// untimed warmup run. Returns `(nanoseconds, payload)` **from the same
/// (median-time) run** — payloads such as rows-scanned counts can be
/// nondeterministic across runs (e.g. racing batch workers duplicating a
/// cube execution), so pairing one run's payload with another run's time
/// would misstate derived rates. Shared by the `bench_cube` and
/// `bench_pipeline` bins so their medians stay comparable.
pub fn median_timed_ns<T: Ord, F: FnMut() -> T>(samples: usize, mut f: F) -> (u64, T) {
    f(); // warmup
    let mut runs: Vec<(u64, T)> = (0..samples.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            let payload = f();
            (start.elapsed().as_nanos() as u64, payload)
        })
        .collect();
    runs.sort_unstable();
    let mid = runs.len() / 2;
    runs.into_iter().nth(mid).expect("at least one sample")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_metrics() {
        let mut c = Confusion::default();
        // 3 erroneous claims, 2 flagged correctly; 1 correct claim flagged.
        c.record(true, true);
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn empty_confusion_is_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn coverage_accumulates_by_rank() {
        let mut cov = Coverage::default();
        cov.record(Some(0));
        cov.record(Some(0));
        cov.record(Some(3));
        cov.record(None);
        assert_eq!(cov.total(), 4);
        assert!((cov.at(1) - 0.5).abs() < 1e-12);
        assert!((cov.at(4) - 0.75).abs() < 1e-12);
        assert!((cov.at(100) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_merge() {
        let mut a = Coverage::default();
        a.record(Some(0));
        let mut b = Coverage::default();
        b.record(Some(1));
        b.record(None);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!((a.at(2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.708), "70.8%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
