//! Microbenchmark: the CUBE operator versus equivalent per-query scans
//! (the mechanism behind Table 6's "+ Query Merging" row), plus the
//! dense-grid / hashed-fallback / thread-count matrix of the executor.
//!
//! For the machine-readable variant (including the frozen seed-executor
//! baseline) run `cargo run --release -p agg-bench --bin bench_cube`.

use agg_relational::{
    execute_query, AggColumn, AggFunction, CubeOptions, CubeQuery, Database, Predicate,
    SimpleAggregateQuery, Table, Value,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_db(rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(42);
    let cats = ["alpha", "beta", "gamma", "delta", "epsilon"];
    let regions = ["north", "south", "east", "west"];
    let cat_col: Vec<Value> = (0..rows)
        .map(|_| Value::Str(cats[rng.gen_range(0..cats.len())].into()))
        .collect();
    let region_col: Vec<Value> = (0..rows)
        .map(|_| Value::Str(regions[rng.gen_range(0..regions.len())].into()))
        .collect();
    let amount: Vec<Value> = (0..rows)
        .map(|_| Value::Int(rng.gen_range(0..1000)))
        .collect();
    let t = Table::from_columns(
        "facts",
        vec![("cat", cat_col), ("region", region_col), ("amount", amount)],
    )
    .unwrap();
    let mut db = Database::new("bench");
    db.add_table(t);
    db
}

fn bench_cube_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_vs_naive");
    for rows in [1_000usize, 10_000] {
        let db = synthetic_db(rows);
        let cat = db.resolve("facts", "cat").unwrap();
        let region = db.resolve("facts", "region").unwrap();
        let amount = db.resolve("facts", "amount").unwrap();
        let cats = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let regions = ["north", "south", "east", "west"];

        // The cube covers all 5×4 literal combinations plus rollups: 30
        // addressable groups × 2 aggregates = 60 query results per scan.
        let cube = CubeQuery {
            dims: vec![cat, region],
            relevant: vec![
                cats.iter().map(|s| Value::from(*s)).collect(),
                regions.iter().map(|s| Value::from(*s)).collect(),
            ],
            aggregates: vec![
                (AggFunction::Count, AggColumn::Star),
                (AggFunction::Sum, AggColumn::Column(amount)),
            ],
        };
        group.bench_with_input(BenchmarkId::new("cube_once", rows), &rows, |b, _| {
            b.iter(|| cube.execute(&db).unwrap());
        });

        // Executor matrix: dense grid vs hashed fallback × scan threads.
        // Thread counts are *requests*: the executor clamps to the host's
        // available_parallelism, so on small CI boxes the Nt variants
        // measure the clamped (possibly sequential) execution.
        let hashed = CubeOptions {
            dense_cell_cap: 0,
            ..CubeOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("cube_hashed_1t", rows), &rows, |b, _| {
            b.iter(|| cube.execute_with(&db, &hashed).unwrap());
        });
        for threads in [1usize, 2, 4] {
            let opts = CubeOptions {
                threads,
                parallel_row_threshold: 1024,
                ..CubeOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("cube_dense_{threads}t"), rows),
                &rows,
                |b, _| {
                    b.iter(|| cube.execute_with(&db, &opts).unwrap());
                },
            );
        }

        // The equivalent naive workload: every (cat, region) combination
        // (including unrestricted) for both aggregates.
        let mut queries = Vec::new();
        for f in [
            (AggFunction::Count, AggColumn::Star),
            (AggFunction::Sum, AggColumn::Column(amount)),
        ] {
            for c_lit in cats.iter().map(Some).chain([None]) {
                for r_lit in regions.iter().map(Some).chain([None]) {
                    let mut preds = Vec::new();
                    if let Some(cl) = c_lit {
                        preds.push(Predicate::new(cat, *cl));
                    }
                    if let Some(rl) = r_lit {
                        preds.push(Predicate::new(region, *rl));
                    }
                    queries.push(SimpleAggregateQuery::new(f.0, f.1, preds));
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("naive_equivalent", rows), &rows, |b, _| {
            b.iter(|| {
                for q in &queries {
                    execute_query(&db, q).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cube_vs_naive);
criterion_main!(benches);
