//! Microbenchmark: IR retrieval over fragment keyword bags (the Lucene
//! substitute on the hot path of keyword matching).

use agg_ir::{IndexBuilder, Scorer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build an index shaped like a predicate-fragment index: many documents,
/// a handful of weighted terms each, drawn from a Zipf-ish vocabulary.
fn fragment_like_index(n_docs: usize, vocab: usize) -> agg_ir::Index {
    let mut rng = StdRng::seed_from_u64(7);
    let words: Vec<String> = (0..vocab).map(|i| format!("term{i}")).collect();
    let mut builder = IndexBuilder::new();
    for _ in 0..n_docs {
        let n_terms = rng.gen_range(3..9);
        let terms: Vec<(usize, f32)> = (0..n_terms)
            .map(|_| {
                // Zipf-ish: low ids much more frequent.
                let r: f64 = rng.gen::<f64>();
                let id = ((vocab as f64).powf(r) as usize).min(vocab - 1);
                (id, 1.0f32)
            })
            .collect();
        builder.add_document(terms.iter().map(|(id, w)| (words[*id].as_str(), *w)));
    }
    builder.build()
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ir_search");
    for n_docs in [1_000usize, 20_000] {
        let index = fragment_like_index(n_docs, 2_000);
        let query: Vec<(String, f32)> = (0..12)
            .map(|i| (format!("term{}", i * 37 % 2000), 1.0 / (i + 1) as f32))
            .collect();
        group.bench_with_input(BenchmarkId::new("top20", n_docs), &n_docs, |b, _| {
            b.iter(|| {
                index.search(
                    query.iter().map(|(t, w)| (t.as_str(), *w)),
                    20,
                    Scorer::default(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
