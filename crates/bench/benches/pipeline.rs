//! End-to-end benchmark: full verification of one article (parse → match →
//! EM with cube evaluation → report), with and without a warm cache.

use agg_core::{AggChecker, CheckerConfig};
use agg_corpus::builtin::nfl_suspensions;
use agg_corpus::{generate_test_case, CorpusSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    // The paper's running example (tiny database, three claims).
    let nfl = nfl_suspensions();
    group.bench_function("nfl_running_example", |b| {
        b.iter(|| {
            let checker = AggChecker::new(nfl.db.clone(), CheckerConfig::default()).unwrap();
            checker.check_text(&nfl.article_html).unwrap()
        });
    });

    // A generated article over a few hundred rows.
    let tc = generate_test_case(&CorpusSpec::default(), 1);
    group.bench_function("generated_article_cold", |b| {
        b.iter(|| {
            let checker = AggChecker::new(tc.db.clone(), CheckerConfig::default()).unwrap();
            checker.check_text(&tc.article_html).unwrap()
        });
    });

    // Warm cache: the same checker re-verifies the document (the paper's
    // across-iterations / across-runs reuse).
    let warm = AggChecker::new(tc.db.clone(), CheckerConfig::default()).unwrap();
    warm.check_text(&tc.article_html).unwrap();
    group.bench_function("generated_article_warm_cache", |b| {
        b.iter(|| warm.check_text(&tc.article_html).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
