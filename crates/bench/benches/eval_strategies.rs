//! Meso-benchmark backing Table 6: one article verified under each of the
//! three evaluation strategies (naive, merged, merged + cached).

use agg_core::{AggChecker, CheckerConfig, EvalStrategy};
use agg_corpus::{generate_test_case, CorpusSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_strategies(c: &mut Criterion) {
    let spec = CorpusSpec::small(1, 1234);
    let tc = generate_test_case(&spec, 0);
    let mut group = c.benchmark_group("eval_strategies");
    group.sample_size(10);

    for (label, strategy) in [
        ("naive", EvalStrategy::Naive),
        ("merged", EvalStrategy::Merged),
        ("merged_cached", EvalStrategy::MergedCached),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = CheckerConfig {
                    strategy,
                    // A smaller hit budget keeps the naive arm affordable.
                    lucene_hits: 8,
                    ..CheckerConfig::default()
                };
                let checker = AggChecker::new(tc.db.clone(), cfg).unwrap();
                checker.check_text(&tc.article_html).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
