//! Property-based tests of the NLP substrate's robustness invariants.

use agg_nlp::claims::{detect_claims, ClaimDetectorConfig};
use agg_nlp::deptree::DependencyTree;
use agg_nlp::sentence::split_sentences;
use agg_nlp::stem::stem;
use agg_nlp::structure::parse_document;
use agg_nlp::tokenize::tokenize;
use agg_nlp::wordbreak::decompose_identifier;
use proptest::prelude::*;

proptest! {
    #[test]
    fn stemmer_output_is_wellformed(word in "[a-zA-Z]{1,24}") {
        let s = stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= word.len(), "stemming never grows words");
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn stemmer_is_case_invariant(word in "[a-zA-Z]{1,24}") {
        prop_assert_eq!(stem(&word), stem(&word.to_uppercase()));
    }

    #[test]
    fn sentence_splitter_preserves_non_whitespace(text in "[a-zA-Z0-9,.!? ]{0,200}") {
        let joined: String = split_sentences(&text).concat();
        let count = |s: &str| s.chars().filter(|c| !c.is_whitespace()).count();
        prop_assert_eq!(count(&joined), count(&text), "no characters lost");
    }

    #[test]
    fn dependency_tree_distance_is_a_metric(text in "[a-z ,]{1,80}") {
        let tokens = tokenize(&text);
        let tree = DependencyTree::build(&tokens);
        prop_assume!(tokens.len() >= 2);
        for i in 0..tokens.len().min(6) {
            for j in 0..tokens.len().min(6) {
                let d = tree.distance(i, j);
                prop_assert_eq!(d == 0, i == j);
                prop_assert_eq!(d, tree.distance(j, i), "symmetry");
                prop_assert!(d <= 3, "distances are bounded by the hierarchy");
            }
        }
    }

    #[test]
    fn wordbreak_keywords_are_lowercase_and_bounded(ident in "[A-Za-z0-9_]{1,24}") {
        let kws = decompose_identifier(&ident);
        prop_assert!(kws.len() <= 24, "no keyword explosion");
        for k in &kws {
            prop_assert_eq!(k, &k.to_lowercase());
            prop_assert!(k.len() > 1);
        }
    }

    #[test]
    fn document_parser_never_panics(text in "[ -~\\n]{0,300}") {
        let doc = parse_document(&text);
        let _ = detect_claims(&doc, &ClaimDetectorConfig::default());
    }

    #[test]
    fn html_with_random_tags_never_panics(
        inner in "[a-z0-9 .]{0,60}",
        tag in "[a-z]{1,6}",
    ) {
        let html = format!("<h1>T</h1><p><{tag}>{inner}</{tag}> tail 42.</p>");
        let doc = parse_document(&html);
        prop_assert!(doc.sentence_count() >= 1);
    }

    #[test]
    fn detected_claim_positions_are_valid(text in "[a-zA-Z0-9,.% ]{0,200}") {
        let html = format!("<p>{text}</p>");
        let doc = parse_document(&html);
        for claim in detect_claims(&doc, &ClaimDetectorConfig::default()) {
            let section = doc.section(&claim.section).expect("valid section path");
            let paragraph = &section.paragraphs[claim.paragraph];
            let sentence = &paragraph.sentences[claim.sentence];
            prop_assert!(claim.number.token_start < sentence.tokens.len());
            prop_assert!(claim.number.token_end <= sentence.tokens.len());
            prop_assert!(claim.number.token_start < claim.number.token_end);
        }
    }
}
