//! Synonym dictionary — the WordNet substitute.
//!
//! §4.2 of the paper uses WordNet to *"associate each keyword that appears
//! in a column name with its synonyms"*, boosting recall when articles
//! paraphrase column or value names. WordNet itself is a large external
//! resource; this module embeds a curated synonym table covering the
//! data-journalism vocabulary that the corpus generator and the built-in
//! test cases use, and supports loading extensions at runtime
//! (`word: syn1, syn2` lines).
//!
//! Lookups are symmetric within a group and operate on *stems*, so
//! morphological variants resolve to the same group.

use crate::stem::stem;
use std::collections::HashMap;

/// Embedded synonym groups. Each line is one group of interchangeable words.
const EMBEDDED_GROUPS: &[&[&str]] = &[
    &["count", "number", "total", "tally", "amount"],
    &["average", "mean", "typical"],
    &[
        "percentage",
        "percent",
        "share",
        "proportion",
        "fraction",
        "rate",
    ],
    &[
        "maximum", "most", "highest", "largest", "biggest", "top", "peak",
    ],
    &["minimum", "least", "lowest", "smallest", "fewest", "bottom"],
    &["sum", "total", "combined", "aggregate"],
    &["distinct", "unique", "different", "separate"],
    &[
        "salary",
        "pay",
        "wage",
        "earnings",
        "income",
        "compensation",
    ],
    &["money", "dollars", "funds", "cash"],
    &["donation", "contribution", "gift", "giving"],
    &["candidate", "contender", "nominee"],
    &["respondent", "participant", "answerer", "surveyed"],
    &["developer", "programmer", "coder", "engineer"],
    &["suspension", "ban", "punishment", "penalty", "sanction"],
    &["game", "match", "contest"],
    &["team", "club", "franchise", "squad"],
    &["player", "athlete"],
    &["year", "season", "annual"],
    &["lifetime", "indefinite", "permanent", "indef"],
    &["category", "reason", "type", "kind", "cause"],
    &["country", "nation", "state"],
    &["city", "town", "municipality"],
    &["gender", "sex"],
    &["female", "woman", "women"],
    &["male", "man", "men"],
    &["education", "schooling", "degree"],
    &["occupation", "job", "profession", "role"],
    &["age", "old"],
    &["price", "cost", "fee"],
    &["revenue", "sales", "turnover"],
    &["profit", "margin", "gain"],
    &["vote", "ballot"],
    &["election", "race", "primary"],
    &["party", "affiliation"],
    &["speech", "address", "remarks"],
    &["article", "story", "piece"],
    &["movie", "film"],
    &["song", "track", "tune"],
    &["region", "area", "zone"],
    &["population", "residents", "inhabitants"],
    &["language", "tongue"],
    &["company", "firm", "employer", "business"],
    &["school", "college", "university"],
    &["flight", "trip", "journey"],
    &["passenger", "traveler", "flier"],
    &["rude", "impolite", "inconsiderate"],
    &["recline", "lean"],
    &["drug", "substance", "ped"],
    &["abuse", "violation", "offense", "misconduct"],
    &["violence", "assault"],
    &["crime", "offense", "felony"],
    &["accident", "crash", "collision"],
    &["death", "fatality", "casualty"],
    &["injury", "harm", "wound"],
    &["hospital", "clinic"],
    &["doctor", "physician"],
    &["gun", "firearm", "weapon"],
    &["temperature", "heat", "warmth"],
    &["rain", "precipitation", "rainfall"],
    &["storm", "hurricane", "cyclone"],
    &["win", "victory", "triumph"],
    &["loss", "defeat"],
    &["score", "points"],
    &["goal", "target"],
    &["budget", "spending", "expenditure"],
    &["tax", "levy"],
    &["debt", "liability"],
    &["growth", "increase", "rise", "gain"],
    &["decline", "decrease", "drop", "fall"],
    &["experience", "tenure", "seniority"],
    &["remote", "distributed", "offsite"],
    &["satisfaction", "happiness", "contentment"],
];

/// A symmetric, stem-aware synonym dictionary.
#[derive(Debug, Clone)]
pub struct SynonymDict {
    /// stem → group ids (a stem can belong to several groups).
    membership: HashMap<String, Vec<usize>>,
    /// group id → member words (surface forms for expansion).
    groups: Vec<Vec<String>>,
}

impl Default for SynonymDict {
    fn default() -> Self {
        Self::embedded()
    }
}

impl SynonymDict {
    /// An empty dictionary (no expansion — useful in ablations).
    pub fn empty() -> Self {
        Self {
            membership: HashMap::new(),
            groups: Vec::new(),
        }
    }

    /// The embedded dictionary.
    pub fn embedded() -> Self {
        let mut dict = Self::empty();
        for group in EMBEDDED_GROUPS {
            dict.add_group(group.iter().map(|s| s.to_string()).collect());
        }
        dict
    }

    /// Add one synonym group.
    pub fn add_group(&mut self, words: Vec<String>) {
        let id = self.groups.len();
        for w in &words {
            let key = stem(w);
            let ids = self.membership.entry(key).or_default();
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        self.groups.push(words);
    }

    /// Parse `word: syn1, syn2` lines and merge them in. Returns the number
    /// of groups added.
    pub fn load_extensions(&mut self, text: &str) -> usize {
        let mut added = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((head, tail)) = line.split_once(':') {
                let mut words: Vec<String> = vec![head.trim().to_lowercase()];
                words.extend(
                    tail.split(',')
                        .map(|w| w.trim().to_lowercase())
                        .filter(|w| !w.is_empty()),
                );
                if words.len() >= 2 {
                    self.add_group(words);
                    added += 1;
                }
            }
        }
        added
    }

    /// All synonyms of `word` (excluding the word itself), as surface forms.
    pub fn synonyms(&self, word: &str) -> Vec<String> {
        let key = stem(word);
        let mut out = Vec::new();
        if let Some(ids) = self.membership.get(&key) {
            for &id in ids {
                for w in &self.groups[id] {
                    if stem(w) != key && !out.contains(w) {
                        out.push(w.clone());
                    }
                }
            }
        }
        out
    }

    /// Do two words belong to a common synonym group (or share a stem)?
    pub fn related(&self, a: &str, b: &str) -> bool {
        let sa = stem(a);
        let sb = stem(b);
        if sa == sb {
            return true;
        }
        match (self.membership.get(&sa), self.membership.get(&sb)) {
            (Some(ga), Some(gb)) => ga.iter().any(|id| gb.contains(id)),
            _ => false,
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_groups_cover_aggregation_vocabulary() {
        let d = SynonymDict::embedded();
        assert!(d.related("count", "number"));
        assert!(d.related("average", "mean"));
        assert!(d.related("percentage", "share"));
        assert!(d.related("maximum", "highest"));
        assert!(!d.related("count", "average"));
    }

    #[test]
    fn stem_aware_lookup() {
        let d = SynonymDict::embedded();
        // "suspensions" (plural) and "banned" (inflected) still relate.
        assert!(d.related("suspensions", "ban"));
        assert!(d.related("suspension", "banned"));
        assert!(d.related("donations", "contributions"));
    }

    #[test]
    fn synonyms_exclude_self() {
        let d = SynonymDict::embedded();
        let syns = d.synonyms("count");
        assert!(syns.iter().any(|s| s == "number"));
        assert!(!syns.iter().any(|s| s == "count"));
    }

    #[test]
    fn unknown_words_have_no_synonyms() {
        let d = SynonymDict::embedded();
        assert!(d.synonyms("zyxwv").is_empty());
        assert!(!d.related("zyxwv", "count"));
        assert!(d.related("zyxwv", "zyxwv"), "same stem is always related");
    }

    #[test]
    fn extensions_merge() {
        let mut d = SynonymDict::embedded();
        let n =
            d.load_extensions("# custom\nquarterback: qb, passer\n\nbad-line\ncoach: manager\n");
        assert_eq!(n, 2);
        assert!(d.related("quarterback", "qb"));
        assert!(d.related("coach", "manager"));
    }

    #[test]
    fn empty_dictionary_is_inert() {
        let d = SynonymDict::empty();
        assert!(d.synonyms("count").is_empty());
        assert!(!d.related("count", "number"));
        assert_eq!(d.group_count(), 0);
    }

    #[test]
    fn words_in_multiple_groups_expand_to_all() {
        let d = SynonymDict::embedded();
        // "total" appears in the count group and the sum group.
        let syns = d.synonyms("total");
        assert!(syns.iter().any(|s| s == "number"));
        assert!(syns.iter().any(|s| s == "sum"));
    }
}
