//! The Porter stemming algorithm (Porter, 1980).
//!
//! Keyword matching compares claim words against fragment keywords after
//! stemming, so "suspensions" matches "suspension" and "gambling" matches
//! "gamble". This is a faithful implementation of the original five-step
//! algorithm over lowercase ASCII; non-ASCII words are returned unchanged.

/// Stem one word. The input is lowercased; words shorter than 3 characters
/// are returned as-is (standard Porter behaviour).
pub fn stem(word: &str) -> String {
    let lower = word.to_lowercase();
    if lower.len() <= 2 || !lower.bytes().all(|b| b.is_ascii_alphabetic()) {
        return lower;
    }
    let mut s = Stemmer {
        b: lower.into_bytes(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    String::from_utf8(s.b).expect("ascii")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Porter's measure m of `b[..len]`: the number of VC sequences.
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < len && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Vowel run.
            while i < len && !self.is_consonant(i) {
                i += 1;
            }
            if i >= len {
                return m;
            }
            // Consonant run → one VC.
            while i < len && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
        }
    }

    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_consonant(i))
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    fn stem_len(&self, suffix: &str) -> usize {
        self.b.len() - suffix.len()
    }

    /// Ends with a double consonant?
    fn double_consonant(&self, len: usize) -> bool {
        len >= 2 && self.b[len - 1] == self.b[len - 2] && self.is_consonant(len - 1)
    }

    /// cvc pattern at the end, where the final c is not w, x, or y.
    fn cvc(&self, len: usize) -> bool {
        if len < 3 {
            return false;
        }
        self.is_consonant(len - 3)
            && !self.is_consonant(len - 2)
            && self.is_consonant(len - 1)
            && !matches!(self.b[len - 1], b'w' | b'x' | b'y')
    }

    fn truncate(&mut self, len: usize) {
        self.b.truncate(len);
    }

    fn replace(&mut self, suffix: &str, replacement: &str) {
        let len = self.stem_len(suffix);
        self.b.truncate(len);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.replace("sses", "ss");
        } else if self.ends_with("ies") {
            self.replace("ies", "i");
        } else if self.ends_with("ss") {
            // keep
        } else if self.ends_with("s") {
            self.replace("s", "");
        }
    }

    fn step1b(&mut self) {
        if self.ends_with("eed") {
            if self.measure(self.stem_len("eed")) > 0 {
                self.replace("eed", "ee");
            }
            return;
        }
        let applied = if self.ends_with("ed") && self.has_vowel(self.stem_len("ed")) {
            self.replace("ed", "");
            true
        } else if self.ends_with("ing") && self.has_vowel(self.stem_len("ing")) {
            self.replace("ing", "");
            true
        } else {
            false
        };
        if applied {
            if self.ends_with("at") {
                self.replace("at", "ate");
            } else if self.ends_with("bl") {
                self.replace("bl", "ble");
            } else if self.ends_with("iz") {
                self.replace("iz", "ize");
            } else if self.double_consonant(self.b.len())
                && !matches!(self.b[self.b.len() - 1], b'l' | b's' | b'z')
            {
                self.truncate(self.b.len() - 1);
            } else if self.measure(self.b.len()) == 1 && self.cvc(self.b.len()) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if self.ends_with("y") && self.has_vowel(self.stem_len("y")) {
            let last = self.b.len() - 1;
            self.b[last] = b'i';
        }
    }

    fn apply_rules(&mut self, rules: &[(&str, &str)], min_measure: usize) {
        for (suffix, repl) in rules {
            if self.ends_with(suffix) {
                let len = self.stem_len(suffix);
                if self.measure(len) > min_measure {
                    self.replace(suffix, repl);
                }
                return; // longest-match semantics: rule lists are ordered
            }
        }
    }

    fn step2(&mut self) {
        self.apply_rules(
            &[
                ("ational", "ate"),
                ("tional", "tion"),
                ("enci", "ence"),
                ("anci", "ance"),
                ("izer", "ize"),
                ("abli", "able"),
                ("alli", "al"),
                ("entli", "ent"),
                ("eli", "e"),
                ("ousli", "ous"),
                ("ization", "ize"),
                ("ation", "ate"),
                ("ator", "ate"),
                ("alism", "al"),
                ("iveness", "ive"),
                ("fulness", "ful"),
                ("ousness", "ous"),
                ("aliti", "al"),
                ("iviti", "ive"),
                ("biliti", "ble"),
            ],
            0,
        );
    }

    fn step3(&mut self) {
        self.apply_rules(
            &[
                ("icate", "ic"),
                ("ative", ""),
                ("alize", "al"),
                ("iciti", "ic"),
                ("ical", "ic"),
                ("ful", ""),
                ("ness", ""),
            ],
            0,
        );
    }

    fn step4(&mut self) {
        for suffix in [
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ] {
            if self.ends_with(suffix) {
                let len = self.stem_len(suffix);
                if self.measure(len) > 1 {
                    if suffix == "ion" && !(len > 0 && matches!(self.b[len - 1], b's' | b't')) {
                        return;
                    }
                    self.truncate(len);
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if self.ends_with("e") {
            let len = self.stem_len("e");
            let m = self.measure(len);
            if m > 1 || (m == 1 && !self.cvc(len)) {
                self.truncate(len);
            }
        }
    }

    fn step5b(&mut self) {
        let len = self.b.len();
        if len >= 2
            && self.b[len - 1] == b'l'
            && self.double_consonant(len)
            && self.measure(len) > 1
        {
            self.truncate(len - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's paper and the canonical test set.
    #[test]
    fn canonical_examples() {
        let pairs = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electricity", "electr"),
            ("hopefulness", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("activate", "activ"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in pairs {
            assert_eq!(stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn domain_vocabulary_conflates() {
        // The property the checker relies on: morphological variants of
        // data-journalism words share a stem.
        assert_eq!(stem("suspensions"), stem("suspension"));
        assert_eq!(stem("gambling"), stem("gamble"));
        assert_eq!(stem("banned"), stem("ban"));
        assert_eq!(stem("donations"), stem("donation"));
        assert_eq!(stem("respondents"), stem("respondent"));
        assert_eq!(stem("salaries"), stem("salary"));
        assert_eq!(stem("counting"), stem("count"));
        assert_eq!(stem("averages"), stem("average"));
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("at"), "at");
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("I"), "i");
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(stem("Gambling"), stem("gambling"));
        assert_eq!(stem("SUSPENSIONS"), stem("suspensions"));
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("naïve"), "naïve");
    }

    #[test]
    fn already_stemmed_words_are_stable() {
        // Porter is not idempotent in general, but these common stems are
        // fixed points — a sanity check that no rule misfires on them.
        for w in ["count", "ban", "hope", "season", "team", "vote"] {
            assert_eq!(stem(w), w, "rule misfired on {w}");
        }
    }
}
