//! Rounding-aware value matching (Definition 1 of the paper).
//!
//! A claim is correct if an *admissible rounding function* maps the exact
//! query result to the claimed value; the paper admits rounding to any
//! number of significant digits. The claimed value's own stated precision
//! (significant digits, decimal places) bounds the comparison.
//!
//! This lives in `agg-nlp` because the claimed value's precision is a
//! property of how the number was *written* — both the checker core and
//! the corpus generator (which must label its claims exactly as the
//! checker would judge them) depend on it.

use crate::numbers::NumberMention;

/// Round `x` to `digits` significant digits.
pub fn round_significant(x: f64, digits: u32) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let digits = digits.max(1) as i32;
    let magnitude = x.abs().log10().floor() as i32;
    let factor = 10f64.powi(digits - 1 - magnitude);
    (x * factor).round() / factor
}

/// Round `x` to `places` decimal places.
pub fn round_decimals(x: f64, places: u32) -> f64 {
    let factor = 10f64.powi(places.min(12) as i32);
    (x * factor).round() / factor
}

/// Does a query result match a claimed number under admissible rounding?
/// Accepts a match at the claim's significant-digit count or at its stated
/// decimal places.
pub fn matches_value(
    result: f64,
    claimed: f64,
    significant_digits: u32,
    decimal_places: u32,
) -> bool {
    if !result.is_finite() || !claimed.is_finite() {
        return false;
    }
    if approx_eq(result, claimed) {
        return true;
    }
    if approx_eq(round_significant(result, significant_digits), claimed) {
        return true;
    }
    approx_eq(round_decimals(result, decimal_places), claimed)
}

/// [`matches_value`] for a parsed [`NumberMention`].
pub fn matches_claim(result: f64, claim: &NumberMention) -> bool {
    matches_value(
        result,
        claim.value,
        claim.significant_digits,
        claim.decimal_places,
    )
}

fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    if scale < 1e-9 {
        return (a - b).abs() < 1e-9;
    }
    ((a - b) / scale).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significant_rounding() {
        assert_eq!(round_significant(423.0, 1), 400.0);
        assert_eq!(round_significant(0.0456, 2), 0.046);
        assert_eq!(round_significant(-37.0, 1), -40.0);
    }

    #[test]
    fn matching_respects_precision() {
        assert!(matches_value(423.0, 400.0, 1, 0));
        assert!(!matches_value(470.0, 400.0, 1, 0));
        assert!(matches_value(66.6667, 67.0, 2, 0));
        assert!(!matches_value(66.6667, 66.0, 2, 0));
    }

    #[test]
    fn non_finite_never_matches() {
        assert!(!matches_value(f64::NAN, 1.0, 1, 0));
        assert!(!matches_value(1.0, f64::INFINITY, 1, 0));
    }
}
