//! Identifier decomposition.
//!
//! Column names in public data sets are rarely clean words: `totalsalary`,
//! `GamesPlayed`, `avg_pts_2014`. Following §4.2 of the paper, identifiers
//! are split on explicit delimiters and case boundaries first, then any
//! remaining letter runs are segmented against the embedded dictionary
//! ("decompose column names into all possible substrings and compare
//! against a dictionary"), and known abbreviations are expanded.

use crate::dictionary::{expand_abbreviation, is_word};

/// Decompose an identifier into lowercase keyword tokens.
///
/// The result contains:
/// * every delimiter/camelCase-separated part,
/// * dictionary words recovered from concatenated runs (`totalsalary` →
///   `total`, `salary`),
/// * expansions of known abbreviations (`avg` → `average`), and
/// * the original identifier itself (lowercased) when it differs — exact
///   occurrences in text should still match.
pub fn decompose_identifier(identifier: &str) -> Vec<String> {
    let mut keywords: Vec<String> = Vec::new();
    let mut push = |w: String| {
        if w.len() > 1 && !keywords.contains(&w) {
            keywords.push(w);
        }
    };

    for part in split_delimiters(identifier) {
        let lower = part.to_lowercase();
        if lower.is_empty() || lower.chars().all(|c| c.is_ascii_digit()) {
            // Bare numbers in identifiers (years etc.) are kept as-is.
            if !lower.is_empty() {
                push(lower.clone());
            }
            continue;
        }
        push(lower.clone());
        if let Some(expansion) = expand_abbreviation(&lower) {
            push(expansion.to_string());
        }
        if !is_word(&lower) {
            if let Some(words) = word_break(&lower) {
                for w in words {
                    push(w.to_string());
                    if let Some(expansion) = expand_abbreviation(w) {
                        push(expansion.to_string());
                    }
                }
            }
        }
    }
    let full = identifier.to_lowercase();
    push(full);
    keywords
}

/// Split on `_`, `-`, `.`, spaces, digit/letter boundaries, and camelCase.
fn split_delimiters(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut prev: Option<char> = None;
    for c in s.chars() {
        if c == '_' || c == '-' || c == '.' || c == ' ' || c == '/' {
            if !current.is_empty() {
                parts.push(std::mem::take(&mut current));
            }
            prev = None;
            continue;
        }
        let boundary = match prev {
            Some(p) => {
                (p.is_lowercase() && c.is_uppercase())
                    || (p.is_alphabetic() && c.is_ascii_digit())
                    || (p.is_ascii_digit() && c.is_alphabetic())
            }
            None => false,
        };
        if boundary && !current.is_empty() {
            parts.push(std::mem::take(&mut current));
        }
        current.push(c);
        prev = Some(c);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Segment a lowercase letter run into dictionary words via dynamic
/// programming. Prefers segmentations with **fewer, longer** words; returns
/// `None` when no full segmentation exists.
fn word_break(run: &str) -> Option<Vec<&str>> {
    let n = run.len();
    if n == 0 {
        return None;
    }
    // best[i] = minimal number of words covering run[..i], with backpointer.
    let mut best: Vec<Option<(usize, usize)>> = vec![None; n + 1]; // (words, split)
    best[0] = Some((0, 0));
    for i in 1..=n {
        // Try the longest candidate word first; cap length at 20.
        let lo = i.saturating_sub(20);
        for j in (lo..i).rev() {
            if let Some((words, _)) = best[j] {
                let cand = &run[j..i];
                // Accept dictionary words and abbreviations of length ≥ 2.
                if cand.len() >= 2 && (is_word(cand) || expand_abbreviation(cand).is_some()) {
                    let score = words + 1;
                    if best[i].is_none_or(|(w, _)| score < w) {
                        best[i] = Some((score, j));
                    }
                }
            }
        }
    }
    best[n]?;
    let mut words = Vec::new();
    let mut i = n;
    while i > 0 {
        let (_, j) = best[i].expect("backpointer chain");
        words.push(&run[j..i]);
        i = j;
    }
    words.reverse();
    Some(words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_snake_and_camel_case() {
        assert_eq!(
            decompose_identifier("player_name"),
            vec!["player", "name", "player_name"]
        );
        let kws = decompose_identifier("GamesPlayed");
        assert!(kws.contains(&"games".to_string()));
        assert!(kws.contains(&"played".to_string()) || kws.contains(&"gamesplayed".to_string()));
    }

    #[test]
    fn breaks_concatenated_words() {
        let kws = decompose_identifier("totalsalary");
        assert!(kws.contains(&"total".to_string()), "{kws:?}");
        assert!(kws.contains(&"salary".to_string()), "{kws:?}");
    }

    #[test]
    fn expands_abbreviations() {
        let kws = decompose_identifier("avg_pts");
        assert!(kws.contains(&"average".to_string()), "{kws:?}");
        let kws = decompose_identifier("pct_female");
        assert!(kws.contains(&"percent".to_string()), "{kws:?}");
        assert!(kws.contains(&"female".to_string()), "{kws:?}");
    }

    #[test]
    fn keeps_original_identifier() {
        let kws = decompose_identifier("totalsalary");
        assert!(kws.contains(&"totalsalary".to_string()));
    }

    #[test]
    fn numeric_suffixes_survive() {
        let kws = decompose_identifier("revenue2014");
        assert!(kws.contains(&"revenue".to_string()));
        assert!(kws.contains(&"2014".to_string()));
    }

    #[test]
    fn word_break_prefers_fewer_words() {
        // "income" should stay one word, not "in" + "come" (neither of which
        // is in the dictionary anyway, but longer matches must win when both
        // exist, e.g. "counts" over "count" + dangling "s").
        assert_eq!(word_break("income"), Some(vec!["income"]));
        assert_eq!(word_break("counts"), Some(vec!["counts"]));
    }

    #[test]
    fn unbreakable_runs_return_none() {
        assert_eq!(word_break("zzxqy"), None);
        assert_eq!(word_break(""), None);
    }

    #[test]
    fn mixed_identifier_end_to_end() {
        let kws = decompose_identifier("avgSalary_2016");
        assert!(kws.contains(&"average".to_string()), "{kws:?}");
        assert!(kws.contains(&"salary".to_string()), "{kws:?}");
        assert!(kws.contains(&"2016".to_string()), "{kws:?}");
    }

    #[test]
    fn no_duplicate_keywords() {
        let kws = decompose_identifier("total_total_salary");
        let mut sorted = kws.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), kws.len());
    }
}
