//! Hierarchical document model and structure parsing.
//!
//! The paper exploits document structure (Figure 4): a claim's keyword
//! context includes the preceding sentence, the first sentence of its
//! paragraph, and the headlines of all enclosing sections. This module
//! parses an HTML subset (`<h1>`–`<h6>`, `<p>`, `<title>`, `<li>`, `<br>`)
//! — *"our current implementation uses HTML markup"* — into a
//! Document → Section → Paragraph → Sentence hierarchy, with a
//! markdown-style plain-text fallback (`#` headings, blank-line paragraphs).

use crate::sentence::split_sentences;
use crate::tokenize::{tokenize, Token};
use serde::{Deserialize, Serialize};

/// One sentence: raw text plus its tokens.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sentence {
    pub text: String,
    pub tokens: Vec<Token>,
}

impl Sentence {
    pub fn new(text: impl Into<String>) -> Sentence {
        let text = text.into();
        let tokens = tokenize(&text);
        Sentence { text, tokens }
    }
}

/// A paragraph: a run of sentences.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Paragraph {
    pub sentences: Vec<Sentence>,
}

/// A (sub)section with an optional headline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Section {
    /// Heading level: 0 for the document root, 1 for `<h1>`, …
    pub level: usize,
    pub headline: Option<Sentence>,
    pub paragraphs: Vec<Paragraph>,
    pub subsections: Vec<Section>,
}

/// Path from the root to a section: indices into `subsections` at each
/// level. The empty path is the root.
pub type SectionPath = Vec<usize>;

/// A parsed document.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Document {
    pub title: Option<Sentence>,
    pub root: Section,
}

impl Document {
    /// The section at `path` (root for the empty path).
    pub fn section(&self, path: &[usize]) -> Option<&Section> {
        let mut s = &self.root;
        for &i in path {
            s = s.subsections.get(i)?;
        }
        Some(s)
    }

    /// Headlines of the section at `path` and all its ancestors, innermost
    /// first — the "walk up" of Algorithm 2, lines 15–19. Includes the
    /// document title last, if present.
    pub fn enclosing_headlines(&self, path: &[usize]) -> Vec<&Sentence> {
        let mut headlines = Vec::new();
        // Collect along the path, then reverse for innermost-first order.
        let mut s = &self.root;
        let mut chain = Vec::new();
        if let Some(h) = &s.headline {
            chain.push(h);
        }
        for &i in path {
            match s.subsections.get(i) {
                Some(sub) => {
                    s = sub;
                    if let Some(h) = &s.headline {
                        chain.push(h);
                    }
                }
                None => break,
            }
        }
        chain.reverse();
        headlines.extend(chain);
        if let Some(t) = &self.title {
            headlines.push(t);
        }
        headlines
    }

    /// Visit every paragraph with its section path, in document order.
    pub fn for_each_paragraph<'a>(&'a self, mut f: impl FnMut(&SectionPath, usize, &'a Paragraph)) {
        fn walk<'a, F: FnMut(&SectionPath, usize, &'a Paragraph)>(
            s: &'a Section,
            path: &mut SectionPath,
            f: &mut F,
        ) {
            for (i, p) in s.paragraphs.iter().enumerate() {
                f(path, i, p);
            }
            for (i, sub) in s.subsections.iter().enumerate() {
                path.push(i);
                walk(sub, path, f);
                path.pop();
            }
        }
        let mut path = Vec::new();
        walk(&self.root, &mut path, &mut f);
    }

    /// Total number of sentences in body paragraphs.
    pub fn sentence_count(&self) -> usize {
        let mut n = 0;
        self.for_each_paragraph(|_, _, p| n += p.sentences.len());
        n
    }
}

/// Parse a document, auto-detecting HTML versus plain text.
pub fn parse_document(input: &str) -> Document {
    if looks_like_html(input) {
        parse_html(input)
    } else {
        parse_plain(input)
    }
}

fn looks_like_html(input: &str) -> bool {
    let lower = input.to_lowercase();
    [
        "<p>", "<p ", "<h1", "<h2", "<h3", "<h4", "<body", "<html", "<title",
    ]
    .iter()
    .any(|t| lower.contains(t))
}

/// Decode the handful of HTML entities that occur in articles.
fn decode_entities(s: &str) -> String {
    s.replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'")
        .replace("&apos;", "'")
        .replace("&nbsp;", " ")
        .replace("&mdash;", "—")
        .replace("&ndash;", "–")
}

#[derive(Debug, PartialEq)]
enum HtmlEvent {
    Heading(usize, String),
    Title(String),
    Paragraph(String),
}

/// A minimal, forgiving HTML reader: extracts headings, title, and
/// paragraph-level text; every other tag is stripped (its text kept).
fn html_events(input: &str) -> Vec<HtmlEvent> {
    let mut events = Vec::new();
    let mut text = String::new(); // accumulated paragraph text
    let mut capture: Option<(usize, String)> = None; // heading/title capture
    let mut i = 0;
    let bytes = input.as_bytes();

    let flush_paragraphs = |text: &mut String, events: &mut Vec<HtmlEvent>| {
        for block in text.split("\n\n") {
            let block = block.trim();
            if !block.is_empty() {
                events.push(HtmlEvent::Paragraph(block.to_string()));
            }
        }
        text.clear();
    };

    while i < bytes.len() {
        if bytes[i] == b'<' {
            let end = match input[i..].find('>') {
                Some(e) => i + e,
                None => break,
            };
            let tag_body = &input[i + 1..end];
            let tag_name: String = tag_body
                .trim_start_matches('/')
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            let closing = tag_body.starts_with('/');
            match tag_name.as_str() {
                "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => {
                    let level = tag_name[1..].parse::<usize>().unwrap_or(1);
                    if closing {
                        if let Some((lvl, buf)) = capture.take() {
                            let t = decode_entities(buf.trim());
                            if !t.is_empty() {
                                events.push(HtmlEvent::Heading(lvl, t));
                            }
                        }
                    } else {
                        flush_paragraphs(&mut text, &mut events);
                        capture = Some((level, String::new()));
                    }
                }
                "title" => {
                    if closing {
                        if let Some((_, buf)) = capture.take() {
                            let t = decode_entities(buf.trim());
                            if !t.is_empty() {
                                events.push(HtmlEvent::Title(t));
                            }
                        }
                    } else {
                        capture = Some((0, String::new()));
                    }
                }
                "p" | "li" | "div" | "tr" | "blockquote" => {
                    // Block boundary: flush on open *and* close.
                    flush_paragraphs(&mut text, &mut events);
                }
                "br" => {
                    if let Some((_, buf)) = &mut capture {
                        buf.push(' ');
                    } else {
                        text.push(' ');
                    }
                }
                "script" | "style"
                    // Skip content up to the closing tag.
                    if !closing => {
                        let close = format!("</{tag_name}");
                        if let Some(pos) = input[end..].to_lowercase().find(&close) {
                            i = end + pos;
                            continue;
                        }
                    }
                _ => {}
            }
            i = end + 1;
            continue;
        }
        // Text content.
        let next_tag = input[i..].find('<').map(|p| i + p).unwrap_or(input.len());
        let chunk = &input[i..next_tag];
        match &mut capture {
            Some((_, buf)) => buf.push_str(chunk),
            None => {
                // Preserve blank lines as paragraph boundaries.
                let normalized = chunk.replace('\r', "");
                text.push_str(&normalized);
            }
        }
        i = next_tag;
    }
    flush_paragraphs(&mut text, &mut events);
    events
}

fn parse_html(input: &str) -> Document {
    let mut doc = Document::default();
    // Stack of (level, section); sections are moved into their parent when
    // a sibling or shallower heading arrives.
    let mut stack: Vec<Section> = vec![Section::default()]; // root at level 0
    for event in html_events(input) {
        match event {
            HtmlEvent::Title(t) => {
                doc.title = Some(Sentence::new(t));
            }
            HtmlEvent::Heading(level, t) => {
                // Close sections at the same or deeper level.
                while stack.last().map(|s| s.level).unwrap_or(0) >= level {
                    let done = stack.pop().expect("stack non-empty");
                    stack
                        .last_mut()
                        .expect("root remains")
                        .subsections
                        .push(done);
                }
                stack.push(Section {
                    level,
                    headline: Some(Sentence::new(t)),
                    ..Default::default()
                });
            }
            HtmlEvent::Paragraph(t) => {
                let text = decode_entities(&t)
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ");
                if text.is_empty() {
                    continue;
                }
                let sentences = split_sentences(&text)
                    .into_iter()
                    .map(Sentence::new)
                    .collect();
                stack
                    .last_mut()
                    .expect("stack non-empty")
                    .paragraphs
                    .push(Paragraph { sentences });
            }
        }
    }
    // Unwind the stack.
    while stack.len() > 1 {
        let done = stack.pop().expect("len > 1");
        stack.last_mut().expect("root").subsections.push(done);
    }
    doc.root = stack.pop().expect("root");
    doc
}

/// Markdown-ish plain text: `#`-prefixed headings, blank-line paragraphs.
fn parse_plain(input: &str) -> Document {
    let mut html = String::with_capacity(input.len() + 64);
    for block in input.replace('\r', "").split("\n\n") {
        let block = block.trim();
        if block.is_empty() {
            continue;
        }
        if let Some(rest) = block.strip_prefix('#') {
            let level = 1 + rest.chars().take_while(|c| *c == '#').count();
            let text = rest.trim_start_matches('#').trim();
            html.push_str(&format!("<h{level}>{text}</h{level}>\n"));
        } else {
            let joined = block.split('\n').collect::<Vec<_>>().join(" ");
            html.push_str(&format!("<p>{joined}</p>\n"));
        }
    }
    parse_html(&html)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARTICLE: &str = r#"
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
<h2>Details</h2>
<p>The gambling ban dates from 1983. It was never lifted.</p>
<h1>Other suspensions</h1>
<p>Most suspensions last four games or fewer.</p>
"#;

    #[test]
    fn parses_hierarchy() {
        let doc = parse_document(ARTICLE);
        assert!(doc.title.as_ref().unwrap().text.contains("NFL"));
        assert_eq!(doc.root.subsections.len(), 2, "two h1 sections");
        let s0 = &doc.root.subsections[0];
        assert_eq!(s0.level, 1);
        assert!(s0.headline.as_ref().unwrap().text.contains("Lifetime"));
        assert_eq!(s0.paragraphs.len(), 1);
        assert_eq!(s0.subsections.len(), 1, "nested h2");
        assert_eq!(s0.subsections[0].paragraphs.len(), 1);
    }

    #[test]
    fn sentences_are_split_and_tokenized() {
        let doc = parse_document(ARTICLE);
        let para = &doc.root.subsections[0].paragraphs[0];
        assert_eq!(para.sentences.len(), 2);
        assert!(para.sentences[1]
            .tokens
            .iter()
            .any(|t| t.text == "gambling"));
    }

    #[test]
    fn enclosing_headlines_walk_up() {
        let doc = parse_document(ARTICLE);
        // Section path [0, 0] = "Details" under "Lifetime bans".
        let headlines = doc.enclosing_headlines(&[0, 0]);
        let texts: Vec<&str> = headlines.iter().map(|h| h.text.as_str()).collect();
        assert_eq!(texts.len(), 3, "h2, h1, title");
        assert!(texts[0].contains("Details"));
        assert!(texts[1].contains("Lifetime"));
        assert!(texts[2].contains("NFL"));
    }

    #[test]
    fn paragraph_iteration_in_document_order() {
        let doc = parse_document(ARTICLE);
        let mut first_sentences = Vec::new();
        doc.for_each_paragraph(|_, _, p| {
            first_sentences.push(p.sentences[0].text.clone());
        });
        assert_eq!(first_sentences.len(), 3);
        assert!(first_sentences[0].contains("four previous"));
        assert!(first_sentences[1].contains("1983"));
        assert!(first_sentences[2].contains("four games"));
    }

    #[test]
    fn plain_text_fallback() {
        let doc = parse_document(
            "# Survey results\n\nMost of the 1,000 respondents agreed.\n\n## Methods\n\nWe asked around.",
        );
        assert_eq!(doc.root.subsections.len(), 1);
        let s = &doc.root.subsections[0];
        assert!(s.headline.as_ref().unwrap().text.contains("Survey"));
        assert_eq!(s.paragraphs.len(), 1);
        assert_eq!(s.subsections.len(), 1);
    }

    #[test]
    fn entities_are_decoded() {
        let doc = parse_document("<p>Fish &amp; chips cost &#39;a lot&#39;.</p>");
        let mut texts = Vec::new();
        doc.for_each_paragraph(|_, _, p| texts.push(p.sentences[0].text.clone()));
        assert_eq!(texts[0], "Fish & chips cost 'a lot'.");
    }

    #[test]
    fn attributes_and_unknown_tags_are_tolerated() {
        let doc = parse_document("<p class=\"lead\">Hello <em>world</em>. Second sentence.</p>");
        let mut count = 0;
        doc.for_each_paragraph(|_, _, p| {
            count += p.sentences.len();
            assert!(p.sentences[0].text.contains("Hello world"));
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn script_content_is_skipped() {
        let doc = parse_document("<p>Visible.</p><script>var x = 42;</script><p>Also visible.</p>");
        let mut all = String::new();
        doc.for_each_paragraph(|_, _, p| {
            for s in &p.sentences {
                all.push_str(&s.text);
            }
        });
        assert!(!all.contains("42"));
        assert!(all.contains("Also visible"));
    }

    #[test]
    fn section_lookup_by_path() {
        let doc = parse_document(ARTICLE);
        assert!(doc.section(&[]).is_some());
        assert!(doc.section(&[0, 0]).is_some());
        assert!(doc.section(&[5]).is_none());
    }

    #[test]
    fn heading_level_jumps_are_handled() {
        // h3 directly under h1 (skipping h2) must nest, not crash.
        let doc = parse_document("<h1>A</h1><h3>B</h3><p>text</p><h1>C</h1>");
        assert_eq!(doc.root.subsections.len(), 2);
        assert_eq!(doc.root.subsections[0].subsections.len(), 1);
    }

    #[test]
    fn empty_document() {
        let doc = parse_document("");
        assert_eq!(doc.sentence_count(), 0);
        assert!(doc.title.is_none());
    }
}
