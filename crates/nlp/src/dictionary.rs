//! Embedded English word list for identifier decomposition.
//!
//! §4.2 of the paper: *"Column names are often concatenations of multiple
//! words and abbreviations. We therefore decompose column names into all
//! possible substrings and compare against a dictionary."* This module is
//! that dictionary: a compact list of common English words plus the
//! data-set vocabulary that realistic column names draw from, and a table
//! of common abbreviations with their expansions.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Common words found in column names of public data sets. Kept lowercase,
/// one word per entry. (Deliberately *not* a full English dictionary: short
/// function words would create spurious decompositions.)
const WORDS: &[&str] = &[
    // general data vocabulary
    "account", "active", "actual", "address", "adult", "age", "agency", "airline", "airport",
    "album", "all", "amount", "annual", "answer", "area", "artist", "attendance", "author",
    "average", "award", "balance", "ban", "band", "bank", "base", "bill", "birth", "board",
    "bonus", "book", "born", "brand", "budget", "business", "buyer", "camp", "campaign",
    "candidate", "capacity", "capital", "car", "case", "cash", "category", "cause", "census",
    "center", "chain", "change", "channel", "charge", "chart", "check", "child", "city",
    "claim", "class", "client", "close", "club", "coach", "code", "cohort", "college", "color",
    "comment", "committee", "company", "conduct", "conference", "congress", "contract",
    "contribution", "cost", "count", "counts", "country", "county", "course", "court", "crash",
    "credit", "crime", "current", "customer", "cycle", "daily", "data", "date", "day", "death",
    "debt", "degree", "delay", "demand", "density", "department", "deposit", "depth",
    "developer", "device", "diff", "direction", "director", "distance", "district", "division",
    "doctor", "dollar", "dollars", "domain", "donation", "donor", "dose", "draft", "driver",
    "drug", "duration", "earnings", "economy", "education", "effect", "election", "employee",
    "employer", "end", "energy", "engine", "entry", "episode", "error", "estimate", "event",
    "exam", "expense", "experience", "export", "factor", "family", "fan", "fare", "fatal",
    "fee", "female", "field", "figure", "file", "film", "final", "finance", "fine", "firm",
    "first", "flight", "floor", "follower", "food", "force", "forecast", "format", "fortune",
    "frequency", "fuel", "full", "fund", "funding", "game", "games", "gas", "gender", "genre",
    "goal", "goals", "government", "grade", "graduate", "grant", "gross", "group", "growth",
    "guest", "health", "height", "high", "hire", "history", "hit", "hits", "home", "hospital",
    "host", "hour", "hours", "house", "household", "id", "impact", "import", "income", "index",
    "industry", "info", "injury", "insurance", "interest", "inventory", "investment", "item",
    "job", "jobs", "judge", "killed", "kind", "label", "language", "last", "launch", "law",
    "league", "length", "level", "license", "life", "lifetime", "limit", "line", "list",
    "loan", "local", "location", "loss", "losses", "low", "major", "male", "manager",
    "margin", "market", "match", "matches", "max", "mean", "measure", "median", "member",
    "mention", "metric", "mid", "migration", "mile", "miles", "military", "min", "minute",
    "minutes", "model", "money", "month", "monthly", "mortality", "movie", "murder", "name",
    "nation", "national", "native", "net", "network", "news", "night", "nominee", "number",
    "occupation", "offense", "office", "officer", "oil", "open", "opponent", "order", "origin",
    "outcome", "output", "overall", "owner", "page", "paid", "parent", "park", "part",
    "participant", "party", "pass", "passenger", "pay", "payment", "payroll", "peak", "penalty",
    "pension", "people", "percent", "percentage", "performance", "period", "person", "phone",
    "place", "plan", "plane", "platform", "play", "player", "players", "point", "points",
    "police", "policy", "poll", "pool", "population", "position", "post", "poverty", "power",
    "practice", "precinct", "prediction", "premium", "price", "prices", "primary", "prior",
    "prison", "prize", "product", "profession", "professor", "profile", "profit", "program",
    "project", "property", "proportion", "public", "purchase", "quality", "quantity",
    "quarter", "question", "race", "rain", "rainfall", "rank", "ranking", "rate", "rating",
    "ratio", "reach", "reason", "receipt", "recipient", "record", "region", "registration",
    "release", "remote", "rent", "report", "respondent", "response", "result", "results",
    "retail", "return", "revenue", "review", "reviews", "round", "route", "row", "rule",
    "run", "runs", "salary", "sale", "sales", "sample", "scale", "schedule", "school",
    "science", "score", "scores", "season", "seat", "sector", "security", "seller", "senate",
    "series", "service", "sessions", "severity", "sex", "share", "shares", "shift", "show",
    "signup", "site", "size", "song", "source", "speaker", "speech", "speed", "spending",
    "sport", "staff", "stage", "start", "state", "station", "stats", "status", "stock",
    "stop", "store", "storm", "street", "strike", "student", "study", "subject", "suburb",
    "subscription", "suspension", "tag", "target", "tax", "taxes", "teacher", "team", "teams",
    "tech", "temp", "temperature", "tenure", "term", "test", "theater", "ticket", "time",
    "times", "title", "ton", "total", "totals", "tour", "tournament", "town", "track",
    "trade", "traffic", "train", "training", "transaction", "transfer", "transit", "travel",
    "trend", "trip", "turnout", "type", "unemployment", "union", "unit", "units", "user",
    "users", "value", "values", "vehicle", "vendor", "venue", "victim", "victory", "video",
    "view", "views", "visit", "visitor", "volume", "vote", "voter", "votes", "wage", "wages",
    "war", "water", "wealth", "weather", "week", "weekly", "weight", "win", "wind", "wins",
    "winner", "work", "worker", "world", "yard", "yards", "year", "years", "yield", "zip",
    "zone",
    // survey / tech vocabulary (Stack Overflow-style data sets)
    "admin", "app", "browser", "cloud", "compensation", "database", "desktop", "editor",
    "framework", "hobby", "ide", "internet", "mobile", "online", "opensource", "os",
    "satisfaction", "server", "software", "stack", "system", "version", "web", "website",
    // sports vocabulary (538-style data sets)
    "assists", "defense", "era", "fumble", "goalie", "inning", "pitch",
    "playoff", "quarterback", "rebound", "rookie", "rushing", "tackle", "touchdown",
];

/// Common column-name abbreviations and their expansions.
const ABBREVIATIONS: &[(&str, &str)] = &[
    ("avg", "average"),
    ("pct", "percent"),
    ("pctg", "percentage"),
    ("num", "number"),
    ("no", "number"),
    ("cnt", "count"),
    ("qty", "quantity"),
    ("amt", "amount"),
    ("yr", "year"),
    ("yrs", "years"),
    ("mo", "month"),
    ("wk", "week"),
    ("hr", "hour"),
    ("hrs", "hours"),
    ("sec", "second"),
    ("pos", "position"),
    ("loc", "location"),
    ("dept", "department"),
    ("govt", "government"),
    ("pop", "population"),
    ("temp", "temperature"),
    ("max", "maximum"),
    ("min", "minimum"),
    ("med", "median"),
    ("std", "standard"),
    ("dev", "deviation"),
    ("est", "estimate"),
    ("tot", "total"),
    ("sal", "salary"),
    ("emp", "employee"),
    ("mgr", "manager"),
    ("id", "identifier"),
    ("dob", "birth"),
    ("addr", "address"),
    ("st", "state"),
    ("cat", "category"),
    ("desc", "description"),
    ("lang", "language"),
    ("edu", "education"),
    ("exp", "experience"),
    ("resp", "respondent"),
    ("susp", "suspension"),
    ("indef", "indefinite"),
];

fn word_set() -> &'static std::collections::HashSet<&'static str> {
    static SET: OnceLock<std::collections::HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| WORDS.iter().copied().collect())
}

fn abbreviation_map() -> &'static HashMap<&'static str, &'static str> {
    static MAP: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    MAP.get_or_init(|| ABBREVIATIONS.iter().copied().collect())
}

/// Is `word` (lowercase) in the embedded dictionary?
pub fn is_word(word: &str) -> bool {
    word_set().contains(word)
}

/// Expand a known abbreviation (lowercase), if any.
pub fn expand_abbreviation(abbr: &str) -> Option<&'static str> {
    abbreviation_map().get(abbr).copied()
}

/// Number of dictionary words (for sanity checks).
pub fn word_count() -> usize {
    word_set().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_core_vocabulary() {
        for w in ["salary", "total", "games", "category", "year", "count"] {
            assert!(is_word(w), "missing {w}");
        }
        assert!(!is_word("zzxqy"));
        assert!(!is_word("Salary"), "lookup is lowercase-only by contract");
    }

    #[test]
    fn abbreviations_expand() {
        assert_eq!(expand_abbreviation("avg"), Some("average"));
        assert_eq!(expand_abbreviation("pct"), Some("percent"));
        assert_eq!(expand_abbreviation("indef"), Some("indefinite"));
        assert_eq!(expand_abbreviation("nope"), None);
    }

    #[test]
    fn dictionary_has_no_duplicates() {
        assert_eq!(word_count(), WORDS.len(), "duplicate entries in WORDS");
    }

    #[test]
    fn dictionary_is_all_lowercase() {
        for w in WORDS {
            assert_eq!(*w, w.to_lowercase(), "entry {w} must be lowercase");
        }
    }
}
