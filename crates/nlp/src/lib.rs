//! # agg-nlp
//!
//! The natural-language substrate of the AggChecker reproduction. The
//! original system uses Stanford CoreNLP for parsing and WordNet for
//! synonyms; this crate provides from-scratch Rust equivalents of exactly
//! the capabilities the checker needs:
//!
//! * a tokenizer and sentence splitter ([`mod@tokenize`], [`sentence`]),
//! * numeral recognition — digit strings, number words, magnitudes,
//!   percentages ([`numbers`]),
//! * the Porter stemming algorithm ([`mod@stem`]),
//! * a synonym dictionary standing in for WordNet ([`synonyms`]),
//! * identifier decomposition: splitting concatenated column names like
//!   `totalsalary` into dictionary words ([`dictionary`], [`wordbreak`]),
//! * a clause-structured *pseudo-dependency tree* providing the
//!   `TreeDistance` measure of Algorithm 2 ([`deptree`]),
//! * a hierarchical document model with an HTML-subset parser
//!   ([`structure`]), and
//! * claim-detection heuristics over numbers in text ([`claims`]).
//!
//! Substitutions relative to the paper are documented in `DESIGN.md` §2.

pub mod claims;
pub mod deptree;
pub mod dictionary;
pub mod numbers;
pub mod rounding;
pub mod sentence;
pub mod stem;
pub mod structure;
pub mod synonyms;
pub mod tokenize;
pub mod wordbreak;

pub use claims::{detect_claims, ClaimDetectorConfig, ClaimMention};
pub use deptree::DependencyTree;
pub use numbers::{parse_number_mentions, NumberMention};
pub use rounding::{matches_claim, matches_value, round_decimals, round_significant};
pub use sentence::split_sentences;
pub use stem::stem;
pub use structure::{parse_document, Document, Paragraph, Section, SectionPath, Sentence};
pub use synonyms::SynonymDict;
pub use tokenize::{tokenize, Token, TokenKind};
pub use wordbreak::decompose_identifier;
