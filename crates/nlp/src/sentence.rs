//! Sentence splitting.
//!
//! A rule-based splitter: sentences end at `.`, `!`, `?` followed by
//! whitespace and an uppercase letter / digit / end of text, except after
//! known abbreviations, initials, and decimal numbers.

/// Common abbreviations that do not terminate a sentence.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc", "e.g", "i.e", "fig", "no",
    "dept", "est", "inc", "ltd", "co", "corp", "u.s", "u.k", "jan", "feb", "mar", "apr", "jun",
    "jul", "aug", "sep", "sept", "oct", "nov", "dec", "approx", "avg", "min", "max",
];

/// Split `text` into sentence substrings (trimmed, in order). Offsets are
/// not preserved here; callers needing spans tokenize per sentence.
pub fn split_sentences(text: &str) -> Vec<String> {
    let mut sentences = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut start = 0usize; // index into chars
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '!' || c == '?' {
            let end = i + 1;
            push_sentence(&mut sentences, &chars[start..end]);
            start = end;
            i = end;
            continue;
        }
        if c == '.' {
            // Decimal number: digit '.' digit — not a boundary.
            let prev_digit = i > 0 && chars[i - 1].is_ascii_digit();
            let next_digit = chars.get(i + 1).is_some_and(|c| c.is_ascii_digit());
            if prev_digit && next_digit {
                i += 1;
                continue;
            }
            // Abbreviation or initial before the period?
            let word_before: String = chars[start..i]
                .iter()
                .rev()
                .take_while(|c| c.is_alphanumeric() || **c == '.')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            let wb = word_before.trim_end_matches('.').to_lowercase();
            let is_abbrev = ABBREVIATIONS.contains(&wb.as_str())
                || (wb.len() == 1 && word_before.chars().next().is_some_and(char::is_alphabetic));
            if is_abbrev {
                i += 1;
                continue;
            }
            // Sentence boundary only if followed by whitespace + capital /
            // digit / quote, or end of text.
            let mut j = i + 1;
            // Consume closing quotes/parens directly after the period.
            while j < chars.len() && matches!(chars[j], '"' | '\'' | ')' | '”' | '’') {
                j += 1;
            }
            let followed_by_space = j >= chars.len() || chars[j].is_whitespace();
            if followed_by_space {
                let mut k = j;
                while k < chars.len() && chars[k].is_whitespace() {
                    k += 1;
                }
                let next_starts_sentence = k >= chars.len()
                    || chars[k].is_uppercase()
                    || chars[k].is_ascii_digit()
                    || matches!(chars[k], '"' | '\'' | '(' | '“' | '‘');
                if next_starts_sentence {
                    push_sentence(&mut sentences, &chars[start..j]);
                    start = j;
                    i = j;
                    continue;
                }
            }
        }
        i += 1;
    }
    if start < chars.len() {
        push_sentence(&mut sentences, &chars[start..]);
    }
    sentences
}

fn push_sentence(out: &mut Vec<String>, chars: &[char]) {
    let s: String = chars.iter().collect();
    let s = s.trim();
    if !s.is_empty() {
        out.push(s.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_basic_sentences() {
        let s = split_sentences("One is here. Two is there! Is three here?");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], "One is here.");
        assert_eq!(s[2], "Is three here?");
    }

    #[test]
    fn keeps_decimals_together() {
        let s = split_sentences("The rate was 3.5 percent. It fell later.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("3.5"));
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split_sentences("Dr. Smith agreed. Mr. Jones did not.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], "Dr. Smith agreed.");
    }

    #[test]
    fn initials_do_not_split() {
        let s = split_sentences("J. R. Smith scored 30 points. The team lost.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn single_sentence_without_terminator() {
        let s = split_sentences("no terminal punctuation here");
        assert_eq!(s, vec!["no terminal punctuation here"]);
    }

    #[test]
    fn sentence_ending_with_quote() {
        let s = split_sentences("He said \"four.\" Then he left.");
        assert_eq!(s.len(), 2);
        assert!(s[0].ends_with('"'));
    }

    #[test]
    fn lowercase_continuation_does_not_split() {
        // "u.s. economy" style: period followed by lowercase is not a break.
        let s = split_sentences("Spending grew in the U.S. economy. It slowed.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("economy"));
    }

    #[test]
    fn number_after_period_starts_sentence() {
        let s = split_sentences("It ended. 41 percent agreed.");
        assert_eq!(s.len(), 2);
        assert!(s[1].starts_with("41"));
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   ").is_empty());
    }
}
