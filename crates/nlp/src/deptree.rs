//! Pseudo-dependency trees and the `TreeDistance` measure.
//!
//! Algorithm 2 of the paper weights the keywords of a claim sentence by
//! `1 / TreeDistance(word, claim)` over a dependency parse tree. Running a
//! full statistical parser is out of scope for this reproduction (see
//! DESIGN.md §2); instead a sentence is segmented into a three-level
//! hierarchy — sentence → clauses → phrases → tokens — and tree distance is
//! measured over that hierarchy:
//!
//! * tokens in the same **phrase** as the claim value: distance 1,
//! * tokens in the same **clause** but another phrase: distance 2,
//! * tokens elsewhere in the **sentence**: distance 3.
//!
//! This preserves the property Algorithm 2 exploits: in *"three were for
//! repeated substance abuse, one was for gambling"*, the word "gambling" is
//! nearer to "one" (same clause) than to "three" (other clause).

use crate::tokenize::{Token, TokenKind};

/// Words that open a new clause.
const CLAUSE_BREAKERS: &[&str] = &[
    "and", "but", "or", "nor", "while", "whereas", "which", "who", "whom", "that", "where", "when",
    "although", "though", "because", "since", "if", "unless", "so", "yet",
];

/// Prepositions that open a new phrase inside a clause.
const PHRASE_BREAKERS: &[&str] = &[
    "of", "in", "on", "at", "for", "with", "by", "from", "to", "as", "per", "among", "between",
    "during", "over", "under", "about", "across", "within", "through", "against",
];

/// Punctuation that separates clauses.
const CLAUSE_PUNCT: &[&str] = &[",", ";", ":", "(", ")", "—", "–", "\"", "“", "”"];

/// A shallow parse of one sentence.
#[derive(Debug, Clone)]
pub struct DependencyTree {
    /// Per token: (clause index, phrase index). Phrase indices are global
    /// (not per clause), so equal phrase ⇒ equal clause.
    assignment: Vec<(u32, u32)>,
}

impl DependencyTree {
    /// Build the tree for a tokenized sentence.
    pub fn build(tokens: &[Token]) -> DependencyTree {
        let mut assignment = Vec::with_capacity(tokens.len());
        let mut clause: u32 = 0;
        let mut phrase: u32 = 0;
        let mut tokens_in_clause = 0usize;
        for t in tokens {
            match t.kind {
                TokenKind::Punct => {
                    if CLAUSE_PUNCT.contains(&t.text.as_str()) && tokens_in_clause > 0 {
                        clause += 1;
                        phrase += 1;
                        tokens_in_clause = 0;
                    }
                    // Punctuation belongs to the current position but is
                    // never a keyword; assign it anyway for completeness.
                    assignment.push((clause, phrase));
                }
                TokenKind::Word => {
                    let lower = t.lower();
                    if CLAUSE_BREAKERS.contains(&lower.as_str()) && tokens_in_clause > 0 {
                        clause += 1;
                        phrase += 1;
                        tokens_in_clause = 0;
                    } else if PHRASE_BREAKERS.contains(&lower.as_str()) && tokens_in_clause > 0 {
                        phrase += 1;
                    }
                    assignment.push((clause, phrase));
                    tokens_in_clause += 1;
                }
                _ => {
                    assignment.push((clause, phrase));
                    tokens_in_clause += 1;
                }
            }
        }
        DependencyTree { assignment }
    }

    /// Tree distance between two token positions (see module docs).
    /// Distance 0 means the same token.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        let (ca, pa) = self.assignment[a];
        let (cb, pb) = self.assignment[b];
        if pa == pb {
            1
        } else if ca == cb {
            2
        } else {
            3
        }
    }

    /// The clause index of a token (for tests and diagnostics).
    pub fn clause_of(&self, token: usize) -> u32 {
        self.assignment[token].0
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn tree(text: &str) -> (Vec<Token>, DependencyTree) {
        let toks = tokenize(text);
        let tree = DependencyTree::build(&toks);
        (toks, tree)
    }

    fn idx(tokens: &[Token], word: &str) -> usize {
        tokens
            .iter()
            .position(|t| t.text.eq_ignore_ascii_case(word))
            .unwrap_or_else(|| panic!("token {word} not found"))
    }

    #[test]
    fn paper_example_orders_distances_correctly() {
        // Example 3: "gambling" must be closer to "one" than to "three".
        let (toks, t) = tree("three were for repeated substance abuse, one was for gambling");
        let three = idx(&toks, "three");
        let one = idx(&toks, "one");
        let gambling = idx(&toks, "gambling");
        assert!(
            t.distance(one, gambling) < t.distance(three, gambling),
            "one→gambling {} vs three→gambling {}",
            t.distance(one, gambling),
            t.distance(three, gambling)
        );
    }

    #[test]
    fn same_phrase_is_distance_one() {
        let (toks, t) = tree("four previous lifetime bans");
        assert_eq!(t.distance(idx(&toks, "four"), idx(&toks, "bans")), 1);
    }

    #[test]
    fn prepositions_open_phrases() {
        let (toks, t) = tree("the average salary of developers");
        let salary = idx(&toks, "salary");
        let developers = idx(&toks, "developers");
        assert_eq!(t.distance(salary, developers), 2, "same clause, new phrase");
        assert_eq!(t.clause_of(salary), t.clause_of(developers));
    }

    #[test]
    fn commas_open_clauses() {
        let (toks, t) = tree("three for abuse, one for gambling");
        assert_ne!(
            t.clause_of(idx(&toks, "three")),
            t.clause_of(idx(&toks, "one"))
        );
        assert_eq!(t.distance(idx(&toks, "three"), idx(&toks, "gambling")), 3);
    }

    #[test]
    fn conjunctions_open_clauses() {
        let (toks, t) = tree("five wins and two losses");
        assert_ne!(
            t.clause_of(idx(&toks, "wins")),
            t.clause_of(idx(&toks, "losses"))
        );
    }

    #[test]
    fn leading_breaker_does_not_create_empty_clause() {
        // A sentence starting with "While..." must not start at clause 1.
        let (toks, t) = tree("While many agreed, few objected");
        assert_eq!(t.clause_of(idx(&toks, "While")), 0);
        assert_eq!(t.clause_of(idx(&toks, "many")), 0);
        assert_ne!(t.clause_of(idx(&toks, "few")), 0);
    }

    #[test]
    fn distance_is_zero_for_same_token_and_symmetric() {
        let (toks, t) = tree("four bans for gambling");
        let a = idx(&toks, "four");
        let b = idx(&toks, "gambling");
        assert_eq!(t.distance(a, a), 0);
        assert_eq!(t.distance(a, b), t.distance(b, a));
    }

    #[test]
    fn empty_sentence() {
        let t = DependencyTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
