//! Tokenization.
//!
//! Splits text into words, numbers, and punctuation. Numeric tokens keep
//! enough surface detail (thousands separators, decimal digits, leading
//! currency, trailing `%`) for the numeral recognizer to derive values and
//! significant digits.

use serde::{Deserialize, Serialize};

/// Kind of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Alphabetic word (may contain internal apostrophes or hyphens:
    /// `don't`, `twenty-one`).
    Word,
    /// Digit-based number: `42`, `1,234.5`, `3.14`.
    Number,
    /// Digit-based number immediately followed by a percent sign: `13%`.
    Percent,
    /// Currency-prefixed number: `$1,200`.
    Currency,
    /// Ordinal like `1st`, `22nd`.
    Ordinal,
    /// Anything else: punctuation, symbols (one token per char).
    Punct,
}

/// One token with its surface text and source span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    pub text: String,
    pub kind: TokenKind,
    /// Byte offset range in the source text.
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// Lower-cased text (words are matched case-insensitively everywhere).
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// Is this token any of the numeric kinds?
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Number | TokenKind::Percent | TokenKind::Currency
        )
    }
}

/// Tokenize `text`.
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = text[i..].chars().next().unwrap();
        if c.is_whitespace() {
            i += c.len_utf8();
            continue;
        }
        if c.is_alphabetic() {
            let start = i;
            let mut end = i;
            let mut prev_alpha = false;
            for ch in text[i..].chars() {
                let ok =
                    ch.is_alphanumeric() || ((ch == '\'' || ch == '-' || ch == '’') && prev_alpha);
                if !ok {
                    break;
                }
                prev_alpha = ch.is_alphanumeric();
                end += ch.len_utf8();
            }
            // Trim a trailing hyphen/apostrophe (e.g. "word-" at line wrap).
            let mut slice = &text[start..end];
            while slice.ends_with(['-', '\'', '’']) {
                slice = &slice[..slice.len() - slice.chars().last().unwrap().len_utf8()];
            }
            let end = start + slice.len();
            tokens.push(Token {
                text: slice.to_string(),
                kind: TokenKind::Word,
                start,
                end,
            });
            i = end.max(start + c.len_utf8());
            continue;
        }
        if c.is_ascii_digit() || (c == '$' && next_is_digit(text, i + 1)) {
            let start = i;
            let currency = c == '$';
            let mut j = if currency { i + 1 } else { i };
            // Digits with embedded commas/periods (not trailing ones).
            while j < bytes.len() {
                let cj = bytes[j];
                if cj.is_ascii_digit() || ((cj == b',' || cj == b'.') && next_is_digit(text, j + 1))
                {
                    j += 1;
                } else {
                    break;
                }
            }
            // Ordinal suffix: 1st, 2nd, 3rd, 4th...
            let rest = &text[j..];
            let lower_rest = rest.get(..2).map(|s| s.to_ascii_lowercase());
            let is_ordinal = !currency
                && matches!(lower_rest.as_deref(), Some("st" | "nd" | "rd" | "th"))
                && !rest
                    .chars()
                    .nth(2)
                    .map(char::is_alphanumeric)
                    .unwrap_or(false);
            if is_ordinal {
                let end = j + 2;
                tokens.push(Token {
                    text: text[start..end].to_string(),
                    kind: TokenKind::Ordinal,
                    start,
                    end,
                });
                i = end;
                continue;
            }
            // Percent sign (optionally after a space is NOT merged; only
            // the immediately adjacent sign is).
            let (kind, end) = if rest.starts_with('%') {
                (TokenKind::Percent, j + 1)
            } else if currency {
                (TokenKind::Currency, j)
            } else {
                (TokenKind::Number, j)
            };
            tokens.push(Token {
                text: text[start..end].to_string(),
                kind,
                start,
                end,
            });
            i = end;
            continue;
        }
        // Single punctuation character.
        let end = i + c.len_utf8();
        tokens.push(Token {
            text: text[i..end].to_string(),
            kind: TokenKind::Punct,
            start: i,
            end,
        });
        i = end;
    }
    tokens
}

fn next_is_digit(text: &str, i: usize) -> bool {
    text.as_bytes().get(i).is_some_and(u8::is_ascii_digit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(String, TokenKind)> {
        tokenize(text)
            .into_iter()
            .map(|t| (t.text, t.kind))
            .collect()
    }

    #[test]
    fn words_numbers_punctuation() {
        let ks = kinds("There were 4 bans.");
        assert_eq!(
            ks,
            vec![
                ("There".into(), TokenKind::Word),
                ("were".into(), TokenKind::Word),
                ("4".into(), TokenKind::Number),
                ("bans".into(), TokenKind::Word),
                (".".into(), TokenKind::Punct),
            ]
        );
    }

    #[test]
    fn numbers_with_separators() {
        let ks = kinds("1,234 and 3.5 and 1,234.56");
        assert_eq!(ks[0], ("1,234".into(), TokenKind::Number));
        assert_eq!(ks[2], ("3.5".into(), TokenKind::Number));
        assert_eq!(ks[4], ("1,234.56".into(), TokenKind::Number));
    }

    #[test]
    fn percent_and_currency() {
        let ks = kinds("13% of $1,200");
        assert_eq!(ks[0], ("13%".into(), TokenKind::Percent));
        assert_eq!(ks[2], ("$1,200".into(), TokenKind::Currency));
    }

    #[test]
    fn ordinals() {
        let ks = kinds("the 1st and 22nd and 3rd and 44th");
        assert_eq!(ks[1], ("1st".into(), TokenKind::Ordinal));
        assert_eq!(ks[3], ("22nd".into(), TokenKind::Ordinal));
        assert_eq!(ks[5], ("3rd".into(), TokenKind::Ordinal));
        assert_eq!(ks[7], ("44th".into(), TokenKind::Ordinal));
    }

    #[test]
    fn hyphenated_and_apostrophe_words() {
        let ks = kinds("twenty-one self-taught don't");
        assert_eq!(ks[0].0, "twenty-one");
        assert_eq!(ks[1].0, "self-taught");
        assert_eq!(ks[2].0, "don't");
    }

    #[test]
    fn trailing_hyphen_is_trimmed() {
        let ks = kinds("word- next");
        assert_eq!(ks[0].0, "word");
    }

    #[test]
    fn trailing_period_is_not_part_of_number() {
        let ks = kinds("It was 42.");
        assert_eq!(ks[2], ("42".into(), TokenKind::Number));
        assert_eq!(ks[3], (".".into(), TokenKind::Punct));
    }

    #[test]
    fn spans_are_byte_accurate() {
        let text = "a 12% b";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn unicode_text_does_not_panic() {
        let toks = tokenize("café — 42 % naïve’s");
        assert!(toks.iter().any(|t| t.text == "café"));
        // "42 %" with a space: the sign is separate punctuation.
        assert!(toks
            .iter()
            .any(|t| t.text == "42" && t.kind == TokenKind::Number));
    }

    #[test]
    fn empty_and_whitespace_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }
}
