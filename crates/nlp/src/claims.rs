//! Claim detection.
//!
//! §3 of the paper: *"We identify potentially check-worthy text passages via
//! simple heuristics and rely on user feedback to prune spurious matches."*
//! A claim candidate is a number mention in a body sentence that plausibly
//! states an aggregate query result. The heuristics here prune the mentions
//! that experience shows are almost never claimed results: calendar years,
//! ordinals, and numbers inside headlines.

use crate::numbers::{parse_number_mentions, NumberMention};
use crate::structure::{Document, SectionPath};
use serde::{Deserialize, Serialize};

/// Configuration for the claim detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClaimDetectorConfig {
    /// Skip 4-digit integers in `[year_min, year_max]` unless marked as
    /// percentages (years are almost never claimed aggregates).
    pub skip_years: bool,
    pub year_min: f64,
    pub year_max: f64,
    /// Skip number words "one"/"zero" when used as pronouns is impossible to
    /// decide locally; keeping them matches the paper's running example
    /// ("one was for gambling"), so the default is `false`.
    pub skip_small_spelled: bool,
}

impl Default for ClaimDetectorConfig {
    fn default() -> Self {
        Self {
            skip_years: true,
            year_min: 1200.0,
            year_max: 2100.0,
            skip_small_spelled: false,
        }
    }
}

/// A detected claim: a number mention plus its location in the document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClaimMention {
    /// Section containing the claim (path from the document root).
    pub section: SectionPath,
    /// Paragraph index within that section.
    pub paragraph: usize,
    /// Sentence index within that paragraph.
    pub sentence: usize,
    /// The number mention inside that sentence.
    pub number: NumberMention,
    /// Stable claim id (document order).
    pub id: usize,
}

/// Detect claims in a parsed document.
pub fn detect_claims(doc: &Document, config: &ClaimDetectorConfig) -> Vec<ClaimMention> {
    let mut claims = Vec::new();
    doc.for_each_paragraph(|path, para_idx, paragraph| {
        for (si, sentence) in paragraph.sentences.iter().enumerate() {
            for mention in parse_number_mentions(&sentence.tokens) {
                if should_skip(&mention, config) {
                    continue;
                }
                claims.push(ClaimMention {
                    section: path.clone(),
                    paragraph: para_idx,
                    sentence: si,
                    number: mention,
                    id: 0, // assigned below
                });
            }
        }
    });
    for (i, c) in claims.iter_mut().enumerate() {
        c.id = i;
    }
    claims
}

fn should_skip(mention: &NumberMention, config: &ClaimDetectorConfig) -> bool {
    if config.skip_years
        && !mention.is_percentage
        && !mention.spelled_out
        && mention.decimal_places == 0
        && mention.value >= config.year_min
        && mention.value <= config.year_max
        && mention.value.fract() == 0.0
        && !mention.had_separator
        && mention.value >= 1000.0
    {
        return true;
    }
    if config.skip_small_spelled && mention.spelled_out && mention.value <= 1.0 {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::parse_document;

    const ARTICLE: &str = r#"
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
<p>The gambling ban dates from 1983. About 66% involved repeat offenses.</p>
"#;

    #[test]
    fn finds_spelled_and_digit_claims() {
        let doc = parse_document(ARTICLE);
        let claims = detect_claims(&doc, &ClaimDetectorConfig::default());
        let values: Vec<f64> = claims.iter().map(|c| c.number.value).collect();
        assert_eq!(values, vec![4.0, 3.0, 1.0, 66.0], "{claims:?}");
    }

    #[test]
    fn years_are_skipped_by_default() {
        let doc = parse_document(ARTICLE);
        let claims = detect_claims(&doc, &ClaimDetectorConfig::default());
        assert!(claims.iter().all(|c| c.number.value != 1983.0));
    }

    #[test]
    fn years_kept_when_configured() {
        let doc = parse_document(ARTICLE);
        let cfg = ClaimDetectorConfig {
            skip_years: false,
            ..Default::default()
        };
        let claims = detect_claims(&doc, &cfg);
        assert!(claims.iter().any(|c| c.number.value == 1983.0));
    }

    #[test]
    fn claim_ids_follow_document_order() {
        let doc = parse_document(ARTICLE);
        let claims = detect_claims(&doc, &ClaimDetectorConfig::default());
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn multiple_claims_in_one_sentence_keep_positions() {
        let doc = parse_document(ARTICLE);
        let claims = detect_claims(&doc, &ClaimDetectorConfig::default());
        // "Three ... one ..." share a sentence.
        let three = claims.iter().find(|c| c.number.value == 3.0).unwrap();
        let one = claims.iter().find(|c| c.number.value == 1.0).unwrap();
        assert_eq!(three.sentence, one.sentence);
        assert_eq!(three.paragraph, one.paragraph);
        assert!(three.number.token_start < one.number.token_start);
    }

    #[test]
    fn headline_numbers_are_not_claims() {
        let doc = parse_document("<h1>Top 10 teams</h1><p>Two of them won 5 games.</p>");
        let claims = detect_claims(&doc, &ClaimDetectorConfig::default());
        let values: Vec<f64> = claims.iter().map(|c| c.number.value).collect();
        assert_eq!(values, vec![2.0, 5.0], "headline '10' must be excluded");
    }

    #[test]
    fn percentages_in_year_range_are_kept() {
        let doc = parse_document("<p>Turnout was 2014% higher, a typo we still flag.</p>");
        let claims = detect_claims(&doc, &ClaimDetectorConfig::default());
        assert_eq!(claims.len(), 1);
        assert!(claims[0].number.is_percentage);
    }

    #[test]
    fn small_spelled_numbers_can_be_skipped() {
        let doc = parse_document("<p>One of the three teams won.</p>");
        let cfg = ClaimDetectorConfig {
            skip_small_spelled: true,
            ..Default::default()
        };
        let claims = detect_claims(&doc, &cfg);
        let values: Vec<f64> = claims.iter().map(|c| c.number.value).collect();
        assert_eq!(values, vec![3.0]);
    }
}
