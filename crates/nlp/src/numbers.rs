//! Numeral recognition: mapping tokens to claimed numeric values.
//!
//! Claims state results either in digits (`42`, `1,234.5`, `13%`) or in
//! words (`four`, `twenty-one`, `1.2 million`). This module finds every
//! *number mention* in a token stream and records, besides the value, how
//! precisely it was stated — the number of significant digits drives the
//! rounding-aware comparison of Definition 1 in the paper.

use crate::tokenize::{Token, TokenKind};
use serde::{Deserialize, Serialize};

/// A number mentioned in text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumberMention {
    /// Parsed value. Percentages keep their surface scale (`13%` → 13.0).
    pub value: f64,
    /// Index of the first token of the mention.
    pub token_start: usize,
    /// Index one past the last token of the mention.
    pub token_end: usize,
    /// Significant digits of the stated value (for rounding-aware matching).
    pub significant_digits: u32,
    /// Number of decimal places stated (0 for integers and number words).
    pub decimal_places: u32,
    /// Was the value stated with a percent sign / the word "percent"?
    pub is_percentage: bool,
    /// Was the value spelled out in words ("four") rather than digits?
    pub spelled_out: bool,
    /// Did the surface form contain a thousands separator ("1,234")?
    /// Years never do — the claim detector uses this to tell a 4-digit
    /// count from a calendar year.
    pub had_separator: bool,
}

/// Number words up to twenty plus tens; combined forms ("twenty-one",
/// "twenty one") are handled by the parser.
fn small_number_word(w: &str) -> Option<f64> {
    Some(match w {
        "zero" => 0.0,
        "one" => 1.0,
        "two" => 2.0,
        "three" => 3.0,
        "four" => 4.0,
        "five" => 5.0,
        "six" => 6.0,
        "seven" => 7.0,
        "eight" => 8.0,
        "nine" => 9.0,
        "ten" => 10.0,
        "eleven" => 11.0,
        "twelve" => 12.0,
        "thirteen" => 13.0,
        "fourteen" => 14.0,
        "fifteen" => 15.0,
        "sixteen" => 16.0,
        "seventeen" => 17.0,
        "eighteen" => 18.0,
        "nineteen" => 19.0,
        _ => return None,
    })
}

fn tens_word(w: &str) -> Option<f64> {
    Some(match w {
        "twenty" => 20.0,
        "thirty" => 30.0,
        "forty" => 40.0,
        "fifty" => 50.0,
        "sixty" => 60.0,
        "seventy" => 70.0,
        "eighty" => 80.0,
        "ninety" => 90.0,
        _ => return None,
    })
}

fn magnitude_word(w: &str) -> Option<f64> {
    Some(match w {
        "hundred" => 1e2,
        "thousand" => 1e3,
        "million" => 1e6,
        "billion" => 1e9,
        "trillion" => 1e12,
        _ => return None,
    })
}

/// Parse the digits of a numeric token (stripping `$`, `,`, `%`).
fn parse_digit_token(text: &str) -> Option<(f64, u32, u32)> {
    let cleaned: String = text
        .chars()
        .filter(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    let value: f64 = cleaned.parse().ok()?;
    let digits: Vec<char> = cleaned.chars().filter(char::is_ascii_digit).collect();
    // Significant digits: strip leading zeros ("0.050" → "50"); for
    // integer forms also strip trailing zeros — "4,300,000" states two
    // significant digits, not seven.
    let mut stripped: Vec<char> = digits.iter().copied().skip_while(|c| *c == '0').collect();
    if !cleaned.contains('.') {
        while stripped.last() == Some(&'0') {
            stripped.pop();
        }
    }
    let significant = if stripped.is_empty() {
        1
    } else {
        stripped.len() as u32
    };
    let decimal_places = cleaned
        .split_once('.')
        .map(|(_, f)| f.len() as u32)
        .unwrap_or(0);
    Some((value, significant, decimal_places))
}

/// Find every number mention in a token stream.
pub fn parse_number_mentions(tokens: &[Token]) -> Vec<NumberMention> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Number | TokenKind::Percent | TokenKind::Currency => {
                if let Some((mut value, mut sig, dp)) = parse_digit_token(&t.text) {
                    let mut end = i + 1;
                    let mut is_pct = t.kind == TokenKind::Percent;
                    // "3.5 million" — magnitude word follows.
                    if let Some(next) = tokens.get(end) {
                        if next.kind == TokenKind::Word {
                            if let Some(mag) = magnitude_word(&next.lower()) {
                                value *= mag;
                                end += 1;
                            }
                        }
                    }
                    // "13 percent" — percent word follows.
                    if let Some(next) = tokens.get(end) {
                        if next.kind == TokenKind::Word
                            && matches!(next.lower().as_str(), "percent" | "percentage")
                        {
                            is_pct = true;
                            end += 1;
                        }
                    }
                    if sig == 0 {
                        sig = 1;
                    }
                    out.push(NumberMention {
                        value,
                        token_start: i,
                        token_end: end,
                        significant_digits: sig,
                        decimal_places: dp,
                        is_percentage: is_pct,
                        spelled_out: false,
                        had_separator: t.text.contains(','),
                    });
                    i = end;
                    continue;
                }
                i += 1;
            }
            TokenKind::Word => {
                if let Some((value, end, is_pct)) = parse_word_number(tokens, i) {
                    let sig = significant_digits_of(value);
                    out.push(NumberMention {
                        value,
                        token_start: i,
                        token_end: end,
                        significant_digits: sig,
                        decimal_places: 0,
                        is_percentage: is_pct,
                        spelled_out: true,
                        had_separator: false,
                    });
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Parse a number word sequence starting at `i`. Returns
/// `(value, end index, is_percentage)`.
fn parse_word_number(tokens: &[Token], i: usize) -> Option<(f64, usize, bool)> {
    let first = tokens[i].lower();
    // Hyphenated compound inside one token: "twenty-one".
    if let Some((tens_part, unit_part)) = first.split_once('-') {
        if let (Some(t), Some(u)) = (tens_word(tens_part), small_number_word(unit_part)) {
            let (value, end) = apply_magnitudes(tokens, i + 1, t + u);
            let (end, pct) = consume_percent_word(tokens, end);
            return Some((value, end, pct));
        }
    }
    let base = if let Some(v) = small_number_word(&first) {
        v
    } else if let Some(t) = tens_word(&first) {
        // "twenty one" as two tokens.
        if let Some(next) = tokens.get(i + 1) {
            if next.kind == TokenKind::Word {
                if let Some(u) = small_number_word(&next.lower()) {
                    let (value, end) = apply_magnitudes(tokens, i + 2, t + u);
                    let (end, pct) = consume_percent_word(tokens, end);
                    return Some((value, end, pct));
                }
            }
        }
        t
    } else if first == "a" || first == "an" {
        // "a hundred", "a million" — only with an explicit magnitude.
        let next = tokens.get(i + 1)?;
        let mag = magnitude_word(&next.lower())?;
        let (value, end) = apply_magnitudes(tokens, i + 2, mag);
        let (end, pct) = consume_percent_word(tokens, end);
        return Some((value, end, pct));
    } else {
        return None;
    };
    let (value, end) = apply_magnitudes(tokens, i + 1, base);
    let (end, pct) = consume_percent_word(tokens, end);
    Some((value, end, pct))
}

/// Multiply by any magnitude words that follow: "four hundred", "two
/// hundred thousand".
fn apply_magnitudes(tokens: &[Token], mut i: usize, mut value: f64) -> (f64, usize) {
    while let Some(t) = tokens.get(i) {
        if t.kind != TokenKind::Word {
            break;
        }
        match magnitude_word(&t.lower()) {
            Some(m) => {
                value *= m;
                i += 1;
            }
            None => break,
        }
    }
    (value, i)
}

fn consume_percent_word(tokens: &[Token], i: usize) -> (usize, bool) {
    if let Some(t) = tokens.get(i) {
        if t.kind == TokenKind::Word && matches!(t.lower().as_str(), "percent" | "percentage") {
            return (i + 1, true);
        }
    }
    (i, false)
}

/// Significant digits of an exactly-stated value (used for spelled-out
/// numbers: "four" has 1 significant digit, "twenty-one" has 2).
fn significant_digits_of(value: f64) -> u32 {
    let mut v = value.abs();
    if v == 0.0 {
        return 1;
    }
    // Strip trailing zero factors of ten ("four hundred" → 1 sig digit).
    while v >= 10.0 && (v / 10.0).fract() == 0.0 {
        v /= 10.0;
    }
    let mut digits = 0;
    let mut iv = v as u64;
    if v.fract() != 0.0 {
        return format!("{v}").chars().filter(char::is_ascii_digit).count() as u32;
    }
    while iv > 0 {
        digits += 1;
        iv /= 10;
    }
    digits.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn mentions(text: &str) -> Vec<NumberMention> {
        parse_number_mentions(&tokenize(text))
    }

    #[test]
    fn digit_numbers() {
        let m = mentions("There were 4 bans and 1,234 players.");
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].value, 4.0);
        assert_eq!(m[0].significant_digits, 1);
        assert_eq!(m[1].value, 1234.0);
        assert_eq!(m[1].significant_digits, 4);
    }

    #[test]
    fn decimal_significant_digits() {
        let m = mentions("growth of 3.50 and 0.05");
        assert_eq!(m[0].value, 3.5);
        assert_eq!(m[0].significant_digits, 3);
        assert_eq!(m[0].decimal_places, 2);
        assert_eq!(m[1].value, 0.05);
        assert_eq!(m[1].significant_digits, 1);
    }

    #[test]
    fn percent_forms() {
        let m = mentions("13% here, 14 percent there");
        assert_eq!(m.len(), 2);
        assert!(m[0].is_percentage);
        assert_eq!(m[0].value, 13.0);
        assert!(m[1].is_percentage);
        assert_eq!(m[1].value, 14.0);
    }

    #[test]
    fn number_words() {
        let m = mentions("four bans, three for abuse, one for gambling");
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].value, 4.0);
        assert!(m[0].spelled_out);
        assert_eq!(m[1].value, 3.0);
        assert_eq!(m[2].value, 1.0);
    }

    #[test]
    fn compound_number_words() {
        let m = mentions("twenty-one today and twenty one tomorrow and ninety");
        assert_eq!(m[0].value, 21.0);
        assert_eq!(m[1].value, 21.0);
        assert_eq!(m[2].value, 90.0);
    }

    #[test]
    fn magnitudes() {
        let m = mentions("about 1.2 million users and four hundred cases");
        assert_eq!(m[0].value, 1_200_000.0);
        assert_eq!(m[1].value, 400.0);
        assert_eq!(m[1].significant_digits, 1, "four hundred states 1 digit");
    }

    #[test]
    fn a_hundred_is_recognized() {
        let m = mentions("a hundred reasons");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].value, 100.0);
        // bare "a" is not a number
        assert!(mentions("a reason").is_empty());
    }

    #[test]
    fn spelled_percent() {
        let m = mentions("thirteen percent of respondents");
        assert_eq!(m[0].value, 13.0);
        assert!(m[0].is_percentage);
    }

    #[test]
    fn currency() {
        let m = mentions("paid $1,200 each");
        assert_eq!(m[0].value, 1200.0);
        assert!(!m[0].is_percentage);
    }

    #[test]
    fn token_spans_cover_multiword_mentions() {
        let toks = tokenize("about 1.2 million users");
        let m = parse_number_mentions(&toks);
        assert_eq!(m[0].token_start, 1);
        assert_eq!(m[0].token_end, 3); // "1.2" + "million"
    }

    #[test]
    fn ordinals_are_not_number_mentions() {
        assert!(mentions("the 3rd quarter").is_empty());
    }

    #[test]
    fn compound_hundred_thousand() {
        let m = mentions("two hundred thousand votes");
        assert_eq!(m[0].value, 200_000.0);
    }
}
