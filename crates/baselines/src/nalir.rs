//! A NaLIR-style natural-language query translator.
//!
//! NaLIR maps a *single* natural-language question to SQL by aligning the
//! sentence parse tree with a query tree — no document context, no
//! training, no result feedback. The paper found that claim sentences defeat
//! this approach: they are long, contain multiple claims, rarely state the
//! aggregation function, and their parse trees are far from the query
//! trees. This reimplementation reproduces those failure modes:
//!
//! * an **explicit** aggregation marker is required ("how many",
//!   "average", "total", …) — absent in ≈30% of claims;
//! * aggregation columns and predicate values must match the schema
//!   **verbatim** (after stemming) — no synonyms, no context, no
//!   probabilistic matching;
//! * long or multi-clause questions fail outright, mirroring the parse
//!   failures the paper observed.

use agg_nlp::stem::stem;
use agg_nlp::tokenize::{tokenize, Token, TokenKind};
use agg_nlp::wordbreak::decompose_identifier;
use agg_relational::{
    AggColumn, AggFunction, ColumnRef, Database, Predicate, SimpleAggregateQuery, Value,
};

/// Why a translation attempt failed (diagnostics for the experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationFailure {
    /// No explicit aggregation marker in the question.
    NoAggregationMarker,
    /// The aggregate needs a column but none matched verbatim.
    NoAggregationColumn,
    /// The question is too long / multi-clause to parse.
    TooComplex,
}

/// Single-question NL→SQL translator over a fixed database.
pub struct NalirTranslator<'a> {
    db: &'a Database,
    /// Stemmed words of the table names (the relation a count question
    /// must name).
    table_words: Vec<String>,
    /// Per (table, column): stemmed name words.
    column_words: Vec<(ColumnRef, Vec<String>)>,
    /// String-literal index: (column, literal value, stemmed words).
    literals: Vec<(ColumnRef, Value, Vec<String>)>,
}

impl<'a> NalirTranslator<'a> {
    pub fn new(db: &'a Database) -> NalirTranslator<'a> {
        let table_words: Vec<String> = db
            .tables()
            .iter()
            .flat_map(|t| decompose_identifier(t.name()))
            .map(|w| stem(&w))
            .collect();
        let mut column_words = Vec::new();
        let mut literals = Vec::new();
        for col in db.all_columns() {
            let name = db.short_column_name(col);
            let words: Vec<String> = decompose_identifier(name)
                .into_iter()
                .map(|w| stem(&w))
                .collect();
            column_words.push((col, words));
            if let Some(dict) = db.column(col).dictionary() {
                for (_, s) in dict.iter() {
                    let words: Vec<String> = s
                        .split_whitespace()
                        .map(|w| stem(&w.to_lowercase()))
                        .collect();
                    if !words.is_empty() {
                        literals.push((col, Value::Str(s.to_string()), words));
                    }
                }
            }
        }
        NalirTranslator {
            db,
            table_words,
            column_words,
            literals,
        }
    }

    /// Translate one question. `Err` carries the failure mode.
    pub fn translate(&self, question: &str) -> Result<SimpleAggregateQuery, TranslationFailure> {
        let tokens = tokenize(question);
        let words: Vec<String> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Word)
            .map(|t| stem(&t.lower()))
            .collect();
        if words.len() > 22 || clause_breaks(&tokens) > 1 {
            return Err(TranslationFailure::TooComplex);
        }

        let function = explicit_function(&words).ok_or(TranslationFailure::NoAggregationMarker)?;

        // Count-like questions must name the relation being counted
        // ("How many *suspensions* …"); a paraphrased noun ("punishments")
        // finds no parse-tree mapping — one of NaLIR's failure modes the
        // paper highlights.
        if matches!(
            function,
            AggFunction::Count | AggFunction::Percentage | AggFunction::ConditionalProbability
        ) && !self.table_words.iter().any(|w| words.contains(w))
        {
            return Err(TranslationFailure::NoAggregationColumn);
        }

        // Aggregation column (for value aggregates): a schema column whose
        // name appears verbatim.
        let column = if function.requires_numeric_column() || function == AggFunction::CountDistinct
        {
            let found = self
                .column_words
                .iter()
                .find(|(col, cw)| {
                    let numeric_ok =
                        !function.requires_numeric_column() || self.db.column(*col).is_numeric();
                    numeric_ok && cw.iter().any(|w| words.contains(w))
                })
                .map(|(col, _)| *col);
            match found {
                Some(col) => AggColumn::Column(col),
                None => return Err(TranslationFailure::NoAggregationColumn),
            }
        } else {
            AggColumn::Star
        };

        // Predicates: literals whose every word occurs in the question.
        let mut predicates: Vec<Predicate> = Vec::new();
        for (col, value, lit_words) in &self.literals {
            if predicates.len() >= 2 {
                break;
            }
            if predicates.iter().any(|p| p.column == *col) {
                continue;
            }
            if !lit_words.is_empty() && lit_words.iter().all(|w| words.contains(w)) {
                predicates.push(Predicate::new(*col, value.clone()));
            }
        }

        if function == AggFunction::ConditionalProbability && predicates.is_empty() {
            return Err(TranslationFailure::NoAggregationColumn);
        }
        Ok(SimpleAggregateQuery::new(function, column, predicates))
    }
}

/// Count clause separators — NaLIR-style parsers choke on multi-clause
/// sentences.
fn clause_breaks(tokens: &[Token]) -> usize {
    tokens
        .iter()
        .filter(|t| {
            (t.kind == TokenKind::Punct && matches!(t.text.as_str(), "," | ";" | ":"))
                || (t.kind == TokenKind::Word
                    && matches!(
                        t.lower().as_str(),
                        "which" | "while" | "whereas" | "although"
                    ))
        })
        .count()
}

/// Only *explicit* aggregation markers translate — no implicit counts.
fn explicit_function(stemmed_words: &[String]) -> Option<AggFunction> {
    let has = |w: &str| stemmed_words.contains(&stem(w));
    if has("many") || (has("number") && has("how")) {
        return Some(AggFunction::Count);
    }
    if has("distinct") || has("different") || has("unique") {
        return Some(AggFunction::CountDistinct);
    }
    if has("average") || has("mean") {
        return Some(AggFunction::Avg);
    }
    if has("total") || has("sum") || has("combined") {
        return Some(AggFunction::Sum);
    }
    if has("highest") || has("maximum") || has("largest") {
        return Some(AggFunction::Max);
    }
    if has("lowest") || has("minimum") || has("smallest") {
        return Some(AggFunction::Min);
    }
    if has("percent") || has("percentage") || has("share") {
        return Some(AggFunction::Percentage);
    }
    if has("number") {
        return Some(AggFunction::Count);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_relational::Table;

    fn db() -> Database {
        let t = Table::from_columns(
            "suspensions",
            vec![
                (
                    "category",
                    vec!["gambling".into(), "peds".into(), "gambling".into()],
                ),
                ("games", vec![Value::Int(4), Value::Int(8), Value::Int(16)]),
            ],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    #[test]
    fn translates_simple_how_many_question() {
        let d = db();
        let t = NalirTranslator::new(&d);
        let q = t.translate("How many gambling suspensions?").unwrap();
        assert_eq!(q.function, AggFunction::Count);
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].value, Value::Str("gambling".into()));
    }

    #[test]
    fn translates_average_with_column() {
        let d = db();
        let t = NalirTranslator::new(&d);
        let q = t
            .translate("What is the average games for gambling?")
            .unwrap();
        assert_eq!(q.function, AggFunction::Avg);
        assert!(matches!(q.column, AggColumn::Column(_)));
    }

    #[test]
    fn fails_without_explicit_marker() {
        let d = db();
        let t = NalirTranslator::new(&d);
        // "There were four gambling suspensions" has no marker.
        let err = t.translate("There were gambling suspensions").unwrap_err();
        assert_eq!(err, TranslationFailure::NoAggregationMarker);
    }

    #[test]
    fn fails_on_multiclause_sentences() {
        let d = db();
        let t = NalirTranslator::new(&d);
        let err = t
            .translate("How many suspensions, which were for gambling, and others, were upheld?")
            .unwrap_err();
        assert_eq!(err, TranslationFailure::TooComplex);
    }

    #[test]
    fn fails_when_column_is_paraphrased() {
        let d = db();
        let t = NalirTranslator::new(&d);
        // "matches" is a synonym of "games" — NaLIR does not know that.
        let err = t
            .translate("What is the average matches played?")
            .unwrap_err();
        assert_eq!(err, TranslationFailure::NoAggregationColumn);
    }

    #[test]
    fn no_spurious_predicates() {
        let d = db();
        let t = NalirTranslator::new(&d);
        let q = t.translate("How many suspensions in the league?").unwrap();
        assert!(q.predicates.is_empty());
    }
}
