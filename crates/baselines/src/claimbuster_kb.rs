//! ClaimBuster-KB: verify claims by querying a knowledge base with
//! generated questions.
//!
//! The paper substitutes a NaLIR interface over the article's own database
//! for the generic knowledge bases (which lack the required data): claims
//! become questions, questions become SQL, and the claim is verified if
//! *any* translated query's result matches the claimed value.

use crate::nalir::NalirTranslator;
use crate::question_gen::generate_questions;
use agg_nlp::numbers::NumberMention;
use agg_nlp::rounding::matches_claim;
use agg_relational::{execute_query, Database};

/// Outcome of one KB check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KbOutcome {
    /// At least one question translated and a result matched the claim.
    VerifiedCorrect,
    /// At least one question translated; no result matched.
    VerifiedWrong,
    /// No question could be translated into an evaluable query.
    NotTranslated,
}

/// Check one claim: `sentence` is its sentence text, `mention` the parsed
/// claimed number.
pub fn check_with_kb(db: &Database, sentence: &str, mention: &NumberMention) -> KbOutcome {
    let translator = NalirTranslator::new(db);
    let mut translated_any = false;
    for question in generate_questions(sentence, mention.value) {
        let Ok(query) = translator.translate(&question) else {
            continue;
        };
        let Ok(result) = execute_query(db, &query) else {
            continue;
        };
        let Some(value) = result else {
            continue;
        };
        translated_any = true;
        if matches_claim(value, mention) {
            return KbOutcome::VerifiedCorrect;
        }
    }
    if translated_any {
        KbOutcome::VerifiedWrong
    } else {
        KbOutcome::NotTranslated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_nlp::numbers::parse_number_mentions;
    use agg_nlp::tokenize::tokenize;
    use agg_relational::Table;

    fn db() -> Database {
        let t = Table::from_columns(
            "suspensions",
            vec![(
                "category",
                vec![
                    "gambling".into(),
                    "gambling".into(),
                    "peds".into(),
                    "conduct".into(),
                ],
            )],
        )
        .unwrap();
        let mut db = Database::new("nfl");
        db.add_table(t);
        db
    }

    fn mention(text: &str, value: f64) -> NumberMention {
        parse_number_mentions(&tokenize(text))
            .into_iter()
            .find(|m| m.value == value)
            .expect("mention")
    }

    #[test]
    fn verifies_simple_correct_claim() {
        let d = db();
        let sentence = "There were 2 gambling suspensions.";
        let m = mention(sentence, 2.0);
        // Question generation produces "How many gambling suspensions?",
        // which translates and evaluates to 2.
        assert_eq!(check_with_kb(&d, sentence, &m), KbOutcome::VerifiedCorrect);
    }

    #[test]
    fn flags_simple_wrong_claim() {
        let d = db();
        let sentence = "There were 3 gambling suspensions.";
        let m = mention(sentence, 3.0);
        assert_eq!(check_with_kb(&d, sentence, &m), KbOutcome::VerifiedWrong);
    }

    #[test]
    fn question_rewriting_can_rescue_complex_sentences_with_wrong_queries() {
        let d = db();
        // The "How many such suspensions?" rewrite strips the clutter but
        // loses the predicates — the translated query is Count(*) = 4 ≠ 2.
        let sentence =
            "Remarkably, considering the era, whereas discipline was rare, the data shows 2 such suspensions.";
        let m = mention(sentence, 2.0);
        assert_eq!(check_with_kb(&d, sentence, &m), KbOutcome::VerifiedWrong);
    }

    #[test]
    fn markerless_sentences_fail_to_translate() {
        let d = db();
        // The number sits at the end, so no "How many …?" question forms,
        // and no question carries an explicit aggregation marker.
        let sentence = "The final tally in the report came to 2.";
        let m = mention(sentence, 2.0);
        assert_eq!(check_with_kb(&d, sentence, &m), KbOutcome::NotTranslated);
    }
}
