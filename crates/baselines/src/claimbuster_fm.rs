//! ClaimBuster-FM: fact-matching verification.
//!
//! The input claim sentence is matched against the fact repository; the
//! verdict is taken from the most similar statement (`Max`) or from a
//! similarity-weighted majority vote over the top matches (`MV`) — the two
//! aggregation variants compared in Table 5 of the paper.

use crate::fact_repo::FactRepository;

/// Verdict aggregation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmMode {
    /// Truth value of the most similar statement.
    Max,
    /// Similarity-weighted majority vote over the top-k statements.
    MajorityVote,
}

/// Check one claim sentence. Returns `Some(verdict)` where `true` means
/// "claim judged correct", or `None` when nothing in the repository is
/// similar enough to borrow a verdict from.
pub fn check_with_fm(
    repo: &FactRepository,
    sentence: &str,
    mode: FmMode,
    k: usize,
    min_similarity: f32,
) -> Option<bool> {
    let hits = repo.search(sentence, k.max(1));
    let usable: Vec<_> = hits
        .into_iter()
        .filter(|h| h.similarity >= min_similarity)
        .collect();
    if usable.is_empty() {
        return None;
    }
    match mode {
        FmMode::Max => Some(usable[0].truth),
        FmMode::MajorityVote => {
            let mut yes = 0.0f32;
            let mut no = 0.0f32;
            for h in &usable {
                if h.truth {
                    yes += h.similarity;
                } else {
                    no += h.similarity;
                }
            }
            Some(yes >= no)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> FactRepository {
        FactRepository::build(vec![
            ("the unemployment rate fell below five percent".into(), true),
            ("the unemployment rate doubled in a year".into(), false),
            (
                "unemployment among graduates is rising quickly".into(),
                false,
            ),
        ])
    }

    #[test]
    fn max_mode_borrows_top_verdict() {
        let r = repo();
        let v = check_with_fm(
            &r,
            "the unemployment rate fell below five percent",
            FmMode::Max,
            3,
            0.0,
        );
        assert_eq!(v, Some(true));
    }

    #[test]
    fn majority_vote_can_flip_the_top_hit() {
        let r = repo();
        // Two false statements about unemployment outweigh the single true
        // one for a generic query.
        let v = check_with_fm(&r, "unemployment rate rising", FmMode::MajorityVote, 3, 0.0);
        assert_eq!(v, Some(false));
    }

    #[test]
    fn no_match_yields_none() {
        let r = repo();
        let v = check_with_fm(&r, "zebras stripes quagga", FmMode::Max, 3, 0.0);
        assert_eq!(v, None);
        // A similarity floor also filters weak spurious matches.
        let v = check_with_fm(&r, "the rate of zebras", FmMode::Max, 3, 100.0);
        assert_eq!(v, None);
    }
}
