//! Question generation from claim sentences.
//!
//! ClaimBuster-KB transforms statements into questions via the
//! Heilman-Smith overgenerate-and-rank tool; the questions are then sent to
//! a knowledge base or NL interface. This reimplementation applies the same
//! idea with rule templates: the claimed number is replaced by an
//! interrogative, yielding one or more candidate questions per claim.

use agg_nlp::numbers::parse_number_mentions;
use agg_nlp::tokenize::tokenize;

/// Generate candidate questions for a claim sentence. The `claim_value`
/// selects which number mention is questioned when the sentence contains
/// several.
pub fn generate_questions(sentence: &str, claim_value: f64) -> Vec<String> {
    let tokens = tokenize(sentence);
    let mentions = parse_number_mentions(&tokens);
    let Some(mention) = mentions
        .iter()
        .find(|m| (m.value - claim_value).abs() < 1e-9)
        .or_else(|| mentions.first())
    else {
        return Vec::new();
    };
    // Split the sentence around the number mention.
    let start_tok = &tokens[mention.token_start];
    let end_tok = &tokens[mention.token_end - 1];
    let before = sentence[..start_tok.start].trim();
    let after = sentence[end_tok.end..]
        .trim()
        .trim_end_matches(['.', '!', '?'])
        .trim();

    let mut questions = Vec::new();
    // "How many X ...?" — the dominant form for counts.
    if !after.is_empty() {
        questions.push(format!("How many {after}?"));
    }
    // "What is/was ... ?" — keep the leading context as a clause.
    if !before.is_empty() && !after.is_empty() {
        questions.push(format!("What number of {after} {before}?"));
    }
    if !before.is_empty() {
        questions.push(format!("What was the value such that {before}?"));
    }
    // The original sentence is also sent (the paper's setup forwards it).
    questions.push(sentence.trim().to_string());
    questions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_number_with_interrogative() {
        let qs = generate_questions("There were four previous lifetime bans.", 4.0);
        assert!(qs.iter().any(|q| q.starts_with("How many")));
        assert!(qs.iter().any(|q| q.contains("previous lifetime bans")));
        // Original sentence is forwarded too.
        assert!(qs.iter().any(|q| q.contains("four")));
    }

    #[test]
    fn selects_the_right_mention_in_multiclaim_sentences() {
        let qs = generate_questions("Three were for substance abuse, one was for gambling.", 1.0);
        assert!(qs.iter().any(|q| q.contains("was for gambling")), "{qs:?}");
    }

    #[test]
    fn sentences_without_numbers_yield_nothing() {
        assert!(generate_questions("No numbers here.", 1.0).is_empty());
    }
}
