//! A repository of previously fact-checked statements.
//!
//! ClaimBuster-FM matches input text against statements that human fact
//! checkers have already labelled. Such repositories (PolitiFact et al.)
//! cover *popular* claims — political statements, viral statistics — not
//! the long-tail numbers of a one-off data journalism piece. The synthetic
//! repository reproduces exactly that coverage gap.

use agg_ir::{Index, IndexBuilder, Scorer};
use agg_nlp::stem::stem;
use agg_nlp::tokenize::{tokenize, TokenKind};

/// A labelled, searchable statement repository.
pub struct FactRepository {
    index: Index,
    statements: Vec<String>,
    truths: Vec<bool>,
}

/// One retrieved statement.
#[derive(Debug, Clone)]
pub struct RepoHit {
    pub statement: String,
    pub truth: bool,
    pub similarity: f32,
}

impl FactRepository {
    /// Build a repository from `(statement, verdict)` pairs.
    pub fn build(entries: Vec<(String, bool)>) -> FactRepository {
        let mut builder = IndexBuilder::new();
        let mut statements = Vec::with_capacity(entries.len());
        let mut truths = Vec::with_capacity(entries.len());
        for (text, truth) in entries {
            builder.add_document(
                terms_of(&text)
                    .iter()
                    .map(|t| (t.as_str(), 1.0f32))
                    .collect::<Vec<_>>(),
            );
            statements.push(text);
            truths.push(truth);
        }
        FactRepository {
            index: builder.build(),
            statements,
            truths,
        }
    }

    /// The canned "popular claims" repository: political and viral
    /// statements with verified labels, plus a sprinkling of sports and
    /// economy factoids. None of them concern the corpus's data sets —
    /// the coverage gap the paper describes.
    pub fn popular() -> FactRepository {
        let entries = POPULAR_CLAIMS
            .iter()
            .map(|(s, t)| (s.to_string(), *t))
            .collect();
        Self::build(entries)
    }

    /// The popular-claims entries, for callers that merge them with their
    /// own statements before building a combined repository.
    pub fn popular_entries() -> Vec<(String, bool)> {
        POPULAR_CLAIMS
            .iter()
            .map(|(s, t)| (s.to_string(), *t))
            .collect()
    }

    /// Retrieve the `k` most similar statements.
    pub fn search(&self, text: &str, k: usize) -> Vec<RepoHit> {
        let terms = terms_of(text);
        let query: Vec<(&str, f32)> = terms.iter().map(|t| (t.as_str(), 1.0f32)).collect();
        self.index
            .search(query, k, Scorer::default())
            .into_iter()
            .map(|hit| RepoHit {
                statement: self.statements[hit.doc as usize].clone(),
                truth: self.truths[hit.doc as usize],
                similarity: hit.score,
            })
            .collect()
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }
}

fn terms_of(text: &str) -> Vec<String> {
    tokenize(text)
        .iter()
        .filter(|t| t.kind == TokenKind::Word && t.text.len() > 2)
        .map(|t| stem(&t.lower()))
        .collect()
}

/// Statements in the style of public fact-check archives.
const POPULAR_CLAIMS: &[(&str, bool)] = &[
    (
        "The unemployment rate fell below five percent last year",
        true,
    ),
    (
        "Crime in major cities has doubled over the past decade",
        false,
    ),
    (
        "The federal budget deficit tripled under the previous administration",
        false,
    ),
    (
        "More than a million jobs were added to the economy this year",
        true,
    ),
    (
        "The average family pays more in taxes than ever before",
        false,
    ),
    (
        "Millions of undocumented votes were cast in the election",
        false,
    ),
    (
        "The president signed more executive orders than any predecessor",
        false,
    ),
    (
        "Wages for middle class workers have stagnated for twenty years",
        true,
    ),
    ("The trade deficit with China reached a record high", true),
    ("Violent crime is at a fifty year low nationwide", true),
    (
        "The country spends more on defense than the next ten nations combined",
        true,
    ),
    (
        "Immigrants commit crimes at higher rates than native born citizens",
        false,
    ),
    ("The top one percent own half of the nation's wealth", false),
    (
        "Renewable energy employs more people than coal mining",
        true,
    ),
    (
        "The average temperature has risen two degrees since 1900",
        false,
    ),
    (
        "Vaccines cause more injuries than the diseases they prevent",
        false,
    ),
    (
        "The national debt exceeds the size of the entire economy",
        true,
    ),
    (
        "School test scores have declined every year for a decade",
        false,
    ),
    (
        "The league suspended more players last season than ever before",
        false,
    ),
    (
        "Ticket prices have doubled since the new stadium opened",
        false,
    ),
    ("The team's payroll is the highest in the division", true),
    (
        "Home prices in the region rose faster than anywhere else",
        false,
    ),
    (
        "The state's population grew by a million people in ten years",
        true,
    ),
    ("Gas prices hit their highest level in seven years", true),
    ("The company laid off a quarter of its workforce", false),
    ("Retail sales collapsed during the holiday season", false),
    (
        "The survey shows most developers learned to code in college",
        false,
    ),
    (
        "A majority of respondents favor remote work arrangements",
        true,
    ),
    (
        "The average salary in the industry exceeds six figures",
        false,
    ),
    (
        "Most donations to the campaign came from out of state",
        false,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popular_repository_builds() {
        let repo = FactRepository::popular();
        assert_eq!(repo.len(), POPULAR_CLAIMS.len());
        assert!(!repo.is_empty());
    }

    #[test]
    fn search_returns_similar_statements() {
        let repo = FactRepository::popular();
        let hits = repo.search("the unemployment rate fell below five percent", 3);
        assert!(!hits.is_empty());
        assert!(hits[0].statement.contains("unemployment"));
        assert!(hits[0].truth);
        assert!(hits[0].similarity > 0.0);
    }

    #[test]
    fn unrelated_queries_hit_spuriously_or_not_at_all() {
        let repo = FactRepository::popular();
        // A long-tail claim about an ad-hoc data set: any hit is spurious.
        let hits = repo.search("three lifetime bans were for repeated substance abuse", 3);
        for h in &hits {
            assert!(
                !h.statement.contains("lifetime"),
                "repository cannot contain the long-tail claim"
            );
        }
    }

    #[test]
    fn custom_repository() {
        let repo = FactRepository::build(vec![
            ("the sky is blue".into(), true),
            ("the sky is green".into(), false),
        ]);
        let hits = repo.search("what color is the sky", 2);
        assert_eq!(hits.len(), 2);
    }
}
