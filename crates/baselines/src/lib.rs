//! # agg-baselines
//!
//! The baseline systems of the paper's evaluation (Table 5):
//!
//! * **ClaimBuster-FM** ([`claimbuster_fm`]) — fact matching: an input
//!   claim is compared against a repository of previously fact-checked
//!   statements; the verdict is borrowed from the most similar statement
//!   (`Max`) or a similarity-weighted majority vote (`MV`). The paper finds
//!   this fails on "long tail" claims about ad-hoc data sets — its hits are
//!   spurious.
//! * **ClaimBuster-KB + NaLIR** ([`question_gen`], [`nalir`],
//!   [`claimbuster_kb`]) — claims are transformed into natural-language
//!   questions, which a NaLIR-style single-sentence NL→SQL translator
//!   answers over the database. Without document context, holistic priors,
//!   or result feedback, most claims fail to translate (the paper reports
//!   a 42.1% translation ratio and 2.4% recall end-to-end).
//!
//! The third baseline of the paper — naive query evaluation for Table 6 —
//! lives in `agg_core::evaluate::evaluate_naive` / `EvalStrategy::Naive`,
//! since it is a strategy of the main system rather than a separate tool.

pub mod claimbuster_fm;
pub mod claimbuster_kb;
pub mod fact_repo;
pub mod nalir;
pub mod question_gen;

pub use claimbuster_fm::{check_with_fm, FmMode};
pub use claimbuster_kb::check_with_kb;
pub use fact_repo::FactRepository;
pub use nalir::NalirTranslator;
pub use question_gen::generate_questions;
