//! Repo automation tasks (`cargo run -p xtask -- <task>`).
//!
//! # `bench-gate`
//!
//! The CI bench-regression gate: compares a freshly emitted benchmark JSON
//! (`BENCH_cube.json` shape — a `"variants"` array of objects carrying
//! `"name"` and a throughput metric) against the committed baseline and
//! exits non-zero when any gated variant's throughput regressed more than
//! the threshold. Improvements never fail the gate; the baseline is only
//! tightened by committing a new `BENCH_cube.json`.
//!
//! ```text
//! cargo run -p xtask -- bench-gate \
//!     --baseline BENCH_cube.json --current BENCH_cube.current.json \
//!     --threshold 0.15 --variants dense_1t,dense_4t --metric rows_per_sec
//! ```
//!
//! No serde in the offline build environment, so the parser is a tiny
//! purpose-built scanner over the benchmark files' known shape.
//!
//! # `dedup-gate`
//!
//! The single-flight determinism gate: asserts that a metric is **exactly
//! equal** across the named variants of one benchmark file. Used on
//! `BENCH_pipeline.json`'s `rows_scanned_per_run` for `batch_1w` vs
//! `batch_4w` — the cube-task scheduler's single-flight latch makes the
//! batched pipeline scan exactly as many rows at 4 workers as at 1, so
//! unlike a timing gate this check is deterministic: any inequality is a
//! real duplicated (or lost) cube execution, never runner noise.
//!
//! ```text
//! cargo run -p xtask -- dedup-gate \
//!     --file BENCH_pipeline.current.json \
//!     --metric rows_scanned_per_run --variants batch_1w,batch_4w
//! ```
//!
//! The gate takes any number of variants, so the same invocation also
//! covers the **streaming** service: for a fixed arrival order,
//! `StreamingVerifier`'s `rows_scanned` and `scan_passes` must be exactly
//! worker-count-independent across `stream_1w,stream_2w,stream_4w,stream_8w`
//! — dynamic admission must never duplicate (or lose) a cube execution,
//! whatever the pool size.
//!
//! With `--le-variant NAME` the gate additionally asserts the (equal)
//! batched metric does not exceed the named variant's — used to pin fused
//! `scan_passes` at or below `sequential_shared`'s pass count.
//!
//! # `min-gate`
//!
//! Floor check on one top-level numeric field of a benchmark file, for
//! in-run normalized metrics where runner speed cancels by construction:
//! the batch-vs-fresh speedup is a ratio of two timings from the same
//! process on the same machine, so unlike absolute docs/sec it can be
//! gated with a fixed floor.
//!
//! ```text
//! cargo run -p xtask -- min-gate \
//!     --file BENCH_pipeline.current.json \
//!     --field speedup_batch_vs_sequential_fresh --min 1.2
//! ```
//!
//! # `chaos-gate`
//!
//! The robustness gate: judges `target/CHAOS_matrix.json` (emitted by
//! `cargo run --release --example chaos_matrix`, one record per seeded
//! fault-matrix cell) and fails when any cell left a ticket unsettled,
//! left a dangling in-flight cache entry after drain, broke the
//! every-document-lands-in-exactly-one-bin accounting, or overspent its
//! worker-respawn budget. Unlike the timing gates this is fully
//! deterministic: the fault plans are seeded, so any failure is a real
//! robustness regression, never runner noise.
//!
//! ```text
//! cargo run -p xtask -- chaos-gate --file target/CHAOS_matrix.json
//! ```
//!
//! # `skip-gate`
//!
//! The compressed-scan gate over `BENCH_cube.json`'s 1M-row clustered
//! corpus variants: fails CI when (a) the selective-literal case skipped
//! **zero** blocks (zone-map pruning silently stopped working), (b) the
//! encoded path's cube results drifted from the plain path
//! (`encoded_matches_plain != 1` — a correctness bug, not a perf one), or
//! (c) the encoded full scan fell more than `--max-slowdown` behind the
//! plain in-RAM scan on the same corpus. The slowdown bound is an in-run
//! ratio of two timings from the same process, so runner pace cancels
//! out, like `min-gate`'s normalized fields.
//!
//! ```text
//! cargo run -p xtask -- skip-gate --file BENCH_cube.current.json \
//!     --selective encoded_selective_1t \
//!     --encoded encoded_full_1t --plain plain_full_1t --max-slowdown 2.0
//! ```
//!
//! # `partition-gate`
//!
//! The partition-determinism gate over `BENCH_pipeline.json`'s
//! `partitioned_1t/2t/4t` variants (a 1M-row corpus whose every fused
//! pass fans out into partition subtasks): fails CI when (a) the
//! partitioned reports drifted from the partition-span-1 control
//! (`partition_fingerprints_match != 1`), (b) `rows_scanned` or
//! `scan_passes` varied across worker counts or spans — worker count
//! leaking into the scan shape — or (c) any variant scanned zero
//! partitions (the fan-out silently stopped engaging). Deterministic
//! counters only; never a timing judgement.
//!
//! ```text
//! cargo run -p xtask -- partition-gate --file BENCH_pipeline.current.json
//! ```

use std::process::ExitCode;

/// The object bodies of the top-level `"variants"` array.
fn variant_objects(json: &str) -> Vec<String> {
    array_objects(json, "variants")
}

/// The object bodies of a named top-level array of flat objects.
fn array_objects(json: &str, key: &str) -> Vec<String> {
    let Some(start) = json.find(&format!("\"{key}\"")) else {
        return Vec::new();
    };
    let Some(open) = json[start..].find('[') else {
        return Vec::new();
    };
    let body_start = start + open + 1;
    let Some(close) = json[body_start..].find(']') else {
        return Vec::new();
    };
    let body = &json[body_start..body_start + close];

    let mut out = Vec::new();
    let mut rest = body;
    while let Some(obj_open) = rest.find('{') {
        let Some(obj_close) = rest[obj_open..].find('}') else {
            break;
        };
        out.push(rest[obj_open + 1..obj_open + obj_close].to_string());
        rest = &rest[obj_open + obj_close + 1..];
    }
    out
}

/// Extract `(name, metric)` per object of the top-level `"variants"` array.
fn extract_variants(json: &str, metric: &str) -> Vec<(String, f64)> {
    variant_objects(json)
        .iter()
        .filter_map(|obj| Some((string_field(obj, "name")?, number_field(obj, metric)?)))
        .collect()
}

/// The string value of `"key": "value"` inside one flat JSON object body.
fn string_field(obj: &str, key: &str) -> Option<String> {
    let tail = field_tail(obj, key)?;
    let first_quote = tail.find('"')?;
    let rest = &tail[first_quote + 1..];
    let second_quote = rest.find('"')?;
    Some(rest[..second_quote].to_string())
}

/// The numeric value of `"key": 123.45` inside one flat JSON object body.
fn number_field(obj: &str, key: &str) -> Option<f64> {
    let tail = field_tail(obj, key)?;
    let num: String = tail
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| {
            c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E' || *c == '+'
        })
        .collect();
    num.parse().ok()
}

/// The text after `"key":`.
fn field_tail<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)?;
    let tail = &obj[at + pat.len()..];
    let colon = tail.find(':')?;
    Some(&tail[colon + 1..])
}

struct GateOutcome {
    failures: Vec<String>,
    report: Vec<String>,
}

/// Compare gated variants: a failure is a current metric below
/// `baseline * (1 - threshold)`.
///
/// With `normalize_to`, each gated variant's metric is divided by the named
/// variant's metric **from the same file** before comparing. Gating the
/// dense grid's speedup over the in-run seed executor instead of absolute
/// throughput makes the gate robust to CI runners of different speeds:
/// machine pace cancels out, a genuine dense-grid regression does not.
fn run_gate(
    baseline_json: &str,
    current_json: &str,
    metric: &str,
    gated: &[&str],
    threshold: f64,
    normalize_to: Option<&str>,
) -> Result<GateOutcome, String> {
    let baseline = extract_variants(baseline_json, metric);
    let current = extract_variants(current_json, metric);
    if baseline.is_empty() {
        return Err(format!(
            "no variants with \"{metric}\" in the baseline file"
        ));
    }
    if current.is_empty() {
        return Err(format!("no variants with \"{metric}\" in the current file"));
    }
    let lookup = |set: &[(String, f64)], name: &str, which: &str| -> Result<f64, String> {
        set.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("variant \"{name}\" missing from the {which} file"))
    };
    let (base_norm, cur_norm) = match normalize_to {
        None => (1.0, 1.0),
        Some(anchor) => (
            lookup(&baseline, anchor, "baseline")?,
            lookup(&current, anchor, "current")?,
        ),
    };
    if base_norm <= 0.0 || cur_norm <= 0.0 {
        return Err("normalization anchor metric must be positive".into());
    }
    let mut failures = Vec::new();
    let mut report = Vec::new();
    for &name in gated {
        let base = lookup(&baseline, name, "baseline")? / base_norm;
        let cur = lookup(&current, name, "current")? / cur_norm;
        let ratio = cur / base;
        let line = match normalize_to {
            None => format!(
                "{name}: baseline {base:.0}, current {cur:.0} ({:+.1}%)",
                (ratio - 1.0) * 100.0
            ),
            Some(anchor) => format!(
                "{name} (vs {anchor}): baseline {base:.2}x, current {cur:.2}x ({:+.1}%)",
                (ratio - 1.0) * 100.0
            ),
        };
        if cur < base * (1.0 - threshold) {
            failures.push(format!(
                "{line} — regressed beyond the {:.0}% threshold",
                threshold * 100.0
            ));
        } else {
            report.push(line);
        }
    }
    Ok(GateOutcome { failures, report })
}

fn bench_gate(args: &[String]) -> ExitCode {
    let mut baseline = String::from("BENCH_cube.json");
    let mut current = String::from("BENCH_cube.current.json");
    let mut threshold = 0.15f64;
    let mut metric = String::from("rows_per_sec");
    let mut variants = String::from("dense_1t,dense_4t");
    let mut normalize_to: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| it.next().cloned().unwrap_or_else(|| panic!("{what} PATH"));
        match arg.as_str() {
            "--baseline" => baseline = take("--baseline"),
            "--current" => current = take("--current"),
            "--threshold" => threshold = take("--threshold").parse().expect("--threshold FRACTION"),
            "--metric" => metric = take("--metric"),
            "--variants" => variants = take("--variants"),
            "--normalize-to" => normalize_to = Some(take("--normalize-to")),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let gated: Vec<&str> = variants.split(',').filter(|s| !s.is_empty()).collect();
    let outcome = read(&baseline)
        .and_then(|b| read(&current).map(|c| (b, c)))
        .and_then(|(b, c)| run_gate(&b, &c, &metric, &gated, threshold, normalize_to.as_deref()));
    match outcome {
        Err(msg) => {
            eprintln!("bench-gate error: {msg}");
            ExitCode::from(2)
        }
        Ok(outcome) => {
            for line in &outcome.report {
                println!("bench-gate ok: {line}");
            }
            if outcome.failures.is_empty() {
                println!("bench-gate: no regression beyond {:.0}%", threshold * 100.0);
                ExitCode::SUCCESS
            } else {
                for failure in &outcome.failures {
                    eprintln!("bench-gate FAIL: {failure}");
                }
                ExitCode::FAILURE
            }
        }
    }
}

/// Exact-equality check across variants of one file: `Ok(per-variant
/// report lines)` when every gated variant's metric is identical, `Err`
/// describing the first inequality or missing variant otherwise.
///
/// With `le_bound`, the gated variants' (equal) metric must additionally
/// not exceed the bound variant's — e.g. the batched pipeline's fused
/// `scan_passes` must stay at or below `sequential_shared`'s, or fusion
/// has silently stopped sharing passes.
fn run_dedup_gate(
    json: &str,
    metric: &str,
    gated: &[&str],
    le_bound: Option<&str>,
) -> Result<Vec<String>, String> {
    if gated.len() < 2 {
        return Err("dedup-gate needs at least two variants to compare".into());
    }
    let variants = extract_variants(json, metric);
    if variants.is_empty() {
        return Err(format!("no variants with \"{metric}\" in the file"));
    }
    let lookup = |name: &str| -> Result<f64, String> {
        variants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("variant \"{name}\" missing from the file"))
    };
    let mut report = Vec::new();
    let mut first: Option<(&str, f64)> = None;
    for &name in gated {
        let value = lookup(name)?;
        report.push(format!("{name}: {metric} = {value:.0}"));
        match first {
            None => first = Some((name, value)),
            Some((first_name, first_value)) => {
                // Counters are integers rendered exactly; equality is exact.
                if value != first_value {
                    return Err(format!(
                        "{name} ({value:.0}) differs from {first_name} ({first_value:.0}) — \
                         a cube execution was duplicated or lost across worker counts"
                    ));
                }
            }
        }
    }
    if let Some(bound_name) = le_bound {
        let bound = lookup(bound_name)?;
        let (name, value) = first.expect("at least two gated variants");
        if value > bound {
            return Err(format!(
                "{name} ({value:.0}) exceeds {bound_name} ({bound:.0}) — \
                 batched {metric} must not regress past the shared sequential run"
            ));
        }
        report.push(format!("bound {bound_name}: {metric} = {bound:.0}"));
    }
    Ok(report)
}

fn dedup_gate(args: &[String]) -> ExitCode {
    let mut file = String::from("BENCH_pipeline.current.json");
    let mut metric = String::from("rows_scanned_per_run");
    let mut variants = String::from("batch_1w,batch_4w");
    let mut le_variant: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| it.next().cloned().unwrap_or_else(|| panic!("{what} VALUE"));
        match arg.as_str() {
            "--file" => file = take("--file"),
            "--metric" => metric = take("--metric"),
            "--variants" => variants = take("--variants"),
            "--le-variant" => le_variant = Some(take("--le-variant")),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let gated: Vec<&str> = variants.split(',').filter(|s| !s.is_empty()).collect();
    let outcome = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {file}: {e}"))
        .and_then(|json| run_dedup_gate(&json, &metric, &gated, le_variant.as_deref()));
    match outcome {
        Ok(report) => {
            for line in &report {
                println!("dedup-gate ok: {line}");
            }
            println!("dedup-gate: {metric} identical across {}", variants.trim());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("dedup-gate FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Minimum-value check on one top-level numeric field of a benchmark file.
/// Used for in-run *normalized* metrics (e.g. the batch-vs-fresh speedup,
/// a ratio of two timings from the same run), where machine pace cancels
/// out by construction — the same trick the bench-gate's `--normalize-to`
/// uses across files.
fn run_min_gate(json: &str, field: &str, min: f64) -> Result<String, String> {
    let value = number_field(json, field)
        .ok_or_else(|| format!("no numeric field \"{field}\" in the file"))?;
    if value < min {
        return Err(format!(
            "{field} = {value:.2} fell below the {min:.2} floor"
        ));
    }
    Ok(format!("{field} = {value:.2} (floor {min:.2})"))
}

fn min_gate(args: &[String]) -> ExitCode {
    let mut file = String::from("BENCH_pipeline.current.json");
    let mut field = String::from("speedup_batch_vs_sequential_fresh");
    let mut min = 1.2f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| it.next().cloned().unwrap_or_else(|| panic!("{what} VALUE"));
        match arg.as_str() {
            "--file" => file = take("--file"),
            "--field" => field = take("--field"),
            "--min" => min = take("--min").parse().expect("--min NUMBER"),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let outcome = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {file}: {e}"))
        .and_then(|json| run_min_gate(&json, &field, min));
    match outcome {
        Ok(line) => {
            println!("min-gate ok: {line}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("min-gate FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Judge one chaos-matrix file: every cell must have settled every
/// ticket, drained its in-flight cache to empty, reconciled its outcome
/// bins, and stayed within its respawn budget. Returns per-cell report
/// lines and the list of violations.
fn run_chaos_gate(json: &str) -> Result<GateOutcome, String> {
    let cells = variant_objects(json);
    if cells.is_empty() {
        return Err("no \"variants\" cells in the chaos matrix file".into());
    }
    let mut failures = Vec::new();
    let mut report = Vec::new();
    for (i, obj) in cells.iter().enumerate() {
        let name = string_field(obj, "name").unwrap_or_else(|| format!("cell #{i}"));
        let field = |key: &str| -> Result<f64, String> {
            number_field(obj, key).ok_or_else(|| format!("{name}: missing numeric field \"{key}\""))
        };
        let unsettled = field("unsettled")?;
        let inflight = field("inflight_len")?;
        let bins_ok = field("bins_ok")?;
        let respawns = field("respawns")?;
        let max_respawns = field("max_respawns")?;
        let before = failures.len();
        if unsettled != 0.0 {
            failures.push(format!("{name}: {unsettled:.0} ticket(s) never settled"));
        }
        if inflight != 0.0 {
            failures.push(format!(
                "{name}: {inflight:.0} in-flight cache entr(ies) dangling after drain"
            ));
        }
        if bins_ok != 1.0 {
            failures.push(format!(
                "{name}: outcome bins do not reconcile (submitted != settled)"
            ));
        }
        if respawns > max_respawns {
            failures.push(format!(
                "{name}: {respawns:.0} respawns exceed the budget of {max_respawns:.0}"
            ));
        }
        if failures.len() == before {
            report.push(format!(
                "{name}: settled all, inflight 0, bins ok, respawns {respawns:.0}/{max_respawns:.0}"
            ));
        }
    }
    Ok(GateOutcome { failures, report })
}

fn chaos_gate(args: &[String]) -> ExitCode {
    let mut file = String::from("target/CHAOS_matrix.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--file" => file = it.next().cloned().expect("--file PATH"),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let outcome = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {file}: {e}"))
        .and_then(|json| run_chaos_gate(&json));
    match outcome {
        Err(msg) => {
            eprintln!("chaos-gate error: {msg}");
            ExitCode::from(2)
        }
        Ok(outcome) if outcome.failures.is_empty() => {
            for line in &outcome.report {
                println!("chaos-gate ok: {line}");
            }
            println!(
                "chaos-gate: all {} cells settled cleanly",
                outcome.report.len()
            );
            ExitCode::SUCCESS
        }
        Ok(outcome) => {
            for failure in &outcome.failures {
                eprintln!("chaos-gate FAIL: {failure}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Judge the compressed-scan variants of one cube benchmark file: the
/// selective-literal case must have skipped at least one block, the
/// encoded path must have produced exactly the plain path's results
/// (`encoded_matches_plain == 1` at top level), and the encoded full
/// scan's throughput must stay within `max_slowdown` of the plain scan's.
fn run_skip_gate(
    json: &str,
    selective: &str,
    encoded: &str,
    plain: &str,
    max_slowdown: f64,
) -> Result<Vec<String>, String> {
    if max_slowdown < 1.0 {
        return Err("--max-slowdown must be >= 1.0".into());
    }
    let lookup = |metric: &str, name: &str| -> Result<f64, String> {
        extract_variants(json, metric)
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("variant \"{name}\" has no \"{metric}\" in the file"))
    };
    let mut report = Vec::new();

    // Correctness first: a fast encoded path that disagrees with the
    // plain scan is a bug, not a win.
    let matches_plain = number_field(json, "encoded_matches_plain")
        .ok_or("no top-level \"encoded_matches_plain\" field in the file")?;
    if matches_plain != 1.0 {
        return Err(
            "encoded_matches_plain != 1 — encoded-path results drifted from the plain scan".into(),
        );
    }
    report.push("encoded results identical to the plain scan".to_string());

    let skipped = lookup("blocks_skipped", selective)?;
    let scanned = lookup("blocks_scanned", selective)?;
    if skipped <= 0.0 {
        return Err(format!(
            "{selective} skipped 0 of {:.0} blocks — zone-map pruning is not firing on the \
             selective-literal corpus",
            scanned + skipped
        ));
    }
    report.push(format!(
        "{selective}: skipped {skipped:.0} of {:.0} blocks ({:.1}%)",
        scanned + skipped,
        100.0 * skipped / (scanned + skipped)
    ));

    let enc = lookup("rows_per_sec", encoded)?;
    let pla = lookup("rows_per_sec", plain)?;
    if enc <= 0.0 || pla <= 0.0 {
        return Err("rows_per_sec must be positive for the slowdown bound".into());
    }
    let slowdown = pla / enc;
    if slowdown > max_slowdown {
        return Err(format!(
            "{encoded} is {slowdown:.2}x slower than {plain} — past the {max_slowdown:.2}x bound"
        ));
    }
    report.push(format!(
        "{encoded} vs {plain}: {slowdown:.2}x (bound {max_slowdown:.2}x)"
    ));
    Ok(report)
}

fn skip_gate(args: &[String]) -> ExitCode {
    let mut file = String::from("BENCH_cube.current.json");
    let mut selective = String::from("encoded_selective_1t");
    let mut encoded = String::from("encoded_full_1t");
    let mut plain = String::from("plain_full_1t");
    let mut max_slowdown = 2.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| it.next().cloned().unwrap_or_else(|| panic!("{what} VALUE"));
        match arg.as_str() {
            "--file" => file = take("--file"),
            "--selective" => selective = take("--selective"),
            "--encoded" => encoded = take("--encoded"),
            "--plain" => plain = take("--plain"),
            "--max-slowdown" => {
                max_slowdown = take("--max-slowdown")
                    .parse()
                    .expect("--max-slowdown NUMBER")
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let outcome = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {file}: {e}"))
        .and_then(|json| run_skip_gate(&json, &selective, &encoded, &plain, max_slowdown));
    match outcome {
        Ok(report) => {
            for line in &report {
                println!("skip-gate ok: {line}");
            }
            println!("skip-gate: zone-map skipping live, encoded path faithful and within bounds");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("skip-gate FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Judge the partition-parallel variants of one pipeline benchmark file:
/// the corpus must actually have fanned out (`partitions_scanned > 0` in
/// every `partitioned_*` variant), every worker count must have scanned
/// identical rows, formed identical passes, and executed identical
/// partition counts, and the partition-span-1 control must have produced
/// bit-identical reports (`partition_fingerprints_match == 1`). All
/// checks are deterministic counters — a failure is a real determinism
/// regression, never runner noise.
fn run_partition_gate(json: &str) -> Result<Vec<String>, String> {
    let objs = array_objects(json, "partitioned");
    if objs.is_empty() {
        return Err("no \"partitioned\" variants in the file".into());
    }
    let flag = |key: &str| -> Result<f64, String> {
        number_field(json, key).ok_or_else(|| format!("no top-level \"{key}\" field in the file"))
    };
    let mut report = Vec::new();

    // Correctness first: fast partitioned scans that change report bits
    // break the determinism contract.
    if flag("partition_fingerprints_match")? != 1.0 {
        return Err(
            "partition_fingerprints_match != 1 — partitioned reports drifted from the \
             partition-span-1 control"
                .into(),
        );
    }
    report.push("partitioned reports bit-identical to the span-1 control".to_string());
    if flag("partition_rows_scanned_equal")? != 1.0 {
        return Err(
            "partition_rows_scanned_equal != 1 — rows_scanned varied with the worker \
             count or partition span"
                .into(),
        );
    }
    if flag("partition_scan_passes_equal")? != 1.0 {
        return Err(
            "partition_scan_passes_equal != 1 — scan_passes varied with the worker \
             count or partition span"
                .into(),
        );
    }

    // Re-derive the counter equalities from the variants themselves, so
    // the gate judges the recorded numbers, not just the emitter's flags.
    let mut first: Option<(f64, f64, f64)> = None;
    for (i, obj) in objs.iter().enumerate() {
        let name = string_field(obj, "name").unwrap_or_else(|| format!("variant #{i}"));
        let field = |key: &str| -> Result<f64, String> {
            number_field(obj, key).ok_or_else(|| format!("{name}: missing field \"{key}\""))
        };
        let rows = field("rows_scanned_per_run")?;
        let passes = field("scan_passes")?;
        let partitions = field("partitions_scanned")?;
        if partitions <= 0.0 {
            return Err(format!(
                "{name}: scanned 0 partitions — the corpus never fanned out (too small, or \
                 partitioning is off)"
            ));
        }
        match first {
            None => first = Some((rows, passes, partitions)),
            Some(f) if f != (rows, passes, partitions) => {
                return Err(format!(
                    "{name}: (rows, passes, partitions) = ({rows:.0}, {passes:.0}, \
                     {partitions:.0}) diverges from ({:.0}, {:.0}, {:.0}) — worker count leaked \
                     into the scan shape",
                    f.0, f.1, f.2
                ));
            }
            Some(_) => {}
        }
        report.push(format!(
            "{name}: rows {rows:.0}, passes {passes:.0}, partitions {partitions:.0}"
        ));
    }
    Ok(report)
}

fn partition_gate(args: &[String]) -> ExitCode {
    let mut file = String::from("BENCH_pipeline.current.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--file" => file = it.next().cloned().expect("--file PATH"),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let outcome = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {file}: {e}"))
        .and_then(|json| run_partition_gate(&json));
    match outcome {
        Ok(report) => {
            for line in &report {
                println!("partition-gate ok: {line}");
            }
            println!(
                "partition-gate: partitioned scans deterministic across worker counts and spans"
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("partition-gate FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Judge the incremental re-verification variants of one pipeline
/// benchmark file: after a ~1% append, every `append_*` variant must have
/// patched at least one grid, scanned only a small tail
/// (`delta_rows_scanned` under `max_fraction` of the cold full-corpus
/// rows), produced reports bit-identical to a cold verification of the
/// grown corpus (`append_fingerprints_match == 1`), and done identical
/// patch work at every worker count. All checks are deterministic
/// counters — a failure is a real delta-path regression, never runner
/// noise.
fn run_delta_gate(json: &str, max_fraction: f64) -> Result<Vec<String>, String> {
    let objs = array_objects(json, "append_reverify");
    if objs.is_empty() {
        return Err("no \"append_reverify\" variants in the file".into());
    }
    let flag = |key: &str| -> Result<f64, String> {
        number_field(json, key).ok_or_else(|| format!("no top-level \"{key}\" field in the file"))
    };
    let mut report = Vec::new();

    // Correctness first: a fast patch that changes report bits is a stale
    // read wearing a speedup costume.
    if flag("append_fingerprints_match")? != 1.0 {
        return Err(
            "append_fingerprints_match != 1 — patched reports drifted from a cold \
             verification of the grown corpus"
                .into(),
        );
    }
    report.push("patched reports bit-identical to cold verification of the grown corpus".into());
    if flag("append_patch_work_equal")? != 1.0 {
        return Err(
            "append_patch_work_equal != 1 — patch work varied with the worker count".into(),
        );
    }

    // Re-derive the counter equalities and the delta bound from the
    // variants themselves, so the gate judges the recorded numbers, not
    // just the emitter's flags.
    let mut first: Option<(f64, f64)> = None;
    for (i, obj) in objs.iter().enumerate() {
        let name = string_field(obj, "name").unwrap_or_else(|| format!("variant #{i}"));
        let field = |key: &str| -> Result<f64, String> {
            number_field(obj, key).ok_or_else(|| format!("{name}: missing field \"{key}\""))
        };
        let delta = field("delta_rows_scanned")?;
        let patched = field("grids_patched")?;
        let cold = field("rows_scanned_cold")?;
        if patched <= 0.0 {
            return Err(format!(
                "{name}: patched 0 grids — the re-verification fell back to cold rescans \
                 (checkpoints never captured, or the cache dropped them)"
            ));
        }
        if cold <= 0.0 {
            return Err(format!("{name}: rows_scanned_cold is 0 — no cold baseline"));
        }
        let fraction = delta / cold;
        if fraction >= max_fraction {
            return Err(format!(
                "{name}: delta_rows_scanned {delta:.0} is {:.1}% of the cold scan's \
                 {cold:.0} rows — past the {:.1}% bound; the patch path is rescanning \
                 instead of resuming",
                fraction * 100.0,
                max_fraction * 100.0
            ));
        }
        match first {
            None => first = Some((delta, patched)),
            Some(f) if f != (delta, patched) => {
                return Err(format!(
                    "{name}: (delta_rows_scanned, grids_patched) = ({delta:.0}, {patched:.0}) \
                     diverges from ({:.0}, {:.0}) — worker count leaked into the patch work",
                    f.0, f.1
                ));
            }
            Some(_) => {}
        }
        report.push(format!(
            "{name}: {patched:.0} grids patched over {delta:.0} delta rows ({:.2}% of cold)",
            fraction * 100.0
        ));
    }
    Ok(report)
}

fn delta_gate(args: &[String]) -> ExitCode {
    let mut file = String::from("BENCH_pipeline.current.json");
    let mut max_fraction = 0.10f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--file" => file = it.next().cloned().expect("--file PATH"),
            "--max-fraction" => {
                max_fraction = it
                    .next()
                    .cloned()
                    .expect("--max-fraction FRACTION")
                    .parse()
                    .expect("--max-fraction FRACTION")
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let outcome = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {file}: {e}"))
        .and_then(|json| run_delta_gate(&json, max_fraction));
    match outcome {
        Ok(report) => {
            for line in &report {
                println!("delta-gate ok: {line}");
            }
            println!(
                "delta-gate: incremental re-verification patches instead of rescanning, \
                 bit-identical at every worker count"
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("delta-gate FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Scrape `Name = 0xNN,` declarations from the `pub enum Opcode` block of
/// the protocol source. Only lines inside the enum body count, so helper
/// constants elsewhere in the file can't satisfy (or confuse) the gate.
fn scrape_source_opcodes(source: &str) -> Result<Vec<(String, u8)>, String> {
    let mut opcodes = Vec::new();
    let mut in_enum = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("pub enum Opcode") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if trimmed == "}" {
                break;
            }
            let Some((name, rest)) = trimmed.split_once('=') else {
                continue;
            };
            let value = rest.trim().trim_end_matches(',');
            let Some(hex) = value.strip_prefix("0x") else {
                continue;
            };
            let byte = u8::from_str_radix(hex, 16)
                .map_err(|e| format!("bad opcode value {value:?} in source: {e}"))?;
            opcodes.push((name.trim().to_string(), byte));
        }
    }
    if opcodes.is_empty() {
        return Err("no `Name = 0xNN,` opcodes found in a `pub enum Opcode` block".into());
    }
    Ok(opcodes)
}

/// Scrape `| 0xNN | Name | ... |` rows from the docs opcode table.
fn scrape_docs_opcodes(docs: &str) -> Result<Vec<(String, u8)>, String> {
    let mut opcodes = Vec::new();
    for line in docs.lines() {
        let Some(row) = line.trim().strip_prefix("| 0x") else {
            continue;
        };
        let mut cells = row.split('|').map(str::trim);
        let (Some(hex), Some(name)) = (cells.next(), cells.next()) else {
            continue;
        };
        let byte = u8::from_str_radix(hex, 16)
            .map_err(|e| format!("bad opcode value 0x{hex} in docs table: {e}"))?;
        opcodes.push((name.to_string(), byte));
    }
    if opcodes.is_empty() {
        return Err("no `| 0xNN | Name | ... |` rows found in the docs".into());
    }
    Ok(opcodes)
}

/// Fail if the opcode table in the protocol docs drifts from the `Opcode`
/// enum in the server source: every enum variant must appear in the docs
/// with the same byte value, and vice versa.
fn run_docs_gate(source: &str, docs: &str) -> Result<String, String> {
    let from_source = scrape_source_opcodes(source)?;
    let from_docs = scrape_docs_opcodes(docs)?;
    let mut failures = Vec::new();
    for (name, byte) in &from_source {
        match from_docs.iter().find(|(n, _)| n == name) {
            None => failures.push(format!(
                "opcode {name} (0x{byte:02X}) missing from the docs"
            )),
            Some((_, doc_byte)) if doc_byte != byte => failures.push(format!(
                "opcode {name} is 0x{byte:02X} in source but 0x{doc_byte:02X} in the docs"
            )),
            Some(_) => {}
        }
    }
    for (name, byte) in &from_docs {
        if !from_source.iter().any(|(n, _)| n == name) {
            failures.push(format!(
                "docs list opcode {name} (0x{byte:02X}) that the source does not define"
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "{} opcodes match between source enum and docs table",
            from_source.len()
        ))
    } else {
        Err(failures.join("\n"))
    }
}

fn docs_gate(args: &[String]) -> ExitCode {
    let mut source = String::from("crates/server/src/protocol.rs");
    let mut docs = String::from("docs/protocol.md");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--source" => source = it.next().cloned().expect("--source PATH"),
            "--docs" => docs = it.next().cloned().expect("--docs PATH"),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let outcome = read(&source)
        .and_then(|src| read(&docs).map(|doc| (src, doc)))
        .and_then(|(src, doc)| run_docs_gate(&src, &doc));
    match outcome {
        Ok(line) => {
            println!("docs-gate ok: {line}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("docs-gate FAIL:\n{msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-gate") => bench_gate(&args[1..]),
        Some("dedup-gate") => dedup_gate(&args[1..]),
        Some("min-gate") => min_gate(&args[1..]),
        Some("chaos-gate") => chaos_gate(&args[1..]),
        Some("skip-gate") => skip_gate(&args[1..]),
        Some("partition-gate") => partition_gate(&args[1..]),
        Some("delta-gate") => delta_gate(&args[1..]),
        Some("docs-gate") => docs_gate(&args[1..]),
        _ => {
            eprintln!("usage: xtask bench-gate [--baseline PATH] [--current PATH] [--threshold FRACTION] [--metric NAME] [--variants a,b] [--normalize-to NAME]");
            eprintln!("       xtask dedup-gate [--file PATH] [--metric NAME] [--variants a,b] [--le-variant NAME]");
            eprintln!("       xtask min-gate [--file PATH] [--field NAME] [--min NUMBER]");
            eprintln!("       xtask chaos-gate [--file PATH]");
            eprintln!("       xtask skip-gate [--file PATH] [--selective NAME] [--encoded NAME] [--plain NAME] [--max-slowdown NUMBER]");
            eprintln!("       xtask partition-gate [--file PATH]");
            eprintln!("       xtask delta-gate [--file PATH] [--max-fraction FRACTION]");
            eprintln!("       xtask docs-gate [--source PATH] [--docs PATH]");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "rows": 10000,
  "variants": [
    {"name": "seed_hashmap_1t", "mode": "seed-hashmap", "effective_parallelism": 1.00, "median_ns": 529196, "rows_per_sec": 18896590},
    {"name": "dense_1t", "mode": "dense", "effective_parallelism": 1.00, "median_ns": 104226, "rows_per_sec": 95945350},
    {"name": "dense_4t", "mode": "dense", "effective_parallelism": 0.25, "median_ns": 107148, "rows_per_sec": 93328854}
  ],
  "speedup_dense4t_requested_vs_seed": 4.94,
  "speedup_measured_at_threads": 1
}"#;

    fn with_throughput(dense_1t: f64, dense_4t: f64) -> String {
        format!(
            r#"{{"variants": [
  {{"name": "dense_1t", "rows_per_sec": {dense_1t}}},
  {{"name": "dense_4t", "rows_per_sec": {dense_4t}}}
]}}"#
        )
    }

    #[test]
    fn extracts_names_and_metric() {
        let v = extract_variants(SAMPLE, "rows_per_sec");
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].0, "seed_hashmap_1t");
        assert_eq!(v[1], ("dense_1t".to_string(), 95945350.0));
    }

    #[test]
    fn unchanged_throughput_passes() {
        let out = run_gate(
            SAMPLE,
            SAMPLE,
            "rows_per_sec",
            &["dense_1t", "dense_4t"],
            0.15,
            None,
        )
        .unwrap();
        assert!(out.failures.is_empty());
        assert_eq!(out.report.len(), 2);
    }

    #[test]
    fn improvement_passes() {
        let current = with_throughput(2e8, 2e8);
        let out = run_gate(
            SAMPLE,
            &current,
            "rows_per_sec",
            &["dense_1t", "dense_4t"],
            0.15,
            None,
        )
        .unwrap();
        assert!(out.failures.is_empty());
    }

    #[test]
    fn small_wobble_passes_but_real_regression_fails() {
        // -10%: within the 15% threshold.
        let wobble = with_throughput(95945350.0 * 0.9, 93328854.0 * 0.9);
        let out = run_gate(
            SAMPLE,
            &wobble,
            "rows_per_sec",
            &["dense_1t", "dense_4t"],
            0.15,
            None,
        )
        .unwrap();
        assert!(out.failures.is_empty());
        // -20% on one gated variant: fail.
        let regressed = with_throughput(95945350.0 * 0.8, 93328854.0);
        let out = run_gate(
            SAMPLE,
            &regressed,
            "rows_per_sec",
            &["dense_1t", "dense_4t"],
            0.15,
            None,
        )
        .unwrap();
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("dense_1t"), "{:?}", out.failures);
    }

    #[test]
    fn normalized_gate_ignores_machine_speed_but_catches_real_regressions() {
        // A runner 3x slower across the board: absolute throughput drops
        // 67%, but the dense/seed ratio is unchanged — normalized gate
        // passes where the absolute gate would fail.
        let slower_machine = format!(
            r#"{{"variants": [
  {{"name": "seed_hashmap_1t", "rows_per_sec": {}}},
  {{"name": "dense_1t", "rows_per_sec": {}}},
  {{"name": "dense_4t", "rows_per_sec": {}}}
]}}"#,
            18896590.0 / 3.0,
            95945350.0 / 3.0,
            93328854.0 / 3.0
        );
        let out = run_gate(
            SAMPLE,
            &slower_machine,
            "rows_per_sec",
            &["dense_1t", "dense_4t"],
            0.15,
            Some("seed_hashmap_1t"),
        )
        .unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        // Dense path genuinely 30% slower while the seed anchor holds: the
        // normalized ratio drops 30% and the gate fails.
        let dense_regressed = format!(
            r#"{{"variants": [
  {{"name": "seed_hashmap_1t", "rows_per_sec": 18896590}},
  {{"name": "dense_1t", "rows_per_sec": {}}},
  {{"name": "dense_4t", "rows_per_sec": 93328854}}
]}}"#,
            95945350.0 * 0.7
        );
        let out = run_gate(
            SAMPLE,
            &dense_regressed,
            "rows_per_sec",
            &["dense_1t", "dense_4t"],
            0.15,
            Some("seed_hashmap_1t"),
        )
        .unwrap();
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("dense_1t"), "{:?}", out.failures);
    }

    #[test]
    fn missing_variant_is_an_error_not_a_pass() {
        let current = r#"{"variants": [{"name": "dense_1t", "rows_per_sec": 1e8}]}"#;
        assert!(run_gate(SAMPLE, current, "rows_per_sec", &["dense_4t"], 0.15, None).is_err());
        assert!(run_gate("{}", SAMPLE, "rows_per_sec", &["dense_1t"], 0.15, None).is_err());
    }

    fn pipeline_sample(rows_1w: u64, rows_4w: u64) -> String {
        format!(
            r#"{{"variants": [
  {{"name": "sequential_fresh", "rows_scanned_per_run": 625140}},
  {{"name": "batch_1w", "rows_scanned_per_run": {rows_1w}}},
  {{"name": "batch_4w", "rows_scanned_per_run": {rows_4w}}}
]}}"#
        )
    }

    #[test]
    fn dedup_gate_passes_on_exact_equality() {
        let json = pipeline_sample(121900, 121900);
        let report = run_dedup_gate(
            &json,
            "rows_scanned_per_run",
            &["batch_1w", "batch_4w"],
            None,
        )
        .unwrap();
        assert_eq!(report.len(), 2);
        assert!(report[0].contains("batch_1w"), "{report:?}");
    }

    #[test]
    fn dedup_gate_fails_on_any_inequality() {
        // A single duplicated cube execution (one 460-row scan) must fail.
        let json = pipeline_sample(121900, 122360);
        let err = run_dedup_gate(
            &json,
            "rows_scanned_per_run",
            &["batch_1w", "batch_4w"],
            None,
        )
        .unwrap_err();
        assert!(err.contains("batch_4w"), "{err}");
        // Fewer rows is just as wrong: a lost execution means a report was
        // built from a slice that was never computed for it.
        let json = pipeline_sample(121900, 121440);
        assert!(run_dedup_gate(
            &json,
            "rows_scanned_per_run",
            &["batch_1w", "batch_4w"],
            None
        )
        .is_err());
    }

    #[test]
    fn dedup_gate_rejects_missing_variants_and_degenerate_input() {
        let json = pipeline_sample(121900, 121900);
        assert!(run_dedup_gate(
            &json,
            "rows_scanned_per_run",
            &["batch_1w", "batch_8w"],
            None
        )
        .is_err());
        assert!(run_dedup_gate(&json, "rows_scanned_per_run", &["batch_1w"], None).is_err());
        assert!(run_dedup_gate(
            "{}",
            "rows_scanned_per_run",
            &["batch_1w", "batch_4w"],
            None
        )
        .is_err());
    }

    fn stream_sample(rows: [u64; 4], passes: [u64; 4]) -> String {
        let variants: Vec<String> = [1usize, 2, 4, 8]
            .iter()
            .zip(rows.iter().zip(&passes))
            .map(|(w, (r, p))| {
                format!(
                    r#"  {{"name": "stream_{w}w", "rows_scanned_per_run": {r}, "scan_passes": {p}}}"#
                )
            })
            .collect();
        format!("{{\"variants\": [\n{}\n]}}", variants.join(",\n"))
    }

    /// The streaming dedup invariant: for a fixed arrival order, rows and
    /// passes must be exactly equal across all four worker counts; a
    /// single drifted variant — anywhere in the list — fails the gate.
    #[test]
    fn dedup_gate_covers_streaming_worker_sweep() {
        let gated = ["stream_1w", "stream_2w", "stream_4w", "stream_8w"];
        let json = stream_sample([5060; 4], [11; 4]);
        let rows = run_dedup_gate(&json, "rows_scanned_per_run", &gated, None).unwrap();
        assert_eq!(rows.len(), 4);
        let passes = run_dedup_gate(&json, "scan_passes", &gated, None).unwrap();
        assert!(passes[3].contains("stream_8w"), "{passes:?}");
        // One duplicated execution at 8 workers: the dedup-gate fails.
        let json = stream_sample([5060, 5060, 5060, 5520], [11; 4]);
        let err = run_dedup_gate(&json, "rows_scanned_per_run", &gated, None).unwrap_err();
        assert!(err.contains("stream_8w"), "{err}");
        // A pass formed differently at 2 workers: just as fatal, even
        // with rows equal (a pass could have been split and re-merged).
        let json = stream_sample([5060; 4], [11, 12, 11, 11]);
        let err = run_dedup_gate(&json, "scan_passes", &gated, None).unwrap_err();
        assert!(err.contains("stream_2w"), "{err}");
    }

    #[test]
    fn dedup_gate_le_bound_pins_batch_at_or_below_sequential() {
        // Equal batch counts below the sequential_fresh bound: pass.
        let json = pipeline_sample(121900, 121900);
        let report = run_dedup_gate(
            &json,
            "rows_scanned_per_run",
            &["batch_1w", "batch_4w"],
            Some("sequential_fresh"),
        )
        .unwrap();
        assert_eq!(report.len(), 3, "{report:?}");
        assert!(report[2].contains("sequential_fresh"), "{report:?}");
        // Batch exceeding the bound: fail even though equal across workers.
        let json = pipeline_sample(999999, 999999);
        let err = run_dedup_gate(
            &json,
            "rows_scanned_per_run",
            &["batch_1w", "batch_4w"],
            Some("sequential_fresh"),
        )
        .unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        // A missing bound variant is an error, not a pass.
        let json = pipeline_sample(121900, 121900);
        assert!(run_dedup_gate(
            &json,
            "rows_scanned_per_run",
            &["batch_1w", "batch_4w"],
            Some("sequential_shared"),
        )
        .is_err());
    }

    fn chaos_sample(unsettled: u64, inflight: u64, bins_ok: u64, respawns: u64) -> String {
        format!(
            r#"{{"docs_per_cell": 10, "variants": [
  {{"name": "panic_1w", "workers": 1, "unsettled": 0, "inflight_len": 0, "bins_ok": 1, "respawns": 2, "max_respawns": 6}},
  {{"name": "combined_8w", "workers": 8, "unsettled": {unsettled}, "inflight_len": {inflight}, "bins_ok": {bins_ok}, "respawns": {respawns}, "max_respawns": 6}}
]}}"#
        )
    }

    #[test]
    fn chaos_gate_passes_clean_matrix() {
        let out = run_chaos_gate(&chaos_sample(0, 0, 1, 6)).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.report.len(), 2);
    }

    #[test]
    fn chaos_gate_fails_each_violation_class() {
        // A ticket that never settled.
        let out = run_chaos_gate(&chaos_sample(1, 0, 1, 0)).unwrap();
        assert_eq!(out.failures.len(), 1);
        assert!(
            out.failures[0].contains("never settled"),
            "{:?}",
            out.failures
        );
        // A dangling in-flight cache entry after drain.
        let out = run_chaos_gate(&chaos_sample(0, 3, 1, 0)).unwrap();
        assert!(out.failures[0].contains("dangling"), "{:?}", out.failures);
        // Outcome bins that do not reconcile.
        let out = run_chaos_gate(&chaos_sample(0, 0, 0, 0)).unwrap();
        assert!(out.failures[0].contains("reconcile"), "{:?}", out.failures);
        // A respawn budget overrun.
        let out = run_chaos_gate(&chaos_sample(0, 0, 1, 7)).unwrap();
        assert!(out.failures[0].contains("budget"), "{:?}", out.failures);
        // The clean cell still reports ok alongside the failing one.
        assert_eq!(out.report.len(), 1);
        assert!(out.report[0].contains("panic_1w"), "{:?}", out.report);
    }

    #[test]
    fn chaos_gate_rejects_malformed_input() {
        assert!(run_chaos_gate("{}").is_err());
        let missing = r#"{"variants": [{"name": "panic_1w", "unsettled": 0}]}"#;
        assert!(run_chaos_gate(missing).is_err());
    }

    #[test]
    fn min_gate_floors_normalized_speedup() {
        let json = r#"{"docs": 8, "speedup_batch_vs_sequential_fresh": 1.40}"#;
        let line = run_min_gate(json, "speedup_batch_vs_sequential_fresh", 1.2).unwrap();
        assert!(line.contains("1.40"), "{line}");
        let err = run_min_gate(json, "speedup_batch_vs_sequential_fresh", 1.5).unwrap_err();
        assert!(err.contains("below"), "{err}");
        assert!(run_min_gate(json, "no_such_field", 1.0).is_err());
    }

    fn skip_sample(matches: u64, skipped: u64, enc_rps: f64, plain_rps: f64) -> String {
        format!(
            r#"{{"rows": 10000, "block_corpus_rows": 1000000, "encoded_matches_plain": {matches},
  "variants": [
    {{"name": "dense_1t", "rows_per_sec": 95945350}},
    {{"name": "encoded_selective_1t", "rows_per_sec": 1250000000, "blocks_scanned": 2, "blocks_skipped": {skipped}, "blocks_skipped_pct": 99.6}},
    {{"name": "encoded_full_1t", "rows_per_sec": {enc_rps}, "blocks_scanned": 489, "blocks_skipped": 0, "blocks_skipped_pct": 0.0}},
    {{"name": "plain_full_1t", "rows_per_sec": {plain_rps}}}
]}}"#
        )
    }

    #[test]
    fn skip_gate_passes_when_skipping_and_parity_hold() {
        let json = skip_sample(1, 487, 1.2e8, 1.5e8);
        let report = run_skip_gate(
            &json,
            "encoded_selective_1t",
            "encoded_full_1t",
            "plain_full_1t",
            2.0,
        )
        .unwrap();
        assert_eq!(report.len(), 3, "{report:?}");
        assert!(report[1].contains("487"), "{report:?}");
        // The encoded path being *faster* than plain is fine too.
        let json = skip_sample(1, 487, 2.0e8, 1.5e8);
        assert!(run_skip_gate(
            &json,
            "encoded_selective_1t",
            "encoded_full_1t",
            "plain_full_1t",
            2.0
        )
        .is_ok());
    }

    #[test]
    fn skip_gate_fails_each_violation_class() {
        // Encoded results drifted from the plain scan: correctness trumps
        // everything else, whatever the counters say.
        let err = run_skip_gate(
            &skip_sample(0, 487, 1.2e8, 1.5e8),
            "encoded_selective_1t",
            "encoded_full_1t",
            "plain_full_1t",
            2.0,
        )
        .unwrap_err();
        assert!(err.contains("drifted"), "{err}");
        // Zero blocks skipped on the selective corpus.
        let err = run_skip_gate(
            &skip_sample(1, 0, 1.2e8, 1.5e8),
            "encoded_selective_1t",
            "encoded_full_1t",
            "plain_full_1t",
            2.0,
        )
        .unwrap_err();
        assert!(err.contains("zone-map"), "{err}");
        // Encoded full scan slower than the 2x bound.
        let err = run_skip_gate(
            &skip_sample(1, 487, 0.6e8, 1.5e8),
            "encoded_selective_1t",
            "encoded_full_1t",
            "plain_full_1t",
            2.0,
        )
        .unwrap_err();
        assert!(err.contains("slower"), "{err}");
    }

    #[test]
    fn skip_gate_rejects_missing_fields_and_bad_bound() {
        let json = skip_sample(1, 487, 1.2e8, 1.5e8);
        // A missing variant is an error, never a silent pass.
        assert!(run_skip_gate(&json, "no_such", "encoded_full_1t", "plain_full_1t", 2.0).is_err());
        assert!(run_skip_gate(
            &json,
            "encoded_selective_1t",
            "no_such",
            "plain_full_1t",
            2.0
        )
        .is_err());
        // A file without the parity flag predates the encoded path.
        assert!(run_skip_gate(
            "{\"variants\": []}",
            "encoded_selective_1t",
            "encoded_full_1t",
            "plain_full_1t",
            2.0
        )
        .is_err());
        // Nonsensical bound.
        assert!(run_skip_gate(
            &json,
            "encoded_selective_1t",
            "encoded_full_1t",
            "plain_full_1t",
            0.5
        )
        .is_err());
    }

    const OPCODE_SOURCE: &str = r#"
pub const MAGIC: [u8; 4] = *b"AGGV";
pub enum Opcode {
    /// Client handshake.
    Hello = 0x01,
    Submit = 0x02,
    HelloOk = 0x81,
    Error = 0x8F,
}
impl Opcode {
    pub const NOT_AN_OPCODE: u8 = 0x99;
}
"#;

    const OPCODE_DOCS: &str = "\
Some prose first.

| opcode | name | dir | meaning |
|---|---|---|---|
| 0x01 | Hello | C→S | Handshake |
| 0x02 | Submit | C→S | Submit one document |
| 0x81 | HelloOk | S→C | Handshake accepted |
| 0x8F | Error | S→C | Connection-level failure |
";

    #[test]
    fn docs_gate_passes_when_table_matches_enum() {
        let line = run_docs_gate(OPCODE_SOURCE, OPCODE_DOCS).unwrap();
        assert!(line.contains("4 opcodes"), "{line}");
    }

    #[test]
    fn docs_gate_catches_every_drift_direction() {
        // A variant the docs never mention.
        let missing = OPCODE_DOCS.replace("| 0x02 | Submit | C→S | Submit one document |\n", "");
        let err = run_docs_gate(OPCODE_SOURCE, &missing).unwrap_err();
        assert!(err.contains("Submit") && err.contains("missing"), "{err}");
        // A docs row whose byte value disagrees with the enum.
        let renumbered = OPCODE_DOCS.replace("| 0x02 | Submit |", "| 0x03 | Submit |");
        let err = run_docs_gate(OPCODE_SOURCE, &renumbered).unwrap_err();
        assert!(err.contains("0x02") && err.contains("0x03"), "{err}");
        // A docs row the enum does not define.
        let phantom = format!("{OPCODE_DOCS}| 0x42 | Phantom | C→S | Not real |\n");
        let err = run_docs_gate(OPCODE_SOURCE, &phantom).unwrap_err();
        assert!(err.contains("Phantom"), "{err}");
    }

    #[test]
    fn docs_gate_rejects_inputs_with_nothing_to_check() {
        assert!(run_docs_gate("fn main() {}", OPCODE_DOCS).is_err());
        assert!(run_docs_gate(OPCODE_SOURCE, "no table here").is_err());
    }

    fn partition_sample(
        fingerprints_match: u8,
        rows_4t: u64,
        partitions_2t: u64,
        flags_equal: u8,
    ) -> String {
        format!(
            r#"{{
  "docs": 8,
  "partitioned": [
    {{"name": "partitioned_1t", "threads_requested": 1, "threads_used": 1, "median_ns": 100, "rows_scanned_per_run": 600000, "scan_passes": 2, "partitions_scanned": 6, "partition_merges": 4}},
    {{"name": "partitioned_2t", "threads_requested": 2, "threads_used": 2, "median_ns": 90, "rows_scanned_per_run": 600000, "scan_passes": 2, "partitions_scanned": {partitions_2t}, "partition_merges": 4}},
    {{"name": "partitioned_4t", "threads_requested": 4, "threads_used": 3, "median_ns": 80, "rows_scanned_per_run": {rows_4t}, "scan_passes": 2, "partitions_scanned": 6, "partition_merges": 4}}
  ],
  "partition_corpus_rows": 300000,
  "partition_fingerprints_match": {fingerprints_match},
  "partition_rows_scanned_equal": {flags_equal},
  "partition_scan_passes_equal": {flags_equal}
}}"#
        )
    }

    #[test]
    fn partition_gate_passes_on_deterministic_counters() {
        let report = run_partition_gate(&partition_sample(1, 600000, 6, 1)).unwrap();
        assert_eq!(report.len(), 4, "{report:?}");
        assert!(report[0].contains("bit-identical"), "{report:?}");
        assert!(report[3].contains("partitioned_4t"), "{report:?}");
    }

    #[test]
    fn partition_gate_catches_every_violation() {
        // Fingerprint drift vs the span-1 control.
        let err = run_partition_gate(&partition_sample(0, 600000, 6, 1)).unwrap_err();
        assert!(err.contains("partition_fingerprints_match"), "{err}");
        // A worker-count-dependent rows_scanned recorded in the variants,
        // even with the emitter's flags claiming equality.
        let err = run_partition_gate(&partition_sample(1, 700000, 6, 1)).unwrap_err();
        assert!(
            err.contains("partitioned_4t") && err.contains("leaked"),
            "{err}"
        );
        // Emitter flags reporting inequality.
        let err = run_partition_gate(&partition_sample(1, 600000, 6, 0)).unwrap_err();
        assert!(err.contains("partition_rows_scanned_equal"), "{err}");
        // A variant that never fanned out.
        let err = run_partition_gate(&partition_sample(1, 600000, 0, 1)).unwrap_err();
        assert!(err.contains("0 partitions"), "{err}");
        // A file without the partitioned family at all.
        let err = run_partition_gate(r#"{"variants": []}"#).unwrap_err();
        assert!(err.contains("partitioned"), "{err}");
    }

    fn delta_sample(
        fingerprints_match: u8,
        delta_4w: u64,
        patched_2w: u64,
        work_equal: u8,
    ) -> String {
        format!(
            r#"{{
  "docs": 8,
  "append_reverify": [
    {{"name": "append_1w", "workers": 1, "reverify_median_ns": 100, "reverify_docs_per_sec": 80.0, "delta_rows_scanned": 16176, "grids_patched": 26, "rows_scanned_reverify": 622176, "rows_scanned_cold": 606000}},
    {{"name": "append_2w", "workers": 2, "reverify_median_ns": 90, "reverify_docs_per_sec": 88.0, "delta_rows_scanned": 16176, "grids_patched": {patched_2w}, "rows_scanned_reverify": 622176, "rows_scanned_cold": 606000}},
    {{"name": "append_4w", "workers": 4, "reverify_median_ns": 80, "reverify_docs_per_sec": 100.0, "delta_rows_scanned": {delta_4w}, "grids_patched": 26, "rows_scanned_reverify": 622176, "rows_scanned_cold": 606000}}
  ],
  "append_corpus_rows": 202000,
  "append_batch_rows": 2000,
  "append_fingerprints_match": {fingerprints_match},
  "append_patch_work_equal": {work_equal},
  "append_delta_fraction": 0.0267
}}"#
        )
    }

    #[test]
    fn delta_gate_passes_on_patched_counters() {
        let report = run_delta_gate(&delta_sample(1, 16176, 26, 1), 0.10).unwrap();
        assert_eq!(report.len(), 4, "{report:?}");
        assert!(report[0].contains("bit-identical"), "{report:?}");
        assert!(report[3].contains("append_4w"), "{report:?}");
    }

    #[test]
    fn delta_gate_catches_every_violation() {
        // Fingerprint drift vs a cold verification of the grown corpus.
        let err = run_delta_gate(&delta_sample(0, 16176, 26, 1), 0.10).unwrap_err();
        assert!(err.contains("append_fingerprints_match"), "{err}");
        // Emitter flag reporting worker-dependent patch work.
        let err = run_delta_gate(&delta_sample(1, 16176, 26, 0), 0.10).unwrap_err();
        assert!(err.contains("append_patch_work_equal"), "{err}");
        // A worker-count-dependent delta recorded in the variants, even
        // with the emitter's flag claiming equality.
        let err = run_delta_gate(&delta_sample(1, 17000, 26, 1), 0.10).unwrap_err();
        assert!(err.contains("append_4w") && err.contains("leaked"), "{err}");
        // Worker-count-dependent grids_patched.
        let err = run_delta_gate(&delta_sample(1, 16176, 30, 1), 0.10).unwrap_err();
        assert!(err.contains("append_2w") && err.contains("leaked"), "{err}");
        // A variant that never patched — the delta path silently dead.
        let err = run_delta_gate(&delta_sample(1, 16176, 0, 1), 0.10).unwrap_err();
        assert!(err.contains("0 grids"), "{err}");
        // The delta bound: a "patch" that rescans most of the corpus.
        let err = run_delta_gate(&delta_sample(1, 16176, 26, 1), 0.01).unwrap_err();
        assert!(err.contains("past the 1.0% bound"), "{err}");
        // A file without the append family at all.
        let err = run_delta_gate(r#"{"variants": []}"#, 0.10).unwrap_err();
        assert!(err.contains("append_reverify"), "{err}");
    }

    #[test]
    fn docs_gate_holds_against_the_real_files() {
        // The gate's CI defaults, resolved from the workspace root so the
        // unit test exercises the same pair CI does.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let source = std::fs::read_to_string(format!("{root}/crates/server/src/protocol.rs"))
            .expect("read protocol source");
        let docs = std::fs::read_to_string(format!("{root}/docs/protocol.md"))
            .expect("read protocol docs");
        let line = run_docs_gate(&source, &docs).unwrap();
        assert!(line.contains("13 opcodes"), "{line}");
    }
}
