//! Hand-built miniatures of the paper's own test cases.
//!
//! * [`nfl_suspensions`] — the running example of Figure 2 / Example 1:
//!   the FiveThirtyEight NFL-suspensions article with the "four lifetime
//!   bans" passage (including the erroneous "three were for repeated
//!   substance abuse": the data actually has four, per Table 9).
//! * [`campaign_donations`] — the Table 9 donations example: the article
//!   claims 64 distinct recipients, the data has 63.
//! * [`developer_survey`] — the Table 9 Stack Overflow example: the article
//!   claims 13% self-taught, the data rounds to 14%.

use crate::generator::TestCase;
use crate::spec::GroundTruthClaim;
use agg_relational::{
    execute_query, AggColumn, AggFunction, Database, Predicate, SimpleAggregateQuery, Table, Value,
};

fn truth(
    db: &Database,
    query: SimpleAggregateQuery,
    claimed: f64,
    spelled: bool,
) -> GroundTruthClaim {
    let true_value = execute_query(db, &query)
        .expect("built-in query valid")
        .expect("built-in query non-null");
    GroundTruthClaim {
        claimed_value: claimed,
        true_value,
        is_correct: agg_nlp::rounding::matches_value(true_value, claimed, sig_of(claimed), 0),
        query,
        spelled_out: spelled,
    }
}

fn sig_of(v: f64) -> u32 {
    let s = format!("{}", v.abs());
    let digits: Vec<char> = s.chars().filter(char::is_ascii_digit).collect();
    let stripped: Vec<char> = digits.iter().copied().skip_while(|c| *c == '0').collect();
    let mut stripped = stripped;
    if !s.contains('.') {
        while stripped.last() == Some(&'0') {
            stripped.pop();
        }
    }
    (stripped.len() as u32).max(1)
}

/// The paper's running example (Figure 2 / Example 1). The database holds
/// **four** repeated-substance-abuse lifetime bans, so the article's
/// "three" is erroneous — exactly the Table 9 finding ("the data was
/// updated on Sept. 22 ... the article text should also have been
/// updated").
pub fn nfl_suspensions() -> TestCase {
    // 16 suspensions: five lifetime bans (four repeated-substance-abuse,
    // one gambling) plus eleven fixed-length ones. Counts are arranged so
    // that no *other* simple aggregate accidentally evaluates to the
    // claimed values 5 and 3 — in the paper's full data set such collisions
    // are equally unlikely.
    let rows: Vec<(&str, &str, &str, i64)> = vec![
        (
            "hopkins",
            "indef",
            "substance abuse, repeated offense",
            1989,
        ),
        (
            "stringfellow",
            "indef",
            "substance abuse, repeated offense",
            1995,
        ),
        (
            "marshall",
            "indef",
            "substance abuse, repeated offense",
            2000,
        ),
        (
            "washington",
            "indef",
            "substance abuse, repeated offense",
            2014,
        ),
        ("hornung", "indef", "gambling", 1963),
        ("gordon", "16", "substance abuse", 2014),
        ("blackmon", "4", "substance abuse", 2012),
        ("miller", "8", "substance abuse", 2013),
        ("holmes", "10", "substance abuse", 2011),
        ("rice", "12", "personal conduct", 2014),
        ("peterson", "1", "personal conduct", 2014),
        ("hardy", "12", "personal conduct", 2015),
        ("brown", "1", "personal conduct", 2015),
        ("williams", "6", "peds", 2008),
        ("bosworth", "9", "peds", 2009),
        ("vincent", "2", "domestic violence", 2010),
    ];
    let mut table = Table::from_columns(
        "nflsuspensions",
        vec![
            ("name", rows.iter().map(|r| Value::from(r.0)).collect()),
            ("games", rows.iter().map(|r| Value::from(r.1)).collect()),
            ("category", rows.iter().map(|r| Value::from(r.2)).collect()),
            ("year", rows.iter().map(|r| Value::Int(r.3)).collect()),
        ],
    )
    .unwrap();
    table.schema.columns[1].description =
        Some("number of games suspended; indef for indefinite lifetime bans".into());
    table.schema.columns[2].description = Some("reason for the suspension".into());
    let mut db = Database::new("nfl-suspensions");
    db.add_table(table);

    let games = db.resolve("nflsuspensions", "games").unwrap();
    let category = db.resolve("nflsuspensions", "category").unwrap();

    // Claimed: five lifetime bans (data: 5 after the update — the article
    // text says "five previous lifetime bans" in our rendering so the
    // headline claim stays correct), three repeated substance abuse
    // (data: four → erroneous), one gambling (correct).
    let q_bans = SimpleAggregateQuery::count_star(vec![Predicate::new(games, "indef")]);
    let q_substance = SimpleAggregateQuery::count_star(vec![
        Predicate::new(games, "indef"),
        Predicate::new(category, "substance abuse, repeated offense"),
    ]);
    let q_gambling = SimpleAggregateQuery::count_star(vec![
        Predicate::new(games, "indef"),
        Predicate::new(category, "gambling"),
    ]);

    let ground_truth = vec![
        truth(&db, q_bans, 5.0, true),
        truth(&db, q_substance, 3.0, true),
        truth(&db, q_gambling, 1.0, true),
    ];

    let article_html = r#"<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only five previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"#
    .to_string();

    TestCase {
        name: "builtin-nfl".into(),
        domain_key: "builtin",
        db,
        article_html,
        ground_truth,
    }
}

/// The Table 9 campaign-donations example: the pair "have given money to 64
/// candidates", while the data counts 63 distinct recipients.
pub fn campaign_donations() -> TestCase {
    // 63 distinct recipients across 90 donations.
    let mut recipients = Vec::new();
    let mut amounts = Vec::new();
    let mut committees = Vec::new();
    for i in 0..90u32 {
        let r = i % 63;
        recipients.push(Value::Str(format!("candidate {r:02}")));
        amounts.push(Value::Int(500 + (i as i64 * 137) % 4500));
        committees.push(Value::Str(
            if i % 2 == 0 {
                "campaign fund"
            } else {
                "leadership pac"
            }
            .into(),
        ));
    }
    let mut table = Table::from_columns(
        "eshoopallone",
        vec![
            ("recipient", recipients),
            ("amount", amounts),
            ("committee", committees),
        ],
    )
    .unwrap();
    table.schema.columns[0].description = Some("candidate receiving the donation".into());
    let mut db = Database::new("donations");
    db.add_table(table);

    let recipient = db.resolve("eshoopallone", "recipient").unwrap();
    let q = SimpleAggregateQuery::new(
        AggFunction::CountDistinct,
        AggColumn::Column(recipient),
        vec![],
    );
    let ground_truth = vec![truth(&db, q, 64.0, false)];

    let article_html = r#"<title>Race in 'Waxman' Primary Involves Donating Dollars</title>
<h1>Giving to others</h1>
<p>Using their campaign fund-raising committees and leadership political
action committees separately, the pair have given money to 64 distinct
recipient candidates.</p>
"#
    .to_string();

    TestCase {
        name: "builtin-donations".into(),
        domain_key: "builtin",
        db,
        article_html,
        ground_truth,
    }
}

/// The Table 9 Stack Overflow example: "13% of respondents across the globe
/// tell us they are only self-taught" — the data yields ≈13.5%, which
/// rounds to 14%, so the claim is erroneous.
pub fn developer_survey() -> TestCase {
    // 27 of 200 respondents self-taught → 13.5%.
    let mut education = Vec::new();
    let mut country = Vec::new();
    let mut salary = Vec::new();
    for i in 0..200u32 {
        education.push(Value::Str(if i < 27 {
            "i'm self-taught".to_string()
        } else {
            [
                "bachelor degree",
                "master degree",
                "some college",
                "bootcamp",
            ][(i % 4) as usize]
                .to_string()
        }));
        country.push(Value::Str(
            ["germany", "india", "brazil", "canada", "france"][(i % 5) as usize].to_string(),
        ));
        salary.push(Value::Int(30_000 + (i as i64 * 631) % 90_000));
    }
    let mut table = Table::from_columns(
        "stackoverflow2016",
        vec![
            ("education", education),
            ("country", country),
            ("salary", salary),
        ],
    )
    .unwrap();
    table.schema.columns[0].description =
        Some("education level of the respondent, self-taught or formal degrees".into());
    let mut db = Database::new("stackoverflow");
    db.add_table(table);

    let education_col = db.resolve("stackoverflow2016", "education").unwrap();
    let q = SimpleAggregateQuery::new(
        AggFunction::Percentage,
        AggColumn::Star,
        vec![Predicate::new(education_col, "i'm self-taught")],
    );
    let ground_truth = vec![truth(&db, q, 13.0, false)];

    let article_html = r#"<title>Developer Survey Results 2016</title>
<h1>Education</h1>
<p>Formal training is no longer the default path into the field.
13% of respondents across the globe tell us they are only self-taught.</p>
"#
    .to_string();

    TestCase {
        name: "builtin-survey".into(),
        domain_key: "builtin",
        db,
        article_html,
        ground_truth,
    }
}

/// All built-in cases.
pub fn all_builtin() -> Vec<TestCase> {
    vec![nfl_suspensions(), campaign_donations(), developer_survey()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_nlp::claims::{detect_claims, ClaimDetectorConfig};
    use agg_nlp::structure::parse_document;

    #[test]
    fn nfl_ground_truth_matches_paper_table9() {
        let tc = nfl_suspensions();
        assert_eq!(tc.ground_truth.len(), 3);
        // "five lifetime bans" — correct in our updated data.
        assert!(tc.ground_truth[0].is_correct);
        assert_eq!(tc.ground_truth[0].true_value, 5.0);
        // "three were for repeated substance abuse" — data says 4: wrong.
        assert!(!tc.ground_truth[1].is_correct);
        assert_eq!(tc.ground_truth[1].true_value, 4.0);
        // "one was for gambling" — correct.
        assert!(tc.ground_truth[2].is_correct);
        assert_eq!(tc.ground_truth[2].true_value, 1.0);
    }

    #[test]
    fn donations_case_is_off_by_one() {
        let tc = campaign_donations();
        assert_eq!(tc.ground_truth[0].true_value, 63.0);
        assert!(!tc.ground_truth[0].is_correct, "claimed 64, actual 63");
    }

    #[test]
    fn survey_case_is_a_rounding_typo() {
        let tc = developer_survey();
        let g = &tc.ground_truth[0];
        assert!((g.true_value - 13.5).abs() < 1e-9);
        assert!(!g.is_correct, "13.5% rounds to 14, not 13");
    }

    #[test]
    fn builtin_articles_parse_and_claims_detected() {
        for tc in all_builtin() {
            let doc = parse_document(&tc.article_html);
            let detected = detect_claims(&doc, &ClaimDetectorConfig::default());
            assert_eq!(
                detected.len(),
                tc.ground_truth.len(),
                "{}: {:?}",
                tc.name,
                detected.iter().map(|c| c.number.value).collect::<Vec<_>>()
            );
            for (d, g) in detected.iter().zip(&tc.ground_truth) {
                assert!((d.number.value - g.claimed_value).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn builtin_dbs_validate() {
        for tc in all_builtin() {
            tc.db.validate().unwrap();
            assert!(tc.db.total_rows() > 0);
        }
    }
}
