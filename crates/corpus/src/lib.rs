//! # agg-corpus
//!
//! Test-case substrate for the AggChecker reproduction. The paper evaluates
//! on 53 public articles (New York Times, FiveThirtyEight, Vox, Stack
//! Overflow surveys, Wikipedia) with 392 hand-labelled claims; those
//! articles and labels are not redistributable, so this crate generates
//! synthetic test cases that reproduce the corpus's *measured statistical
//! properties* (Appendix B of the paper):
//!
//! * ~7.4 claims per article, 12% of claims erroneous, clustered so that
//!   roughly a third of articles contain at least one error (Fig. 9(a));
//! * claim queries with 0/1/2 predicates in a ≈17/61/23 split (Fig. 9(c));
//! * a strong per-document theme: the top-3 instances of each query
//!   characteristic cover ≈90% of a document's claims (Fig. 9(b));
//! * context spread: predicate keywords often live in headlines or
//!   preceding sentences rather than the claim sentence itself;
//! * multi-claim sentences (≈29%) and implicit aggregation functions
//!   (≈30%);
//! * paraphrase via synonyms, exercising the WordNet substitute.
//!
//! [`builtin`] additionally provides hand-built miniatures of the paper's
//! own examples (the NFL-suspensions running example of Figure 2, the
//! campaign-donations and Stack Overflow rows of Table 9).

pub mod builtin;
pub mod generator;
pub mod joincase;
pub mod spec;
pub mod stats;
pub mod vocab;

pub use generator::{
    generate_corpus, generate_multi_doc_case, generate_test_case, MultiDocCase, TestCase,
};
pub use joincase::generate_join_case;
pub use spec::{CorpusSpec, GroundTruthClaim};
pub use stats::{corpus_stats, CorpusStats};
