//! Corpus specification and ground-truth records.

use agg_relational::SimpleAggregateQuery;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic corpus. Defaults mirror the statistics the
/// paper reports for its 53-article test set (Appendix B).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Number of articles (the paper has 53).
    pub n_articles: usize,
    /// RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
    /// Data set row-count range.
    pub min_rows: usize,
    pub max_rows: usize,
    /// Claims per article (the paper averages 392/53 ≈ 7.4, with two long
    /// articles above 15).
    pub min_claims: usize,
    pub max_claims: usize,
    /// Probability that an article is "sloppy"; sloppy articles draw
    /// erroneous claims at `sloppy_error_rate`, the rest at
    /// `careful_error_rate`. Defaults yield ≈12% erroneous claims overall
    /// with errors clustered in about a third of articles.
    pub sloppy_article_rate: f64,
    pub sloppy_error_rate: f64,
    pub careful_error_rate: f64,
    /// Probability that a claim's primary predicate keyword is *omitted*
    /// from the claim sentence and only appears in the enclosing headline
    /// (context spread, §4.3).
    pub context_spread_rate: f64,
    /// Probability that two consecutive claims share one sentence (the
    /// paper measures 29%).
    pub multi_claim_rate: f64,
    /// Probability that a column/value word is replaced by a synonym in
    /// text (exercises the WordNet substitute).
    pub synonym_rate: f64,
    /// Predicate-count distribution (must sum to 1): probabilities of
    /// 0, 1, and 2 predicates (the paper measures 17/61/23, Fig. 9(c)).
    pub predicates_dist: [f64; 3],
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            n_articles: 53,
            seed: 0x5EED_A66C,
            min_rows: 60,
            max_rows: 600,
            min_claims: 4,
            max_claims: 12,
            sloppy_article_rate: 0.34,
            sloppy_error_rate: 0.32,
            careful_error_rate: 0.015,
            context_spread_rate: 0.45,
            multi_claim_rate: 0.29,
            synonym_rate: 0.25,
            predicates_dist: [0.17, 0.61, 0.22],
        }
    }
}

impl CorpusSpec {
    /// A small, fast corpus for unit tests and smoke runs.
    pub fn small(n_articles: usize, seed: u64) -> CorpusSpec {
        CorpusSpec {
            n_articles,
            seed,
            min_rows: 40,
            max_rows: 120,
            min_claims: 3,
            max_claims: 7,
            ..Default::default()
        }
    }
}

/// The ground truth for one generated claim, in document order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruthClaim {
    /// The value as written in the text (possibly rounded, possibly wrong).
    pub claimed_value: f64,
    /// The exact query result on the data.
    pub true_value: f64,
    /// The matching query (Definition 1's ground-truth query).
    pub query: SimpleAggregateQuery,
    /// Whether the claim is correct under admissible rounding.
    pub is_correct: bool,
    /// Whether the claimed value was spelled out in words.
    pub spelled_out: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_paper_statistics() {
        let s = CorpusSpec::default();
        assert_eq!(s.n_articles, 53);
        let sum: f64 = s.predicates_dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Expected error rate ≈ 0.34·0.32 + 0.66·0.015 ≈ 0.12.
        let expected = s.sloppy_article_rate * s.sloppy_error_rate
            + (1.0 - s.sloppy_article_rate) * s.careful_error_rate;
        assert!((expected - 0.12).abs() < 0.01, "{expected}");
    }

    #[test]
    fn small_spec_shrinks_work() {
        let s = CorpusSpec::small(3, 42);
        assert_eq!(s.n_articles, 3);
        assert!(s.max_rows <= 120);
    }
}
