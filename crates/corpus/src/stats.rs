//! Corpus statistics and claim alignment — inputs to Figure 9 and the
//! accuracy experiments.

use crate::generator::TestCase;
use crate::spec::GroundTruthClaim;
use agg_relational::{AggColumn, ColumnRef};
use serde::Serialize;
use std::collections::HashMap;

/// Aggregate statistics over a corpus (Appendix B of the paper).
#[derive(Debug, Clone, Serialize)]
pub struct CorpusStats {
    pub articles: usize,
    pub claims: usize,
    pub erroneous_claims: usize,
    pub articles_with_errors: usize,
    /// Claims per predicate count 0/1/2/3+ (Figure 9(c)).
    pub by_predicate_count: [usize; 4],
    /// Mean per-document coverage of the top-N instances per query
    /// characteristic, for N = 1..=max_n (Figure 9(b)): index 0 is top-1.
    pub topn_coverage: Vec<f64>,
}

/// Compute corpus statistics.
pub fn corpus_stats(corpus: &[TestCase], max_n: usize) -> CorpusStats {
    let mut claims = 0;
    let mut erroneous = 0;
    let mut articles_with_errors = 0;
    let mut by_pred = [0usize; 4];
    let mut coverage_sums = vec![0.0f64; max_n];
    let mut coverage_docs = 0usize;

    for tc in corpus {
        claims += tc.ground_truth.len();
        let wrong = tc.erroneous_count();
        erroneous += wrong;
        if wrong > 0 {
            articles_with_errors += 1;
        }
        for g in &tc.ground_truth {
            by_pred[g.query.predicates.len().min(3)] += 1;
        }
        if !tc.ground_truth.is_empty() {
            coverage_docs += 1;
            let cov = document_topn_coverage(&tc.ground_truth, max_n);
            for (i, c) in cov.iter().enumerate() {
                coverage_sums[i] += c;
            }
        }
    }
    CorpusStats {
        articles: corpus.len(),
        claims,
        erroneous_claims: erroneous,
        articles_with_errors,
        by_predicate_count: by_pred,
        topn_coverage: coverage_sums
            .iter()
            .map(|s| s / coverage_docs.max(1) as f64)
            .collect(),
    }
}

/// Per-document top-N coverage averaged over the three query
/// characteristics (aggregation function, aggregation column, predicate
/// column set) — Figure 9(b) of the paper.
pub fn document_topn_coverage(truth: &[GroundTruthClaim], max_n: usize) -> Vec<f64> {
    let n = truth.len() as f64;
    // Frequency tables per characteristic.
    let mut fns: HashMap<&'static str, usize> = HashMap::new();
    let mut cols: HashMap<String, usize> = HashMap::new();
    let mut pred_sets: HashMap<Vec<ColumnRef>, usize> = HashMap::new();
    for g in truth {
        *fns.entry(g.query.function.sql_name()).or_default() += 1;
        let col_key = match g.query.column {
            AggColumn::Star => "*".to_string(),
            AggColumn::Column(c) => format!("{}:{}", c.table, c.column),
        };
        *cols.entry(col_key).or_default() += 1;
        let mut set = g.query.predicate_columns();
        set.sort_unstable();
        set.dedup();
        *pred_sets.entry(set).or_default() += 1;
    }
    let coverage_of = |counts: Vec<usize>, top: usize| -> f64 {
        let mut sorted = counts;
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.iter().take(top).sum::<usize>() as f64 / n
    };
    (1..=max_n)
        .map(|top| {
            let f = coverage_of(fns.values().copied().collect(), top);
            let c = coverage_of(cols.values().copied().collect(), top);
            let p = coverage_of(pred_sets.values().copied().collect(), top);
            (f + c + p) / 3.0
        })
        .collect()
}

/// Align detected claim values (document order) with ground truth
/// (document order): greedy two-pointer matching on the claimed value.
/// Returns, per ground-truth claim, the index of the matching detected
/// claim, or `None` if detection missed it.
pub fn align_claims(detected_values: &[f64], truth: &[GroundTruthClaim]) -> Vec<Option<usize>> {
    let mut out = Vec::with_capacity(truth.len());
    let mut next = 0usize;
    for g in truth {
        let mut found = None;
        let mut j = next;
        while j < detected_values.len() {
            if (detected_values[j] - g.claimed_value).abs() < 1e-9 {
                found = Some(j);
                next = j + 1;
                break;
            }
            j += 1;
        }
        out.push(found);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_corpus;
    use crate::spec::CorpusSpec;
    use agg_relational::{AggFunction, SimpleAggregateQuery};

    fn toy_truth(fns: &[AggFunction]) -> Vec<GroundTruthClaim> {
        fns.iter()
            .map(|f| GroundTruthClaim {
                claimed_value: 1.0,
                true_value: 1.0,
                query: SimpleAggregateQuery::new(*f, AggColumn::Star, vec![]),
                is_correct: true,
                spelled_out: false,
            })
            .collect()
    }

    #[test]
    fn topn_coverage_is_monotone_and_bounded() {
        let truth = toy_truth(&[
            AggFunction::Count,
            AggFunction::Count,
            AggFunction::Count,
            AggFunction::Avg,
        ]);
        let cov = document_topn_coverage(&truth, 3);
        assert!(cov[0] <= cov[1] && cov[1] <= cov[2]);
        assert!(cov[2] <= 1.0 + 1e-12);
        // Top-1: fn covers 3/4, col 4/4, pred set 4/4 → (0.75+1+1)/3.
        assert!((cov[0] - (0.75 + 1.0 + 1.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn corpus_stats_counts() {
        let corpus = generate_corpus(&CorpusSpec::small(6, 11));
        let stats = corpus_stats(&corpus, 5);
        assert_eq!(stats.articles, 6);
        assert!(stats.claims > 0);
        assert!(stats.by_predicate_count[1] > 0);
        assert_eq!(stats.topn_coverage.len(), 5);
        // Strong themes: top-3 coverage should be high, echoing Fig. 9(b).
        assert!(
            stats.topn_coverage[2] > 0.75,
            "top-3 coverage {:.3}",
            stats.topn_coverage[2]
        );
    }

    #[test]
    fn align_handles_misses_and_duplicates() {
        let truth = vec![
            GroundTruthClaim {
                claimed_value: 4.0,
                true_value: 4.0,
                query: SimpleAggregateQuery::count_star(vec![]),
                is_correct: true,
                spelled_out: true,
            },
            GroundTruthClaim {
                claimed_value: 4.0,
                true_value: 4.0,
                query: SimpleAggregateQuery::count_star(vec![]),
                is_correct: true,
                spelled_out: true,
            },
            GroundTruthClaim {
                claimed_value: 9.0,
                true_value: 9.0,
                query: SimpleAggregateQuery::count_star(vec![]),
                is_correct: true,
                spelled_out: true,
            },
        ];
        let detected = [4.0, 4.0, 7.0];
        let aligned = align_claims(&detected, &truth);
        assert_eq!(aligned, vec![Some(0), Some(1), None]);
    }
}
