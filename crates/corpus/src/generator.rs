//! The synthetic test-case generator.
//!
//! Everything is deterministic in the spec's seed. Each test case gets a
//! single-table data set drawn from a [`crate::vocab::Domain`], a document
//! theme (concentrated distributions over aggregation functions, the
//! aggregation column, and the predicate columns — the property Figure 9(b)
//! of the paper measures), and an HTML article whose claims are rendered
//! from templates with context spread, multi-claim sentences, paraphrase
//! via synonyms, and a controlled share of erroneous values.

use crate::spec::{CorpusSpec, GroundTruthClaim};
use crate::vocab::{Domain, DOMAINS};
use agg_nlp::numbers::parse_number_mentions;
use agg_nlp::rounding::{matches_claim, round_significant};
use agg_nlp::synonyms::SynonymDict;
use agg_nlp::tokenize::tokenize;
use agg_relational::{
    execute_query, AggColumn, AggFunction, ColumnRef, Database, Predicate, SimpleAggregateQuery,
    Table, Value,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One generated test case: data set + article + ground truth.
#[derive(Debug, Clone)]
pub struct TestCase {
    pub name: String,
    pub domain_key: &'static str,
    pub db: Database,
    pub article_html: String,
    /// Ground truth, in document order of the claims.
    pub ground_truth: Vec<GroundTruthClaim>,
}

impl TestCase {
    /// Number of erroneous claims.
    pub fn erroneous_count(&self) -> usize {
        self.ground_truth.iter().filter(|g| !g.is_correct).count()
    }
}

/// Generate the whole corpus. Every 13th article (starting at index 4) is
/// a two-table join case (see [`crate::joincase`]); the rest cycle through
/// the single-table domains.
pub fn generate_corpus(spec: &CorpusSpec) -> Vec<TestCase> {
    (0..spec.n_articles)
        .map(|i| {
            if i % 13 == 4 {
                crate::joincase::generate_join_case(spec, i)
            } else {
                generate_test_case(spec, i)
            }
        })
        .collect()
}

/// Generate the `index`-th test case of a corpus (deterministic).
pub fn generate_test_case(spec: &CorpusSpec, index: usize) -> TestCase {
    let mut rng = StdRng::seed_from_u64(
        spec.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)),
    );
    let domain = &DOMAINS[index % DOMAINS.len()];
    let db = generate_database(&mut rng, spec, domain, index);
    let theme = Theme::sample(&mut rng, domain, &db);
    let sloppy = rng.gen_bool(spec.sloppy_article_rate);
    let error_rate = if sloppy {
        spec.sloppy_error_rate
    } else {
        spec.careful_error_rate
    };
    let n_claims = rng.gen_range(spec.min_claims..=spec.max_claims);

    // Draw claims from the theme.
    let mut drafts: Vec<ClaimDraft> = Vec::new();
    let mut attempts = 0;
    while drafts.len() < n_claims && attempts < n_claims * 30 {
        attempts += 1;
        if let Some(draft) = draw_claim(&mut rng, spec, domain, &db, &theme, error_rate) {
            drafts.push(draft);
        }
    }

    let (article_html, ground_truth) = render_article(&mut rng, spec, domain, &theme, drafts);
    TestCase {
        name: format!("{}-{index:02}", domain.key),
        domain_key: domain.key,
        db,
        article_html,
        ground_truth,
    }
}

/// One shared data set summarized by several articles — the batched
/// multi-document workload (`agg_core::BatchVerifier`): an organization's
/// document stream over a single fact base.
#[derive(Debug, Clone)]
pub struct MultiDocCase {
    pub name: String,
    pub domain_key: &'static str,
    pub db: Database,
    /// One HTML article per document, each with its own theme and claims.
    pub articles: Vec<String>,
    /// Ground truth per article, aligned with `articles`.
    pub ground_truth: Vec<Vec<GroundTruthClaim>>,
}

/// Generate `n_docs` distinct articles over **one** database (deterministic
/// in the spec's seed, `index`, and `n_docs`). Every article draws its own
/// theme, so the documents overlap in predicate columns and literals — the
/// property that makes cross-document cube-cache reuse pay off — without
/// being copies of each other.
pub fn generate_multi_doc_case(spec: &CorpusSpec, index: usize, n_docs: usize) -> MultiDocCase {
    // The db and all of its articles derive from this one case seed.
    let case_seed = spec.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    let mut rng = StdRng::seed_from_u64(case_seed);
    let domain = &DOMAINS[index % DOMAINS.len()];
    let db = generate_database(&mut rng, spec, domain, index);

    let mut articles = Vec::with_capacity(n_docs);
    let mut ground_truth = Vec::with_capacity(n_docs);
    for doc in 0..n_docs {
        let mut rng = StdRng::seed_from_u64(
            case_seed ^ (0xD1B5_4A32_D192_ED03u64.wrapping_mul(doc as u64 + 1)),
        );
        let theme = Theme::sample(&mut rng, domain, &db);
        let sloppy = rng.gen_bool(spec.sloppy_article_rate);
        let error_rate = if sloppy {
            spec.sloppy_error_rate
        } else {
            spec.careful_error_rate
        };
        let n_claims = rng.gen_range(spec.min_claims..=spec.max_claims);
        let mut drafts: Vec<ClaimDraft> = Vec::new();
        let mut attempts = 0;
        while drafts.len() < n_claims && attempts < n_claims * 30 {
            attempts += 1;
            if let Some(draft) = draw_claim(&mut rng, spec, domain, &db, &theme, error_rate) {
                drafts.push(draft);
            }
        }
        let (html, gt) = render_article(&mut rng, spec, domain, &theme, drafts);
        articles.push(html);
        ground_truth.push(gt);
    }
    MultiDocCase {
        name: format!("{}-batch-{index:02}x{n_docs}", domain.key),
        domain_key: domain.key,
        db,
        articles,
        ground_truth,
    }
}

// ---------------------------------------------------------------------------
// Data generation
// ---------------------------------------------------------------------------

fn generate_database(
    rng: &mut StdRng,
    spec: &CorpusSpec,
    domain: &Domain,
    index: usize,
) -> Database {
    let rows = rng.gen_range(spec.min_rows..=spec.max_rows);
    let mut columns: Vec<(&str, Vec<Value>)> = Vec::new();
    for cat in domain.categorical {
        // Zipf-ish skew over the value pool.
        let weights: Vec<f64> = (0..cat.values.len())
            .map(|k| 1.0 / (k as f64 + 1.2))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut data = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut x = rng.gen_range(0.0..total);
            let mut chosen = 0;
            for (k, w) in weights.iter().enumerate() {
                if x < *w {
                    chosen = k;
                    break;
                }
                x -= w;
            }
            data.push(Value::Str(cat.values[chosen].to_string()));
        }
        columns.push((cat.name, data));
    }
    for num in domain.numeric {
        let data = (0..rows)
            .map(|_| Value::Int(rng.gen_range(num.min..=num.max)))
            .collect();
        columns.push((num.name, data));
    }
    for name in domain.extra_bool {
        let p = 0.15 + 0.7 * rng.gen::<f64>();
        let data = (0..rows)
            .map(|_| Value::Str(if rng.gen_bool(p) { "yes" } else { "no" }.into()))
            .collect();
        columns.push((name, data));
    }
    let table = Table::from_columns(format!("{}{index:02}", domain.table_name), columns)
        .expect("rectangular generated table");
    let mut db = Database::new(format!("{}-{index:02}", domain.key));
    db.add_table(table);
    db
}

// ---------------------------------------------------------------------------
// Theme
// ---------------------------------------------------------------------------

/// A document theme: concentrated distributions over query characteristics.
struct Theme {
    /// `(function, weight)` — first entries dominate.
    fn_weights: Vec<(AggFunction, f64)>,
    /// The main numeric column for value aggregates.
    main_numeric: ColumnRef,
    /// Primary and secondary predicate columns (categorical).
    primary_cat: usize,
    secondary_cat: usize,
    /// Section values: the primary-column values the article is organized
    /// around.
    section_values: Vec<String>,
}

impl Theme {
    fn sample(rng: &mut StdRng, domain: &Domain, db: &Database) -> Theme {
        let fn_weights = vec![
            (AggFunction::Count, 0.50),
            (AggFunction::Percentage, 0.18),
            (AggFunction::Avg, 0.10),
            (AggFunction::Sum, 0.07),
            (AggFunction::Max, 0.05),
            (AggFunction::Min, 0.03),
            (AggFunction::CountDistinct, 0.04),
            (AggFunction::ConditionalProbability, 0.01),
            (AggFunction::Median, 0.02),
        ];
        // Main numeric column: avoid year-like columns for Min/Max realism.
        let year_like = ["season", "cycle", "opened", "year"];
        let numeric_choices: Vec<usize> = domain
            .numeric
            .iter()
            .enumerate()
            .filter(|(_, n)| !year_like.contains(&n.name))
            .map(|(i, _)| i)
            .collect();
        let ni = *numeric_choices.choose(rng).expect("numeric column");
        let table = 0usize;
        let main_numeric = db
            .resolve(db.table(table).name(), domain.numeric[ni].name)
            .expect("numeric column resolves");
        let primary_cat = rng.gen_range(0..domain.categorical.len());
        let secondary_cat = (primary_cat + 1 + rng.gen_range(0..domain.categorical.len() - 1))
            % domain.categorical.len();
        // Sections: the 2-3 most frequent primary values (most frequent
        // first thanks to the Zipf skew in data generation).
        let max_sections = 3.min(domain.categorical[primary_cat].values.len());
        let n_sections = rng.gen_range(2..=max_sections);
        let section_values: Vec<String> = domain.categorical[primary_cat]
            .values
            .iter()
            .take(n_sections)
            .map(|v| v.to_string())
            .collect();
        Theme {
            fn_weights,
            main_numeric,
            primary_cat,
            secondary_cat,
            section_values,
        }
    }

    fn sample_function(&self, rng: &mut StdRng) -> AggFunction {
        let total: f64 = self.fn_weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for (f, w) in &self.fn_weights {
            if x < *w {
                return *f;
            }
            x -= w;
        }
        AggFunction::Count
    }
}

// ---------------------------------------------------------------------------
// Claim drawing
// ---------------------------------------------------------------------------

/// A claim before rendering.
struct ClaimDraft {
    query: SimpleAggregateQuery,
    true_value: f64,
    claimed_value: f64,
    /// Text of the claimed value, exactly as it will appear.
    claimed_text: String,
    is_correct: bool,
    spelled_out: bool,
    /// Section assignment: index into theme.section_values, or `None` for
    /// the overview section.
    section: Option<usize>,
    /// Whether the primary predicate's value words are omitted from the
    /// claim sentence (context spread).
    spread: bool,
    /// Function used (for template choice).
    function: AggFunction,
    /// Aggregation column noun, if any.
    agg_noun: Option<String>,
    /// Rendered predicate value phrases (primary first).
    pred_phrases: Vec<String>,
}

fn draw_claim(
    rng: &mut StdRng,
    spec: &CorpusSpec,
    domain: &Domain,
    db: &Database,
    theme: &Theme,
    error_rate: f64,
) -> Option<ClaimDraft> {
    let table_name = db.table(0).name().to_string();
    // Predicate count from the spec's 0/1/2 distribution.
    let r: f64 = rng.gen();
    let n_preds = if r < spec.predicates_dist[0] {
        0
    } else if r < spec.predicates_dist[0] + spec.predicates_dist[1] {
        1
    } else {
        2
    };
    let mut function = theme.sample_function(rng);
    if n_preds == 0
        && matches!(
            function,
            AggFunction::Percentage | AggFunction::ConditionalProbability
        )
    {
        function = AggFunction::Count;
    }
    if n_preds < 2 && function == AggFunction::ConditionalProbability {
        function = AggFunction::Percentage;
    }

    // Aggregation column.
    let (column, agg_noun) = match function {
        AggFunction::Count | AggFunction::Percentage | AggFunction::ConditionalProbability => {
            (AggColumn::Star, None)
        }
        AggFunction::CountDistinct => {
            // Count distinct values of a categorical column (not the
            // predicate columns used below).
            let ci = (theme.secondary_cat + 1) % domain.categorical.len();
            let col = db.resolve(&table_name, domain.categorical[ci].name).ok()?;
            (
                AggColumn::Column(col),
                Some(domain.categorical[ci].noun.to_string()),
            )
        }
        _ => {
            let noun = domain
                .numeric
                .iter()
                .find(|n| {
                    db.resolve(&table_name, n.name)
                        .is_ok_and(|c| c == theme.main_numeric)
                })
                .map(|n| n.noun.to_string());
            (AggColumn::Column(theme.main_numeric), noun)
        }
    };

    // Predicates: primary section value first, then a secondary value.
    let mut predicates = Vec::new();
    let mut pred_phrases = Vec::new();
    let mut section = None;
    if n_preds >= 1 {
        let si = rng.gen_range(0..theme.section_values.len());
        let value = theme.section_values[si].clone();
        let col = db
            .resolve(&table_name, domain.categorical[theme.primary_cat].name)
            .ok()?;
        predicates.push(Predicate::new(col, value.as_str()));
        pred_phrases.push(value);
        section = Some(si);
    }
    if n_preds >= 2 {
        let pool = domain.categorical[theme.secondary_cat].values;
        // Take a frequent value so conjunctive counts stay non-trivial.
        let value = pool[rng.gen_range(0..pool.len().min(3))].to_string();
        let col = db
            .resolve(&table_name, domain.categorical[theme.secondary_cat].name)
            .ok()?;
        predicates.push(Predicate::new(col, value.as_str()));
        pred_phrases.push(value);
    }

    let query = SimpleAggregateQuery::new(function, column, predicates);
    let true_value = execute_query(db, &query).ok()??;
    if !true_value.is_finite() {
        return None;
    }
    // Counts of zero or one-row averages make for unnatural claims.
    if matches!(function, AggFunction::Count | AggFunction::CountDistinct) && true_value < 1.0 {
        return None;
    }

    // Render the claimed value.
    let is_correct = !rng.gen_bool(error_rate);
    let sig = rng.gen_range(2..=3u32);
    let rounded = if true_value.fract() == 0.0 && true_value.abs() < 1000.0 {
        true_value
    } else {
        round_significant(true_value, sig)
    };
    let claimed_value = if is_correct {
        rounded
    } else {
        perturb(rng, rounded, true_value)?
    };
    if claimed_value < 0.0 {
        return None;
    }
    let is_percentage = matches!(
        function,
        AggFunction::Percentage | AggFunction::ConditionalProbability
    );
    let spelled_out = claimed_value.fract() == 0.0
        && claimed_value <= 12.0
        && !is_percentage
        && rng.gen_bool(0.6);
    let claimed_text = render_number(claimed_value, spelled_out, is_percentage);

    // Verify the label against the checker's own matcher by parsing the
    // rendered text back — guarantees label consistency.
    let probe = format!("x {claimed_text} y");
    let mentions = parse_number_mentions(&tokenize(&probe));
    let mention = mentions.first()?;
    let parsed_matches = matches_claim(true_value, mention);
    if parsed_matches != is_correct {
        return None; // rendering/rounding edge: drop and redraw
    }
    // Claimed value must not look like a bare year (the detector skips
    // those).
    if !mention.is_percentage
        && !mention.spelled_out
        && !mention.had_separator
        && mention.decimal_places == 0
        && (1000.0..=2100.0).contains(&mention.value)
    {
        return None;
    }

    let spread = n_preds >= 1 && rng.gen_bool(spec.context_spread_rate);
    Some(ClaimDraft {
        query,
        true_value,
        claimed_value: mention.value,
        claimed_text,
        is_correct,
        spelled_out,
        section,
        spread,
        function,
        agg_noun,
        pred_phrases,
    })
}

/// Shift a rounded value so that no admissible rounding of `true_value`
/// reaches it.
fn perturb(rng: &mut StdRng, rounded: f64, true_value: f64) -> Option<f64> {
    // One unit at the value's last significant digit.
    let unit = if rounded == 0.0 {
        1.0
    } else {
        let magnitude = rounded.abs().log10().floor();
        10f64.powf(magnitude - 1.0).max(1.0)
    };
    for step in [1.0, 2.0, -1.0, -2.0, 3.0] {
        let candidate = rounded + step * unit;
        if candidate < 0.0 {
            continue;
        }
        // Quick screen before the authoritative re-parse in the caller.
        if (candidate - true_value).abs() > unit * 0.6 {
            let _ = rng;
            return Some(candidate);
        }
    }
    None
}

/// Format a claimed value as article text.
fn render_number(value: f64, spelled: bool, percentage: bool) -> String {
    const WORDS: [&str; 13] = [
        "zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten",
        "eleven", "twelve",
    ];
    if percentage {
        return format!("{}%", trim_float(value));
    }
    if spelled && value.fract() == 0.0 && (0.0..=12.0).contains(&value) {
        return WORDS[value as usize].to_string();
    }
    if value.fract() == 0.0 && value.abs() >= 1000.0 {
        return with_separators(value as i64);
    }
    trim_float(value)
}

fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

fn with_separators(mut v: i64) -> String {
    let negative = v < 0;
    v = v.abs();
    let mut groups = Vec::new();
    loop {
        groups.push(format!("{:03}", v % 1000));
        v /= 1000;
        if v == 0 {
            break;
        }
    }
    let mut s = groups
        .iter()
        .rev()
        .cloned()
        .collect::<Vec<_>>()
        .join(",")
        .trim_start_matches('0')
        .to_string();
    if s.starts_with(',') {
        s = format!("0{s}");
    }
    if s.is_empty() {
        s = "0".into();
    }
    if negative {
        format!("-{s}")
    } else {
        s
    }
}

// ---------------------------------------------------------------------------
// Article rendering
// ---------------------------------------------------------------------------

/// Filler sentences (strictly number-free).
const FILLERS: &[&str] = &[
    "The picture is more nuanced than the league office admits.",
    "Observers have long suspected as much.",
    "The pattern holds across the whole data set.",
    "Critics see this as evidence of a deeper problem.",
    "That figure surprised nearly everybody we asked.",
    "The trend shows little sign of slowing down.",
];

fn render_article(
    rng: &mut StdRng,
    spec: &CorpusSpec,
    domain: &Domain,
    theme: &Theme,
    drafts: Vec<ClaimDraft>,
) -> (String, Vec<GroundTruthClaim>) {
    let synonyms = SynonymDict::embedded();
    let mut html = String::new();
    html.push_str(&format!("<title>{}</title>\n", domain.title));
    let mut ground_truth = Vec::new();

    // Group drafts: overview (no section) then one section per value.
    let mut overview: Vec<ClaimDraft> = Vec::new();
    let mut sections: Vec<Vec<ClaimDraft>> = (0..theme.section_values.len())
        .map(|_| Vec::new())
        .collect();
    for d in drafts {
        match d.section {
            None => overview.push(d),
            Some(si) => sections[si].push(d),
        }
    }

    html.push_str("<h1>Overview</h1>\n");
    render_section(
        rng,
        spec,
        domain,
        &synonyms,
        &mut html,
        &mut ground_truth,
        overview,
        None,
    );
    for (si, bucket) in sections.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let value = &theme.section_values[si];
        html.push_str(&format!("<h1>The {} {}</h1>\n", value, domain.row_noun));
        render_section(
            rng,
            spec,
            domain,
            &synonyms,
            &mut html,
            &mut ground_truth,
            bucket,
            Some(value.clone()),
        );
    }
    (html, ground_truth)
}

#[allow(clippy::too_many_arguments)]
fn render_section(
    rng: &mut StdRng,
    spec: &CorpusSpec,
    domain: &Domain,
    synonyms: &SynonymDict,
    html: &mut String,
    ground_truth: &mut Vec<GroundTruthClaim>,
    drafts: Vec<ClaimDraft>,
    section_value: Option<String>,
) {
    let mut sentences: Vec<String> = Vec::new();
    if let Some(filler) = FILLERS.choose(rng) {
        sentences.push(filler.to_string());
    }
    let mut i = 0;
    while i < drafts.len() {
        let d = &drafts[i];
        // Multi-claim sentence: merge with the next claim when both are
        // simple counts in this section.
        let mergeable = i + 1 < drafts.len()
            && rng.gen_bool(spec.multi_claim_rate)
            && d.function == AggFunction::Count
            && drafts[i + 1].function == AggFunction::Count
            && !d.pred_phrases.is_empty()
            && !drafts[i + 1].pred_phrases.is_empty();
        if mergeable {
            let e = &drafts[i + 1];
            let first = clause_for(rng, domain, synonyms, d, section_value.as_deref(), true);
            let second = clause_for(rng, domain, synonyms, e, section_value.as_deref(), true);
            sentences.push(format!("{}, {}.", capitalize(&first), second));
            push_truth(ground_truth, d);
            push_truth(ground_truth, e);
            i += 2;
            continue;
        }
        let clause = clause_for(rng, domain, synonyms, d, section_value.as_deref(), false);
        sentences.push(format!("{}.", capitalize(&clause)));
        push_truth(ground_truth, d);
        i += 1;
    }
    if sentences.len() > 1 && rng.gen_bool(0.5) {
        if let Some(filler) = FILLERS.choose(rng) {
            sentences.push(filler.to_string());
        }
    }
    // Two paragraphs when long.
    if sentences.len() > 4 {
        let mid = sentences.len() / 2;
        html.push_str(&format!("<p>{}</p>\n", sentences[..mid].join(" ")));
        html.push_str(&format!("<p>{}</p>\n", sentences[mid..].join(" ")));
    } else {
        html.push_str(&format!("<p>{}</p>\n", sentences.join(" ")));
    }
}

fn push_truth(ground_truth: &mut Vec<GroundTruthClaim>, d: &ClaimDraft) {
    ground_truth.push(GroundTruthClaim {
        claimed_value: d.claimed_value,
        true_value: d.true_value,
        query: d.query.clone(),
        is_correct: d.is_correct,
        spelled_out: d.spelled_out,
    });
}

/// Render one claim as a clause (no final period, not capitalized).
fn clause_for(
    rng: &mut StdRng,
    domain: &Domain,
    synonyms: &SynonymDict,
    d: &ClaimDraft,
    section_value: Option<&str>,
    compact: bool,
) -> String {
    let rows = maybe_synonym(rng, synonyms, domain.row_noun, 0.25);
    let n = &d.claimed_text;
    // The primary predicate phrase is omitted under context spread (the
    // enclosing headline carries it) unless this claim sits outside its
    // value's section.
    let primary = d.pred_phrases.first().cloned();
    let in_own_section = section_value.is_some() && primary.as_deref() == section_value;
    let show_primary = match &primary {
        None => None,
        Some(p) => {
            if d.spread && in_own_section {
                None
            } else {
                Some(maybe_synonym(rng, synonyms, p, 0.2))
            }
        }
    };
    let secondary = d
        .pred_phrases
        .get(1)
        .map(|p| maybe_synonym(rng, synonyms, p, 0.2));
    let subject = match (&show_primary, &secondary) {
        (Some(p), Some(s)) => format!("{p} {rows} marked {s}"),
        (Some(p), None) => format!("{p} {rows}"),
        (None, Some(s)) => format!("such {rows} marked {s}"),
        (None, None) => {
            if d.pred_phrases.is_empty() {
                rows.clone()
            } else {
                format!("such {rows}")
            }
        }
    };
    match d.function {
        AggFunction::Count => {
            if compact {
                format!("{n} were {subject}")
            } else {
                match rng.gen_range(0..3) {
                    0 => format!("there were {n} {subject}"),
                    1 => format!("the data shows {n} {subject}"),
                    _ => format!("in total, {n} {subject} appear in the records"),
                }
            }
        }
        AggFunction::CountDistinct => {
            let noun = d.agg_noun.clone().unwrap_or_else(|| "value".into());
            format!("the {subject} span {n} different {noun} groups")
        }
        AggFunction::Sum => {
            let noun = d.agg_noun.clone().unwrap_or_else(|| "value".into());
            format!("the {subject} add up to a combined {noun} of {n}")
        }
        AggFunction::Avg => {
            let noun = maybe_synonym(
                rng,
                synonyms,
                &d.agg_noun.clone().unwrap_or_else(|| "value".into()),
                0.3,
            );
            format!("the average {noun} across {subject} was {n}")
        }
        AggFunction::Median => {
            let noun = d.agg_noun.clone().unwrap_or_else(|| "value".into());
            format!("the median {noun} across {subject} was {n}")
        }
        AggFunction::Min => {
            let noun = d.agg_noun.clone().unwrap_or_else(|| "value".into());
            format!("the lowest {noun} among {subject} was {n}")
        }
        AggFunction::Max => {
            let noun = d.agg_noun.clone().unwrap_or_else(|| "value".into());
            format!("the highest {noun} among {subject} was {n}")
        }
        AggFunction::Percentage => {
            format!("{n} of all {rows} were {subject}")
        }
        AggFunction::ConditionalProbability => {
            let p = show_primary.clone().unwrap_or_else(|| "such".into());
            let s = secondary.clone().unwrap_or_else(|| "flagged".into());
            format!("among {p} {rows}, the chance of being marked {s} was {n}")
        }
    }
}

fn maybe_synonym(rng: &mut StdRng, synonyms: &SynonymDict, word: &str, rate: f64) -> String {
    if rng.gen_bool(rate) {
        // Only single-word phrases paraphrase cleanly.
        if !word.contains(' ') {
            let options = synonyms.synonyms(word);
            if let Some(s) = options.first() {
                return s.clone();
            }
        }
    }
    word.to_string()
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_nlp::claims::{detect_claims, ClaimDetectorConfig};
    use agg_nlp::structure::parse_document;

    fn small() -> CorpusSpec {
        CorpusSpec::small(8, 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_test_case(&small(), 0);
        let b = generate_test_case(&small(), 0);
        assert_eq!(a.article_html, b.article_html);
        assert_eq!(a.ground_truth.len(), b.ground_truth.len());
        assert_eq!(a.db.table(0).row_count(), b.db.table(0).row_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_test_case(&CorpusSpec::small(1, 1), 0);
        let b = generate_test_case(&CorpusSpec::small(1, 2), 0);
        assert_ne!(a.article_html, b.article_html);
    }

    #[test]
    fn multi_doc_case_shares_one_db_with_distinct_articles() {
        let case = generate_multi_doc_case(&small(), 0, 4);
        assert_eq!(case.articles.len(), 4);
        assert_eq!(case.ground_truth.len(), 4);
        // Deterministic in (spec, index, n_docs).
        let again = generate_multi_doc_case(&small(), 0, 4);
        assert_eq!(case.articles, again.articles);
        assert_eq!(case.db.table(0).row_count(), again.db.table(0).row_count());
        // The documents are not copies of each other.
        for i in 0..case.articles.len() {
            for j in (i + 1)..case.articles.len() {
                assert_ne!(case.articles[i], case.articles[j], "docs {i} and {j}");
            }
        }
        // Each article carries detectable claims over the shared db.
        for html in &case.articles {
            let doc = parse_document(html);
            assert!(
                !detect_claims(&doc, &ClaimDetectorConfig::default()).is_empty(),
                "article without claims"
            );
        }
    }

    #[test]
    fn claims_match_detector_in_order() {
        for i in 0..8 {
            let tc = generate_test_case(&small(), i);
            let doc = parse_document(&tc.article_html);
            let detected = detect_claims(&doc, &ClaimDetectorConfig::default());
            assert_eq!(
                detected.len(),
                tc.ground_truth.len(),
                "case {i}: detector sees exactly the generated claims\n{}",
                tc.article_html
            );
            for (d, g) in detected.iter().zip(&tc.ground_truth) {
                assert!(
                    (d.number.value - g.claimed_value).abs() < 1e-9,
                    "case {i}: claim order/value mismatch: {} vs {}",
                    d.number.value,
                    g.claimed_value
                );
            }
        }
    }

    #[test]
    fn ground_truth_queries_evaluate_to_true_values() {
        for i in 0..4 {
            let tc = generate_test_case(&small(), i);
            for g in &tc.ground_truth {
                let v = execute_query(&tc.db, &g.query).unwrap().unwrap();
                assert!((v - g.true_value).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn correctness_labels_agree_with_matcher() {
        for i in 0..8 {
            let tc = generate_test_case(&small(), i);
            let doc = parse_document(&tc.article_html);
            let detected = detect_claims(&doc, &ClaimDetectorConfig::default());
            for (d, g) in detected.iter().zip(&tc.ground_truth) {
                assert_eq!(
                    matches_claim(g.true_value, &d.number),
                    g.is_correct,
                    "case {i}: label inconsistent for claimed {} (true {})",
                    g.claimed_value,
                    g.true_value
                );
            }
        }
    }

    #[test]
    fn corpus_error_rate_is_plausible() {
        let spec = CorpusSpec {
            n_articles: 40,
            ..CorpusSpec::default()
        };
        let corpus = generate_corpus(&spec);
        let total: usize = corpus.iter().map(|t| t.ground_truth.len()).sum();
        let wrong: usize = corpus.iter().map(TestCase::erroneous_count).sum();
        let rate = wrong as f64 / total as f64;
        assert!(
            (0.04..0.25).contains(&rate),
            "erroneous rate {rate} out of plausible band ({wrong}/{total})"
        );
        // Errors cluster: some articles have none.
        assert!(corpus.iter().any(|t| t.erroneous_count() == 0));
    }

    #[test]
    fn predicate_distribution_tracks_spec() {
        let spec = CorpusSpec {
            n_articles: 30,
            ..CorpusSpec::default()
        };
        let corpus = generate_corpus(&spec);
        let mut by_count = [0usize; 4];
        let mut total = 0usize;
        for tc in &corpus {
            for g in &tc.ground_truth {
                by_count[g.query.predicates.len().min(3)] += 1;
                total += 1;
            }
        }
        let share = |k: usize| by_count[k] as f64 / total as f64;
        assert!(share(1) > share(0), "one predicate dominates: {by_count:?}");
        assert!(share(1) > share(2), "{by_count:?}");
        assert!(share(0) > 0.05 && share(2) > 0.05, "{by_count:?}");
    }

    #[test]
    fn articles_are_valid_html_with_headlines() {
        let tc = generate_test_case(&small(), 1);
        assert!(tc.article_html.contains("<title>"));
        assert!(tc.article_html.contains("<h1>"));
        assert!(tc.article_html.contains("<p>"));
        let doc = parse_document(&tc.article_html);
        assert!(doc.root.subsections.len() >= 2, "overview + value sections");
    }

    #[test]
    fn domains_rotate() {
        let spec = small();
        let keys: Vec<&str> = (0..4)
            .map(|i| generate_test_case(&spec, i).domain_key)
            .collect();
        assert_eq!(keys.len(), 4);
        let mut unique = keys.clone();
        unique.dedup();
        assert_eq!(unique.len(), 4, "{keys:?}");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(with_separators(1234567), "1,234,567");
        assert_eq!(with_separators(1000), "1,000");
        assert_eq!(with_separators(12), "012".trim_start_matches('0'));
        assert_eq!(render_number(4.0, true, false), "four");
        assert_eq!(render_number(13.0, false, true), "13%");
        assert_eq!(render_number(97000.0, false, false), "97,000");
        assert_eq!(render_number(3.5, false, false), "3.5");
    }
}
