//! Multi-table test cases: a star schema with a PK-FK join.
//!
//! The paper's query model spans *"an equi-join between tables connected
//! via primary key-foreign key constraints"* (Definition 2); most public
//! data sets are single CSVs, but the engine must handle joins. These cases
//! generate a `teams` dimension table and a `players` fact table; claims
//! with a predicate on the dimension attribute (`division`) force the
//! checker to discover the join path.

use crate::generator::TestCase;
use crate::spec::{CorpusSpec, GroundTruthClaim};
use agg_nlp::numbers::parse_number_mentions;
use agg_nlp::rounding::{matches_claim, round_significant};
use agg_nlp::tokenize::tokenize;
use agg_relational::{
    execute_query, AggColumn, AggFunction, Database, ForeignKey, Predicate, SimpleAggregateQuery,
    Table, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIVISIONS: [&str; 3] = ["atlantic", "pacific", "central"];
const POSITIONS: [&str; 3] = ["goalie", "defender", "forward"];
const TEAM_NAMES: [&str; 9] = [
    "ravens", "sharks", "wolves", "bears", "eagles", "comets", "pilots", "miners", "giants",
];

/// Generate one join test case (deterministic in the spec seed and index).
pub fn generate_join_case(spec: &CorpusSpec, index: usize) -> TestCase {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x10A1 ^ (index as u64) << 7);
    let n_teams = rng.gen_range(6..=9usize);
    let n_players = rng.gen_range(spec.min_rows..=spec.max_rows);

    // Dimension table: teams(team_id PK, team, division).
    let team_divisions: Vec<&str> = (0..n_teams)
        .map(|_| DIVISIONS[rng.gen_range(0..DIVISIONS.len())])
        .collect();
    let teams = Table::from_columns(
        "teams",
        vec![
            (
                "team_id",
                (0..n_teams).map(|i| Value::Int(i as i64)).collect(),
            ),
            (
                "team",
                (0..n_teams)
                    .map(|i| Value::Str(TEAM_NAMES[i].to_string()))
                    .collect(),
            ),
            (
                "division",
                team_divisions
                    .iter()
                    .map(|d| Value::Str(d.to_string()))
                    .collect(),
            ),
        ],
    )
    .expect("teams table");

    // Fact table: players(team_id FK, position, goals).
    let mut team_col = Vec::with_capacity(n_players);
    let mut position_col = Vec::with_capacity(n_players);
    let mut goals_col = Vec::with_capacity(n_players);
    for _ in 0..n_players {
        team_col.push(Value::Int(rng.gen_range(0..n_teams) as i64));
        position_col.push(Value::Str(
            POSITIONS[rng.gen_range(0..POSITIONS.len())].to_string(),
        ));
        goals_col.push(Value::Int(rng.gen_range(0..40)));
    }
    let players = Table::from_columns(
        "players",
        vec![
            ("team_id", team_col),
            ("position", position_col),
            ("goals", goals_col),
        ],
    )
    .expect("players table");

    let mut db = Database::new(format!("league-{index:02}"));
    let teams_idx = db.add_table(teams);
    let players_idx = db.add_table(players);
    db.add_foreign_key(ForeignKey {
        from_table: players_idx,
        from_column: 0,
        to_table: teams_idx,
        to_column: 0,
    })
    .expect("valid FK");

    let division_col = db.resolve("teams", "division").expect("division");
    let position_col_ref = db.resolve("players", "position").expect("position");
    let goals_col_ref = db.resolve("players", "goals").expect("goals");

    let sloppy = rng.gen_bool(spec.sloppy_article_rate);
    let error_rate = if sloppy {
        spec.sloppy_error_rate
    } else {
        spec.careful_error_rate
    };

    // Claims: total, one per division (join!), one per position, and one
    // average-goals-per-division (join + numeric aggregate).
    let mut queries: Vec<(SimpleAggregateQuery, String)> = Vec::new();
    queries.push((
        SimpleAggregateQuery::count_star(vec![]),
        "the league database lists {n} players overall".into(),
    ));
    let used_divisions: Vec<&str> = DIVISIONS
        .iter()
        .filter(|d| team_divisions.contains(d))
        .copied()
        .take(2)
        .collect();
    for d in &used_divisions {
        queries.push((
            SimpleAggregateQuery::count_star(vec![Predicate::new(division_col, *d)]),
            format!("{{n}} players skate for {d} division teams"),
        ));
    }
    queries.push((
        SimpleAggregateQuery::count_star(vec![Predicate::new(position_col_ref, "goalie")]),
        "{n} of them are goalie players".into(),
    ));
    if let Some(d) = used_divisions.first() {
        queries.push((
            SimpleAggregateQuery::count_star(vec![
                Predicate::new(division_col, *d),
                Predicate::new(position_col_ref, "defender"),
            ]),
            format!("the {d} division ices {{n}} defender players"),
        ));
        queries.push((
            SimpleAggregateQuery::new(
                AggFunction::Avg,
                AggColumn::Column(goals_col_ref),
                vec![Predicate::new(division_col, *d)],
            ),
            format!("the average goals across {d} division players was {{n}}"),
        ));
    }

    // Render the article + ground truth.
    let mut html = String::from("<title>Around the League: Divisions by the Numbers</title>\n");
    html.push_str("<h1>League overview</h1>\n<p>");
    let mut ground_truth = Vec::new();
    let mut sentences = Vec::new();
    for (query, template) in queries {
        let Some(true_value) = execute_query(&db, &query).ok().flatten() else {
            continue;
        };
        if true_value < 1.0 {
            continue;
        }
        let is_correct = !rng.gen_bool(error_rate);
        let rounded = if true_value.fract() == 0.0 {
            true_value
        } else {
            round_significant(true_value, 3)
        };
        let claimed = if is_correct {
            rounded
        } else {
            rounded + if rng.gen_bool(0.5) { 1.0 } else { 2.0 }
        };
        let text = if claimed.fract() == 0.0 {
            format!("{}", claimed as i64)
        } else {
            format!("{claimed:.1}")
        };
        // Verify the label through the checker's own parser/matcher.
        let probe = format!("x {text} y");
        let mentions = parse_number_mentions(&tokenize(&probe));
        let Some(mention) = mentions.first() else {
            continue;
        };
        if matches_claim(true_value, mention) != is_correct {
            continue;
        }
        sentences.push(capitalize(&template.replace("{n}", &text)) + ".");
        ground_truth.push(GroundTruthClaim {
            claimed_value: mention.value,
            true_value,
            query,
            is_correct,
            spelled_out: false,
        });
    }
    html.push_str(&sentences.join(" "));
    html.push_str("</p>\n");

    TestCase {
        name: format!("league-{index:02}"),
        domain_key: "league",
        db,
        article_html: html,
        ground_truth,
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_nlp::claims::{detect_claims, ClaimDetectorConfig};
    use agg_nlp::structure::parse_document;

    #[test]
    fn join_case_is_well_formed() {
        let tc = generate_join_case(&CorpusSpec::small(1, 77), 0);
        assert_eq!(tc.db.table_count(), 2);
        assert_eq!(tc.db.foreign_keys().len(), 1);
        tc.db.validate().unwrap();
        assert!(tc.ground_truth.len() >= 3, "{}", tc.article_html);
    }

    #[test]
    fn join_claims_need_the_join_path() {
        let tc = generate_join_case(&CorpusSpec::small(1, 77), 0);
        let crosses = tc
            .ground_truth
            .iter()
            .filter(|g| g.query.tables_referenced().len() > 1)
            .count();
        assert!(crosses >= 1, "at least one claim spans both tables");
    }

    #[test]
    fn detector_alignment_holds() {
        for i in 0..3 {
            let tc = generate_join_case(&CorpusSpec::small(1, 13), i);
            let doc = parse_document(&tc.article_html);
            let detected = detect_claims(&doc, &ClaimDetectorConfig::default());
            assert_eq!(detected.len(), tc.ground_truth.len(), "{}", tc.article_html);
            for (d, g) in detected.iter().zip(&tc.ground_truth) {
                assert!((d.number.value - g.claimed_value).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ground_truth_evaluates_via_join() {
        let tc = generate_join_case(&CorpusSpec::small(1, 21), 1);
        for g in &tc.ground_truth {
            let v = execute_query(&tc.db, &g.query).unwrap().unwrap();
            assert!((v - g.true_value).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_join_case(&CorpusSpec::small(1, 5), 2);
        let b = generate_join_case(&CorpusSpec::small(1, 5), 2);
        assert_eq!(a.article_html, b.article_html);
    }
}
