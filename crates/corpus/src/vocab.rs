//! Domain vocabularies for the synthetic corpus.
//!
//! The paper's articles span sports, politics, economy, and developer
//! surveys; each [`Domain`] here provides a realistic table name, row noun,
//! categorical columns with value pools, and numeric columns with ranges,
//! so generated data sets and articles read like their real counterparts.

/// One categorical column: name, text noun, and its value pool.
#[derive(Debug, Clone, Copy)]
pub struct CatColumn {
    pub name: &'static str,
    /// How text refers to the column ("reason", "state", …).
    pub noun: &'static str,
    pub values: &'static [&'static str],
}

/// One numeric column: name, text noun, and sampling range.
#[derive(Debug, Clone, Copy)]
pub struct NumColumn {
    pub name: &'static str,
    pub noun: &'static str,
    pub min: i64,
    pub max: i64,
}

/// A topical domain.
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    pub key: &'static str,
    pub table_name: &'static str,
    /// Plural noun for rows ("suspensions", "respondents", …).
    pub row_noun: &'static str,
    pub title: &'static str,
    pub categorical: &'static [CatColumn],
    pub numeric: &'static [NumColumn],
    /// Extra yes/no columns (wide-survey style). They inflate the candidate
    /// query space like the paper's 154-column Stack Overflow data set but
    /// never become a document theme.
    pub extra_bool: &'static [&'static str],
}

/// The four domains, cycled over articles.
pub const DOMAINS: &[Domain] = &[
    Domain {
        key: "sports",
        table_name: "suspensions",
        row_noun: "suspensions",
        title: "A League's Uneven History of Punishing Misconduct",
        categorical: &[
            CatColumn {
                name: "category",
                noun: "reason",
                values: &[
                    "gambling",
                    "substance abuse",
                    "peds",
                    "personal conduct",
                    "domestic violence",
                    "deflating footballs",
                    "bounty program",
                ],
            },
            CatColumn {
                name: "team",
                noun: "team",
                values: &[
                    "ravens", "browns", "cowboys", "patriots", "saints", "raiders", "packers",
                    "steelers",
                ],
            },
            CatColumn {
                name: "outcome",
                noun: "outcome",
                values: &["upheld", "reduced", "overturned", "settled"],
            },
        ],
        numeric: &[
            NumColumn {
                name: "games",
                noun: "games",
                min: 0,
                max: 16,
            },
            NumColumn {
                name: "fine",
                noun: "fine",
                min: 0,
                max: 500_000,
            },
            NumColumn {
                name: "season",
                noun: "season",
                min: 2005,
                max: 2016,
            },
        ],
        extra_bool: &[],
    },
    Domain {
        key: "survey",
        table_name: "respondents",
        row_noun: "respondents",
        title: "What Our Annual Developer Survey Says",
        categorical: &[
            CatColumn {
                name: "education",
                noun: "education",
                values: &[
                    "self-taught",
                    "bachelor degree",
                    "master degree",
                    "bootcamp",
                    "doctorate",
                    "some college",
                ],
            },
            CatColumn {
                name: "occupation",
                noun: "occupation",
                values: &[
                    "developer",
                    "manager",
                    "designer",
                    "analyst",
                    "student",
                    "administrator",
                ],
            },
            CatColumn {
                name: "country",
                noun: "country",
                values: &[
                    "germany",
                    "india",
                    "brazil",
                    "canada",
                    "france",
                    "japan",
                    "australia",
                ],
            },
        ],
        numeric: &[
            NumColumn {
                name: "salary",
                noun: "salary",
                min: 20_000,
                max: 180_000,
            },
            NumColumn {
                name: "experience",
                noun: "experience",
                min: 0,
                max: 30,
            },
            NumColumn {
                name: "age",
                noun: "age",
                min: 18,
                max: 65,
            },
        ],
        extra_bool: &[
            "uses_python",
            "uses_java",
            "uses_rust",
            "uses_javascript",
            "uses_go",
            "uses_sql",
            "uses_cloud",
            "uses_linux",
            "uses_windows",
            "uses_docker",
            "wants_remote",
            "open_source_contributor",
            "has_degree",
            "job_hunting",
            "attends_meetups",
            "writes_tests",
            "on_call",
            "manages_people",
        ],
    },
    Domain {
        key: "politics",
        table_name: "donations",
        row_noun: "donations",
        title: "Money in the Primary: Who Gave and Who Got",
        categorical: &[
            CatColumn {
                name: "party",
                noun: "party",
                values: &["democratic", "republican", "independent", "libertarian"],
            },
            CatColumn {
                name: "state",
                noun: "state",
                values: &[
                    "california",
                    "texas",
                    "ohio",
                    "florida",
                    "virginia",
                    "iowa",
                    "nevada",
                ],
            },
            CatColumn {
                name: "recipient",
                noun: "recipient",
                values: &[
                    "senate campaign",
                    "house campaign",
                    "governor race",
                    "action committee",
                    "party fund",
                ],
            },
        ],
        numeric: &[
            NumColumn {
                name: "amount",
                noun: "amount",
                min: 50,
                max: 10_000,
            },
            NumColumn {
                name: "donors",
                noun: "donors",
                min: 1,
                max: 400,
            },
            NumColumn {
                name: "cycle",
                noun: "cycle",
                min: 2008,
                max: 2016,
            },
        ],
        extra_bool: &[],
    },
    Domain {
        key: "economy",
        table_name: "stores",
        row_noun: "stores",
        title: "Retail Winners and Losers, by the Numbers",
        categorical: &[
            CatColumn {
                name: "sector",
                noun: "sector",
                values: &[
                    "grocery",
                    "clothing",
                    "electronics",
                    "furniture",
                    "pharmacy",
                    "hardware",
                ],
            },
            CatColumn {
                name: "region",
                noun: "region",
                values: &["northeast", "midwest", "south", "west", "pacific"],
            },
            CatColumn {
                name: "status",
                noun: "status",
                values: &["open", "closed", "relocated"],
            },
        ],
        numeric: &[
            NumColumn {
                name: "revenue",
                noun: "revenue",
                min: 100_000,
                max: 5_000_000,
            },
            NumColumn {
                name: "employees",
                noun: "employees",
                min: 3,
                max: 250,
            },
            NumColumn {
                name: "opened",
                noun: "opened",
                min: 1995,
                max: 2016,
            },
        ],
        extra_bool: &[],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_are_well_formed() {
        assert_eq!(DOMAINS.len(), 4);
        for d in DOMAINS {
            assert!(d.categorical.len() >= 3, "{}", d.key);
            assert!(d.numeric.len() >= 3, "{}", d.key);
            for c in d.categorical {
                assert!(c.values.len() >= 3, "{}.{}", d.key, c.name);
            }
            for n in d.numeric {
                assert!(n.min < n.max, "{}.{}", d.key, n.name);
            }
        }
    }

    #[test]
    fn column_names_are_distinct_within_domain() {
        for d in DOMAINS {
            let mut names: Vec<&str> = d
                .categorical
                .iter()
                .map(|c| c.name)
                .chain(d.numeric.iter().map(|n| n.name))
                .collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(before, names.len(), "{}", d.key);
        }
    }
}
