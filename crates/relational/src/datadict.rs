//! Data-dictionary parsing.
//!
//! §4.2 of the paper: *"the AggChecker also offers a parser for common data
//! dictionary formats. A data dictionary associates database columns with
//! additional explanations. If a data dictionary is provided, we add for each
//! column the data dictionary description to its associated keywords."*
//!
//! Two common formats are supported:
//!
//! 1. **Delimited lines** — `column: description` or `column - description`
//!    or `column<TAB>description`, one entry per line.
//! 2. **Two-column CSV** — header optional; first column is the column name,
//!    second the description.

use crate::csv::parse_csv;
use crate::table::Table;

/// One dictionary entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictEntry {
    pub column: String,
    pub description: String,
}

/// Parse a data dictionary document into entries. Unrecognized lines are
/// skipped; the format is auto-detected per line, so mixed files work.
pub fn parse_data_dictionary(input: &str) -> Vec<DictEntry> {
    // Try CSV first when the document parses into ≥2 columns throughout.
    if let Ok(rows) = parse_csv(input) {
        let csv_like = rows.len() > 1 && rows.iter().all(|r| r.len() >= 2);
        if csv_like {
            let mut entries: Vec<DictEntry> = rows
                .iter()
                .map(|r| DictEntry {
                    column: r[0].trim().to_string(),
                    description: r[1..].join(", ").trim().to_string(),
                })
                .filter(|e| !e.column.is_empty() && !e.description.is_empty())
                .collect();
            // Drop a header row like "column,description".
            if let Some(first) = entries.first() {
                let lc = first.column.to_ascii_lowercase();
                let ld = first.description.to_ascii_lowercase();
                if (lc.contains("column") || lc.contains("field") || lc.contains("variable"))
                    && (ld.contains("desc") || ld.contains("meaning") || ld.contains("explanation"))
                {
                    entries.remove(0);
                }
            }
            if !entries.is_empty() {
                return entries;
            }
        }
    }
    // Fallback: line-delimited `name: description` / `name - description`.
    let mut entries = Vec::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let split = line
            .split_once(':')
            .or_else(|| line.split_once('\t'))
            .or_else(|| line.split_once(" - "));
        if let Some((name, desc)) = split {
            let name = name.trim();
            let desc = desc.trim();
            if !name.is_empty() && !desc.is_empty() && name.split_whitespace().count() <= 4 {
                entries.push(DictEntry {
                    column: name.to_string(),
                    description: desc.to_string(),
                });
            }
        }
    }
    entries
}

/// Attach dictionary descriptions to the matching columns of a table
/// (case-insensitive name match). Returns how many entries were applied.
pub fn apply_data_dictionary(table: &mut Table, entries: &[DictEntry]) -> usize {
    let mut applied = 0;
    for entry in entries {
        if let Some(idx) = table.schema.column_index(&entry.column) {
            table.schema.columns[idx].description = Some(entry.description.clone());
            applied += 1;
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn parses_colon_lines() {
        let entries = parse_data_dictionary(
            "games: number of games suspended, 'indef' for lifetime bans\n\
             category: reason for the suspension\n",
        );
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].column, "games");
        assert!(entries[0].description.contains("lifetime"));
    }

    #[test]
    fn parses_csv_dictionary_with_header() {
        let entries =
            parse_data_dictionary("column,description\ngames,games suspended\ncategory,reason\n");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].column, "category");
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let entries = parse_data_dictionary("# data dictionary\n\ngames: games suspended\n");
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn applies_to_table() {
        let mut t = Table::from_columns(
            "t",
            vec![
                ("games", vec![Value::Str("indef".into())]),
                ("other", vec![Value::Int(0)]),
            ],
        )
        .unwrap();
        let entries = parse_data_dictionary("GAMES: number of games suspended\nmissing: x\n");
        let applied = apply_data_dictionary(&mut t, &entries);
        assert_eq!(applied, 1);
        assert!(t.schema.columns[0]
            .description
            .as_deref()
            .unwrap()
            .contains("suspended"));
        assert!(t.schema.columns[1].description.is_none());
    }

    #[test]
    fn dash_separated_lines() {
        let entries = parse_data_dictionary("salary - annual salary in USD\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].column, "salary");
    }
}
