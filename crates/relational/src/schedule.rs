//! The cube-task scheduler: cubes as the unit of parallel work.
//!
//! The paper's cost model (§5/§6) is dominated by executing merged CUBE
//! queries, and the claims of one document — let alone the documents of a
//! batch — need many *independent* cubes. Instead of parallelizing rows
//! within one cube and running cubes serially, this module makes the
//! **cube task** the schedulable unit:
//!
//! * a [`CubeTask`] owns one [`CubeQuery`] plus the single-flight
//!   [`FlightGuard`]s it must publish into the shared [`EvalCache`](crate::cache::EvalCache) when it finishes;
//! * a [`CubeScheduler`] is a shared work queue that any number of scoped
//!   worker threads drain. Claim evaluators submit whole waves of tasks
//!   (every cube of every claim of a document at once) and then *help*
//!   drain the queue until their own tasks are done ([`CubeScheduler::drive`]),
//!   so a submitter is never idle while work is pending and a pool of one
//!   degenerates to exact sequential execution;
//! * batch verification shares **one** scheduler across all documents: a
//!   worker that runs out of documents keeps executing other documents'
//!   cube tasks ([`CubeScheduler::run_worker`]) until the batch closes.
//!
//! Tasks execute their scan *sequentially* ([`CubeOptions::default`]):
//! parallelism comes from running many cubes at once, which keeps f64
//! accumulation order — and therefore every report — bit-identical across
//! worker counts and scheduling orders.
//!
//! # Deadlock freedom
//!
//! The submit protocol is: probe the cache (claiming flights), submit every
//! task won, **then** drive the queue until the submitted tasks finish, and
//! only after that block on [`FlightWaiter`](crate::cache::FlightWaiter)s owned by other threads. A
//! thread therefore never waits on a flight before its own tasks are
//! published-or-executed, and every flight being waited on belongs to a
//! task that is either queued (any driver can pick it up) or already
//! running; a poisoned flight wakes its waiters for a retry rather than
//! wedging them.

use crate::cache::FlightGuard;
use crate::cube::{CubeOptions, CubeQuery, CubeResult, GridArena};
use crate::database::Database;
use crate::error::{RelationalError, Result};
use crate::query::AggFunction;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug)]
enum TaskState {
    Pending,
    Done(Arc<CubeResult>),
    Failed(RelationalError),
}

#[derive(Debug)]
struct TaskCell {
    state: Mutex<TaskState>,
}

/// One schedulable cube execution, plus the cache publications it owes.
#[derive(Debug)]
pub struct CubeTask {
    cube: CubeQuery,
    /// `(aggregate position, function, guard)` per single-flight key this
    /// task won; empty when evaluation runs uncached.
    publish: Vec<(usize, AggFunction, FlightGuard)>,
    cell: Arc<TaskCell>,
}

/// Completion handle for one submitted [`CubeTask`].
#[derive(Debug)]
pub struct TaskHandle {
    cell: Arc<TaskCell>,
}

impl TaskHandle {
    /// Has the task settled (successfully or not)?
    pub fn is_done(&self) -> bool {
        !matches!(*lock(&self.cell.state), TaskState::Pending)
    }

    /// The task's result. Panics if called before the task settled — obtain
    /// completion via [`CubeScheduler::drive`] first.
    pub fn result(&self) -> Result<Arc<CubeResult>> {
        match &*lock(&self.cell.state) {
            TaskState::Pending => panic!("task result taken before completion"),
            TaskState::Done(result) => Ok(result.clone()),
            TaskState::Failed(e) => Err(e.clone()),
        }
    }
}

impl CubeTask {
    /// Package a cube with the flight guards it must publish. The guards'
    /// positions index into `cube.aggregates`.
    pub fn new(
        cube: CubeQuery,
        publish: Vec<(usize, AggFunction, FlightGuard)>,
    ) -> (CubeTask, TaskHandle) {
        let cell = Arc::new(TaskCell {
            state: Mutex::new(TaskState::Pending),
        });
        (
            CubeTask {
                cube,
                publish,
                cell: cell.clone(),
            },
            TaskHandle { cell },
        )
    }

    /// Execute the cube (sequential scan — see the module docs), publish
    /// every won flight, and settle the completion cell. On error the
    /// guards are dropped, poisoning their flights so waiters retry.
    fn execute(self, db: &Database, arena: Option<&GridArena>) {
        let outcome = self.cube.execute_in(db, &CubeOptions::default(), arena);
        let state = match outcome {
            Ok(result) => {
                let result = Arc::new(result);
                for (pos, function, guard) in self.publish {
                    guard.fulfill(crate::cache::CachedSlice::new(
                        result.clone(),
                        pos,
                        function,
                    ));
                }
                TaskState::Done(result)
            }
            Err(e) => {
                drop(self.publish); // poison the flights
                TaskState::Failed(e)
            }
        };
        *lock(&self.cell.state) = state;
    }
}

#[derive(Debug, Default)]
struct SchedState {
    queue: VecDeque<CubeTask>,
    closed: bool,
}

/// A shared FIFO of [`CubeTask`]s drained cooperatively by scoped workers.
#[derive(Debug, Default)]
pub struct CubeScheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl CubeScheduler {
    pub fn new() -> CubeScheduler {
        CubeScheduler::default()
    }

    /// Enqueue a wave of tasks and wake every worker.
    pub fn submit(&self, tasks: Vec<CubeTask>) {
        if tasks.is_empty() {
            return;
        }
        {
            let mut state = lock(&self.state);
            debug_assert!(!state.closed, "submit after close");
            state.queue.extend(tasks);
        }
        self.cv.notify_all();
    }

    /// Execute queued tasks — anyone's, not just the caller's — until every
    /// handle in `waiting` has settled. With no other workers this is exact
    /// sequential execution by the caller.
    pub fn drive(&self, db: &Database, arena: Option<&GridArena>, waiting: &[TaskHandle]) {
        loop {
            let task = {
                let mut state = lock(&self.state);
                loop {
                    if waiting.iter().all(TaskHandle::is_done) {
                        return;
                    }
                    if let Some(task) = state.queue.pop_front() {
                        break task;
                    }
                    // Our tasks are running on other workers: sleep until a
                    // completion or a new submission.
                    state = self
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            self.run_task(task, db, arena);
        }
    }

    /// Helper loop for workers with no document of their own: execute tasks
    /// until the scheduler is closed and drained.
    pub fn run_worker(&self, db: &Database, arena: Option<&GridArena>) {
        loop {
            let task = {
                let mut state = lock(&self.state);
                loop {
                    if let Some(task) = state.queue.pop_front() {
                        break task;
                    }
                    if state.closed {
                        return;
                    }
                    state = self
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            self.run_task(task, db, arena);
        }
    }

    /// No further submissions will arrive; drain and release the workers.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.cv.notify_all();
    }

    fn run_task(&self, task: CubeTask, db: &Database, arena: Option<&GridArena>) {
        task.execute(db, arena);
        // Touch the scheduler lock before notifying so a driver cannot
        // check its handles, miss this completion, and sleep through the
        // wakeup (the completion happens-before our lock acquisition).
        drop(lock(&self.state));
        self.cv.notify_all();
    }
}

/// Execute one wave of tasks with up to `threads` workers (the caller
/// included), returning when every task has finished. The wave shares the
/// caller's [`GridArena`]; the pool is scoped, so borrows stay on the
/// stack. Used by solo (non-batched) evaluation, where no long-lived
/// scheduler exists.
pub fn run_wave(
    db: &Database,
    arena: Option<&GridArena>,
    tasks: Vec<CubeTask>,
    handles: &[TaskHandle],
    threads: usize,
) {
    if tasks.is_empty() {
        return;
    }
    let scheduler = CubeScheduler::new();
    let helpers = threads.max(1).min(tasks.len()) - 1;
    scheduler.submit(tasks);
    scheduler.close();
    if helpers == 0 {
        scheduler.drive(db, arena, handles);
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..helpers {
            let scheduler = &scheduler;
            scope.spawn(move || scheduler.run_worker(db, arena));
        }
        scheduler.drive(db, arena, handles);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheKey, EvalCache, Flight};
    use crate::database::ColumnRef;
    use crate::query::AggColumn;
    use crate::table::Table;
    use crate::value::Value;

    fn db() -> Database {
        let t = Table::from_columns(
            "t",
            vec![("cat", vec!["a".into(), "a".into(), "b".into(), "c".into()])],
        )
        .unwrap();
        let mut db = Database::new("d");
        db.add_table(t);
        db
    }

    fn count_cube(db: &Database, literals: Vec<Value>) -> CubeQuery {
        CubeQuery {
            dims: vec![db.resolve("t", "cat").unwrap()],
            relevant: vec![literals],
            aggregates: vec![(AggFunction::Count, AggColumn::Star)],
        }
    }

    #[test]
    fn wave_executes_all_tasks_and_results_match_direct_execution() {
        let db = db();
        for threads in [1usize, 4] {
            let (tasks, handles): (Vec<_>, Vec<_>) = ["a", "b", "c"]
                .iter()
                .map(|lit| CubeTask::new(count_cube(&db, vec![(*lit).into()]), Vec::new()))
                .unzip();
            run_wave(&db, None, tasks, &handles, threads);
            for (lit, handle) in ["a", "b", "c"].iter().zip(&handles) {
                assert!(handle.is_done());
                let result = handle.result().unwrap();
                let direct = count_cube(&db, vec![(*lit).into()]).execute(&db).unwrap();
                assert_eq!(
                    result.get_count(&[crate::cube::DimSel::Literal(0)], 0),
                    direct.get_count(&[crate::cube::DimSel::Literal(0)], 0),
                    "[{threads}t] literal {lit}"
                );
            }
        }
    }

    #[test]
    fn failed_task_reports_error_and_poisons_flights() {
        let db = db();
        let cache = EvalCache::new();
        let key = CacheKey::new(
            AggFunction::Count,
            AggColumn::Star,
            vec![ColumnRef::new(0, 0)],
        );
        let needed = vec![vec![Value::from("a")]];
        let guard = match cache.flight(&key, &needed) {
            Flight::Compute(g) => g,
            other => panic!("expected Compute, got {other:?}"),
        };
        let waiter = match cache.flight(&key, &needed) {
            Flight::Wait(w) => w,
            other => panic!("expected Wait, got {other:?}"),
        };
        // An invalid cube (ratio aggregate) fails validation at execution.
        let bad = CubeQuery {
            dims: vec![db.resolve("t", "cat").unwrap()],
            relevant: vec![vec!["a".into()]],
            aggregates: vec![(AggFunction::Percentage, AggColumn::Star)],
        };
        let (task, handle) = CubeTask::new(bad, vec![(0, AggFunction::Percentage, guard)]);
        run_wave(&db, None, vec![task], std::slice::from_ref(&handle), 1);
        assert!(handle.result().is_err());
        assert!(waiter.wait().is_none(), "flight poisoned by the failure");
    }

    #[test]
    fn shared_scheduler_worker_drains_after_close() {
        let db = db();
        let scheduler = CubeScheduler::new();
        let (task, handle) = CubeTask::new(count_cube(&db, vec!["a".into()]), Vec::new());
        std::thread::scope(|scope| {
            let (scheduler, db) = (&scheduler, &db);
            let worker = scope.spawn(move || scheduler.run_worker(db, None));
            scheduler.submit(vec![task]);
            scheduler.drive(db, None, std::slice::from_ref(&handle));
            scheduler.close();
            worker.join().unwrap();
        });
        assert_eq!(
            handle
                .result()
                .unwrap()
                .get_count(&[crate::cube::DimSel::Literal(0)], 0),
            2.0
        );
    }
}
